"""Fig. 2e — size of the affected areas |AFF|/n² as updates grow."""

import numpy as np
import pytest

from repro.bench.experiments import fig2e
from repro.bench.reporting import format_table


@pytest.mark.figure("fig2e")
def test_fig2e_affected_table(benchmark, scale):
    """Regenerate Fig. 2e; affected areas stay well below n²."""
    table = benchmark.pedantic(fig2e, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    fractions = np.asarray(table.column("% affected"), dtype=float)
    assert np.all(fractions < 50.0)
