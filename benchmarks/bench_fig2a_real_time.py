"""Fig. 2a — per-algorithm update timing on the three dataset families.

Besides regenerating the harness table, this file benchmarks each
algorithm's unit-update path in isolation so pytest-benchmark's stats
(mean/stddev) apply to the quantity the paper plots.
"""

import pytest

from repro.bench.experiments import _snapshot_workload, fig2a
from repro.bench.reporting import format_table
from repro.incremental.engine import DynamicSimRank
from repro.incremental.inc_svd import IncSVDSimRank
from repro.simrank.matrix import matrix_simrank


@pytest.mark.figure("fig2a")
def test_fig2a_table(benchmark, scale):
    """The full Fig. 2a sweep (all datasets, all |ΔE| sizes)."""
    table = benchmark.pedantic(fig2a, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    assert len(table.rows) >= 6


def _workload(scale):
    name = "dblp-tiny" if scale == "tiny" else "dblp"
    base, batch, config = _snapshot_workload(name, 8)
    initial = matrix_simrank(base, config)
    return base, batch, config, initial


@pytest.mark.figure("fig2a")
@pytest.mark.parametrize("algorithm", ["inc-sr", "inc-usr"])
def test_incremental_update_throughput(benchmark, scale, algorithm):
    """Mean cost of applying an 8-update batch incrementally."""
    base, batch, config, initial = _workload(scale)

    def run():
        engine = DynamicSimRank(
            base, config, algorithm=algorithm, initial_scores=initial
        )
        engine.apply(batch)
        return engine

    engine = benchmark(run)
    assert engine.graph.num_edges == base.num_edges + batch.num_insertions


@pytest.mark.figure("fig2a")
def test_inc_svd_update_throughput(benchmark, scale):
    """Mean cost of Inc-SVD (r=5) processing the same batch + rescoring."""
    base, batch, config, initial = _workload(scale)

    def run():
        session = IncSVDSimRank(base, rank=5, config=config)
        session.apply_batch(batch)
        return session.scores()

    scores = benchmark(run)
    assert scores.shape == (base.num_nodes, base.num_nodes)


@pytest.mark.figure("fig2a")
def test_batch_recompute_cost(benchmark, scale):
    """Cost of the Batch comparator: one full recomputation."""
    base, batch, config, _ = _workload(scale)
    final = batch.applied(base)
    scores = benchmark(matrix_simrank, final, config)
    assert scores.shape == (base.num_nodes, base.num_nodes)
