"""Shared fixtures for the benchmark suite.

Benchmarks run the per-figure experiment harness at ``tiny`` scale by
default so ``pytest benchmarks/ --benchmark-only`` finishes in minutes.
Set ``REPRO_BENCH_SCALE=bench`` to reproduce the EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    """Workload scale for the experiment harness."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): benchmark regenerating a paper figure"
    )
