"""Fig. 3 — intermediate memory of Inc-SR / Inc-uSR / Inc-SVD(r)."""

import pytest

from repro.bench.experiments import fig3
from repro.bench.reporting import format_table
from repro.metrics.memory import (
    inc_svd_intermediate_bytes,
    inc_usr_intermediate_bytes,
)


@pytest.mark.figure("fig3")
def test_fig3_memory_table(benchmark, scale):
    """Regenerate Fig. 3 (analytic working-set accounting)."""
    table = benchmark.pedantic(fig3, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    assert len(table.rows) == 3


@pytest.mark.figure("fig3")
def test_inc_svd_memory_grows_quartically_with_rank():
    """The paper's Fig. 3 observation: r dominates Inc-SVD's footprint."""
    n = 13634  # DBLP's node count, for the shape comparison
    r5 = inc_svd_intermediate_bytes(n, 5)
    r25 = inc_svd_intermediate_bytes(n, 25)
    assert r25 / r5 > 2.0  # grows super-linearly in r

    # And Inc-SR needs far less than Inc-uSR (pruned working set).
    from repro.metrics.memory import inc_sr_intermediate_bytes

    usr = inc_usr_intermediate_bytes(n, 93560, 15)
    sr = inc_sr_intermediate_bytes(
        n, 93560, 15, average_area=0.24 * n * n * 0.01, average_row_support=300
    )
    assert sr < usr / 10
