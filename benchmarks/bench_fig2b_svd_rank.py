"""Fig. 2b — the lossless SVD rank of the auxiliary matrix C̄."""

import numpy as np
import pytest

from repro.bench.experiments import fig2b
from repro.bench.reporting import format_table


@pytest.mark.figure("fig2b")
def test_fig2b_rank_table(benchmark, scale):
    """Regenerate Fig. 2b; assert the paper's qualitative claim."""
    table = benchmark.pedantic(fig2b, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    fractions = np.asarray(table.column("% of n"), dtype=float)
    # r must NOT be negligibly smaller than n (the Sec. IV argument).
    assert np.all(fractions > 20.0)
