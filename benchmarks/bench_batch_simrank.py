"""Supporting benchmark: the batch SimRank algorithm family.

Not a paper figure by itself, but underpins every experiment: the Batch
comparator must be correct and its cost model sane.  Benchmarks the four
batch implementations on one mid-sized graph and cross-checks agreement.
"""

import numpy as np
import pytest

from repro import SimRankConfig
from repro.graph.generators import linkage_model_digraph
from repro.simrank.exact import exact_simrank
from repro.simrank.matrix import matrix_simrank
from repro.simrank.naive import naive_simrank
from repro.simrank.partial_sums import partial_sums_simrank
from repro.simrank.svd_batch import svd_batch_simrank


@pytest.fixture(scope="module")
def workload():
    graph = linkage_model_digraph(80, 3, seed=19)
    config = SimRankConfig(damping=0.6, iterations=15)
    return graph, config


def test_batch_matrix_form(benchmark, workload):
    graph, config = workload
    scores = benchmark(matrix_simrank, graph, config)
    truth = exact_simrank(graph, config)
    assert np.max(np.abs(scores - truth)) < 1e-3


def test_batch_partial_sums(benchmark, workload):
    graph, config = workload
    scores = benchmark(partial_sums_simrank, graph, config)
    # Iterative form: agrees with naive, not with matrix form.
    assert np.allclose(np.diag(scores), 1.0)


def test_batch_naive(benchmark, workload):
    graph, config = workload
    scores = benchmark.pedantic(
        naive_simrank, args=(graph, config), rounds=1, iterations=1
    )
    reference = partial_sums_simrank(graph, config)
    assert np.max(np.abs(scores - reference)) < 1e-10


def test_batch_svd_lossless(benchmark, workload):
    graph, config = workload
    scores = benchmark(svd_batch_simrank, graph, None, config)
    truth = exact_simrank(graph, config)
    assert np.max(np.abs(scores - truth)) < 1e-8
