"""Fig. 4 — NDCG30 exactness against a K=35 Batch baseline."""

import pytest

from repro.bench.experiments import fig4
from repro.bench.reporting import format_table


@pytest.mark.figure("fig4")
def test_fig4_ndcg_table(benchmark, scale):
    """Regenerate Fig. 4; assert the paper's ordering of methods."""
    table = benchmark.pedantic(fig4, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    for row in table.rows:
        cells = dict(zip(table.headers, row))
        # Inc-SR and Inc-uSR agree exactly (lossless pruning) ...
        assert abs(cells["Inc-SR(K=15)"] - cells["Inc-uSR(K=15)"]) < 1e-9
        # ... reach high accuracy at K=15 ...
        assert cells["Inc-SR(K=15)"] > 0.9
        # ... and beat Inc-SVD at its default rank.
        assert cells["Inc-SR(K=15)"] >= cells["Inc-SVD(r=5)"]
