"""Fig. 2d — effect of the Theorem 4 pruning (Inc-SR vs Inc-uSR)."""

import numpy as np
import pytest

from repro.bench.experiments import fig2d
from repro.bench.reporting import format_table


@pytest.mark.figure("fig2d")
def test_fig2d_pruning_table(benchmark, scale):
    """Regenerate Fig. 2d; assert pruning removes most node-pairs."""
    table = benchmark.pedantic(fig2d, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    pruned = np.asarray(table.column("% pruned pairs"), dtype=float)
    # The paper reports 76-82% pruned; our sparser scaled graphs prune more.
    assert np.all(pruned > 50.0)
