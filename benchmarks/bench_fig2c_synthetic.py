"""Fig. 2c — insertion/deletion timing sweeps on linkage-model graphs."""

import pytest

from repro.bench.experiments import fig2c
from repro.bench.reporting import format_table


@pytest.mark.figure("fig2c")
def test_fig2c_synthetic_table(benchmark, scale):
    """Regenerate Fig. 2c (both edge directions)."""
    table = benchmark.pedantic(fig2c, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(table))
    directions = set(table.column("direction"))
    assert directions == {"insert", "delete"}
