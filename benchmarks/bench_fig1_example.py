"""Benchmark + regeneration of the Fig. 1 motivating-example table."""

import pytest

from repro.bench.experiments import fig1
from repro.bench.reporting import format_table


@pytest.mark.figure("fig1")
def test_fig1_example_table(benchmark, scale):
    """Regenerate the Fig. 1 table; benchmark the whole pipeline."""
    table = benchmark(fig1, scale)
    print()
    print(format_table(table))
    # Sanity: the inserted edge changed some pairs but not others.
    old = table.column("sim (old G)")
    new = table.column("sim_true")
    assert any(abs(a - b) > 1e-6 for a, b in zip(old, new))
    assert any(abs(a - b) < 1e-9 for a, b in zip(old, new))
