"""Ablation benchmarks (DESIGN.md §5): the knobs beyond the paper's figures."""

import numpy as np
import pytest

from repro.bench.ablations import (
    ablation_consolidation,
    ablation_iterations,
    ablation_tolerance,
    ablation_update_order,
)
from repro.bench.reporting import format_table


@pytest.mark.figure("ablation")
def test_ablation_tolerance(benchmark, scale):
    """Pruning-tolerance sweep: error grows smoothly, area shrinks."""
    table = benchmark.pedantic(
        ablation_tolerance, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_table(table))
    errors = np.asarray(table.column("max error vs lossless"), dtype=float)
    assert errors[0] == 0.0  # tolerance 0.0 is lossless
    assert np.all(np.diff(errors) >= -1e-12)  # monotone in tolerance


@pytest.mark.figure("ablation")
def test_ablation_update_order(benchmark, scale):
    """Batch ordering must not change the result."""
    table = benchmark.pedantic(
        ablation_update_order, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_table(table))
    gaps = np.asarray(table.column("max gap vs deletes-first"), dtype=float)
    assert np.all(gaps < 1e-10)


@pytest.mark.figure("ablation")
def test_ablation_iterations(benchmark, scale):
    """Measured truncation error stays below the analytic bound."""
    table = benchmark.pedantic(
        ablation_iterations, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_table(table))
    errors = np.asarray(table.column("max error vs exact"), dtype=float)
    bounds = np.asarray(table.column("bound C^(K+1)/(1-C)"), dtype=float)
    assert np.all(errors <= bounds + 1e-12)


@pytest.mark.figure("ablation")
def test_ablation_consolidation(benchmark, scale):
    """Consolidated row updates: same fixed point, fewer series runs."""
    table = benchmark.pedantic(
        ablation_consolidation, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(format_table(table))
    gaps = np.asarray(table.column("max score gap"), dtype=float)
    assert np.all(gaps < 1e-6)
