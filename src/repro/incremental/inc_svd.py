"""The Inc-SVD baseline of Li et al. [1] (EDBT 2010), as analyzed in Sec. IV.

Li et al. factorize ``Q = U·Σ·Vᵀ`` (target rank ``r``) once, and on every
link update maintain the factors instead of the scores:

1. ``C̄ = Σ + Uᵀ·ΔQ·V``            (the auxiliary matrix, Eq. (8));
2. SVD ``C̄ = U_C·Σ_C·V_Cᵀ``        (Eq. (5));
3. ``Ũ = U·U_C``, ``Σ̃ = Σ_C``, ``Ṽ = V·V_C``   (Eq. (4)).

Step 3 silently assumes ``U·Uᵀ = V·Vᵀ = Iₙ``, which fails whenever
``rank(Q) < n`` — so the maintained factors drift from the true SVD of
``Q̃`` (the paper's Examples 2–3 are reproduced verbatim in the tests).

Scores are then computed from the factors via the low-rank closed form:
with ``T = Σ·Vᵀ·U`` (r×r),

    S ≈ (1−C)·Iₙ + (1−C)·C·U·M·Uᵀ,   M = C·T·M·Tᵀ + Σ²,

where ``M`` is an r×r Sylvester solve (Kronecker-lifted, ``O(r⁶)`` —
the source of the ``r⁴·n²``-with-big-constants behaviour the paper
criticizes once the ``U·M·Uᵀ`` densification is included).
"""

from __future__ import annotations

import numpy as np

from ..config import SimRankConfig
from ..exceptions import DimensionError
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import backward_transition_matrix
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..linalg.kron import solve_sylvester_kron
from ..linalg.svd_tools import SVDFactors, truncated_svd
from ..simrank.base import default_config
from .rank_one import rank_one_decomposition


def low_rank_simrank_scores(
    factors: SVDFactors, damping: float
) -> np.ndarray:
    """Dense SimRank scores from (possibly stale) SVD factors of ``Q``.

    Evaluates the closed form ``(1−C)·I + (1−C)·C·U·M·Uᵀ`` described in
    the module docstring.  Exact when the factors are a lossless SVD of a
    full-rank ``Q``; approximate otherwise — by design, this reproduces
    the accuracy loss of [1].
    """
    u_matrix = factors.u
    sigma = factors.sigma
    v_matrix = factors.v
    n = u_matrix.shape[0]
    r = sigma.shape[0]
    if r == 0:
        return (1.0 - damping) * np.eye(n)
    t_matrix = (sigma[:, None] * v_matrix.T) @ u_matrix  # T = Σ·Vᵀ·U
    if r <= 64:
        # Small rank: direct Kronecker-lifted solve (r² x r² system).
        m_matrix = solve_sylvester_kron(
            damping * t_matrix, t_matrix.T, np.diag(sigma**2)
        )
    else:
        # Large rank: the r²xr² lift would be huge; iterate the
        # geometrically convergent series M_{k+1} = C·T·M_k·Tᵀ + Σ²
        # to float tolerance instead (contraction factor <= C).
        constant = np.diag(sigma**2)
        m_matrix = constant.copy()
        for _ in range(400):
            nxt = damping * (t_matrix @ m_matrix @ t_matrix.T) + constant
            if float(np.max(np.abs(nxt - m_matrix))) < 1e-13:
                m_matrix = nxt
                break
            m_matrix = nxt
    scores = (1.0 - damping) * damping * (u_matrix @ m_matrix @ u_matrix.T)
    scores += (1.0 - damping) * np.eye(n)
    return scores


class IncSVDSimRank:
    """Stateful Inc-SVD session over a link-evolving graph.

    Parameters
    ----------
    graph:
        The initial graph; a copy is kept internally.
    rank:
        The target rank ``r`` of the low-rank SVD (the paper's
        time/accuracy trade-off knob; ``r = 5`` in its time evaluations).
    config:
        Damping factor (iterations are not used — the method is
        non-iterative).

    Notes
    -----
    The exact graph and ``Q`` are maintained internally so that each
    update's ``ΔQ`` is formed exactly (as in [1]); the *approximation*
    enters only through the factor update of Eq. (4).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        rank: int,
        config: SimRankConfig = None,
    ) -> None:
        if rank < 1:
            raise DimensionError(f"target rank must be >= 1, got {rank}")
        self._config = default_config(config)
        self._graph = graph.copy()
        self._rank = int(rank)
        q_matrix = backward_transition_matrix(self._graph)
        self._factors = truncated_svd(q_matrix, self._rank)
        self._updates_applied = 0

    @property
    def rank(self) -> int:
        """The target rank ``r``."""
        return self._rank

    @property
    def factors(self) -> SVDFactors:
        """The maintained (drifting) SVD factors."""
        return self._factors

    @property
    def graph(self) -> DynamicDiGraph:
        """The exact current graph (internal copy)."""
        return self._graph

    @property
    def updates_applied(self) -> int:
        """Number of unit updates processed so far."""
        return self._updates_applied

    def apply(self, update: EdgeUpdate) -> None:
        """Process one unit update by maintaining the factors (Eq. (4))."""
        u_vector, v_vector = rank_one_decomposition(self._graph, update)
        # C̄ = Σ + Uᵀ·(u·vᵀ)·V = Σ + (Uᵀu)·(Vᵀv)ᵀ  — a rank-one r×r update.
        projected_u = self._factors.u.T @ u_vector
        projected_v = self._factors.v.T @ v_vector
        c_aux = np.diag(self._factors.sigma) + np.outer(projected_u, projected_v)
        uc, sigma_c, vct = np.linalg.svd(c_aux)
        self._factors = SVDFactors(
            u=self._factors.u @ uc,
            sigma=sigma_c,
            v=self._factors.v @ vct.T,
        )
        update.apply_to(self._graph)
        self._updates_applied += 1

    def apply_batch(self, batch: UpdateBatch) -> None:
        """Process a batch as a sequence of unit updates."""
        for update in batch:
            self.apply(update)

    def scores(self) -> np.ndarray:
        """All-pairs SimRank scores from the current (drifting) factors."""
        return low_rank_simrank_scores(self._factors, self._config.damping)

    def reconstruction_residual(self) -> float:
        """Spectral-norm gap ``||Q̃ − Ũ·Σ̃·Ṽᵀ||₂`` against the exact ``Q̃``.

        This is the quantity the paper's Example 3 evaluates (it equals 1
        there); it measures the eigen-information lost by Eq. (4).
        """
        q_matrix = backward_transition_matrix(self._graph).toarray()
        return float(
            np.linalg.norm(q_matrix - self._factors.reconstruct(), ord=2)
        )

    def intermediate_bytes(self) -> int:
        """Bytes held in the maintained factors (Fig. 3 accounting)."""
        n = self._graph.num_nodes
        r = self._factors.rank
        factor_bytes = (
            self._factors.u.nbytes
            + self._factors.sigma.nbytes
            + self._factors.v.nbytes
        )
        # Scoring workspace: the r×r Sylvester lift (r² x r² system) plus
        # the n×r intermediate of U·M and the dense n×n output buffer.
        workspace = 8 * (r**4 + n * r)
        return factor_bytes + workspace
