"""Incremental SimRank on link-evolving graphs — the paper's contribution.

* :mod:`repro.incremental.rank_one` — Theorem 1: the rank-one
  decomposition ``ΔQ = u·vᵀ`` of a unit link update.
* :mod:`repro.incremental.gamma` — Theorems 2–3: the update vectors
  ``γ`` (and scalar ``λ``) expressed from the old ``Q`` and ``S``.
* :mod:`repro.incremental.inc_usr` — Algorithm 1 (**Inc-uSR**): the
  unpruned ``O(K·n²)`` incremental update.
* :mod:`repro.incremental.affected` — Theorem 4: affected-area tracking.
* :mod:`repro.incremental.inc_sr` — Algorithm 2 (**Inc-SR**): pruned
  incremental update in ``O(K·(n·d + |AFF|))``.
* :mod:`repro.incremental.inc_svd` — the Inc-SVD baseline of Li et
  al. [1], including its inherent approximation (Sec. IV).
* :mod:`repro.incremental.plan` — the kernel layer: explicit
  :class:`UpdatePlan` objects (factored low-rank delta + affected
  support sets) produced without mutating any state.
* :mod:`repro.incremental.workspace` — :class:`UpdateWorkspace`, the
  pooled per-update scratch vectors shared by the hot paths.
* :mod:`repro.incremental.engine` — :class:`DynamicSimRank`, the
  user-facing facade over the kernel and executor layers.
"""

from .rank_one import rank_one_decomposition
from .gamma import compute_gamma_lambda, compute_update_vectors, UpdateVectors
from .inc_usr import inc_usr_delta, inc_usr_update, UnitUpdateResult
from .inc_sr import inc_sr_update
from .affected import AffectedAreaStats
from .inc_svd import IncSVDSimRank
from .plan import (
    PackedPlanBatch,
    PlanBatch,
    UpdatePlan,
    apply_plan_dense,
    plan_rank_one,
    plan_unit_update,
)
from .workspace import UpdateWorkspace
from .engine import DynamicSimRank, UpdateStats

__all__ = [
    "rank_one_decomposition",
    "UpdatePlan",
    "PackedPlanBatch",
    "PlanBatch",
    "plan_rank_one",
    "plan_unit_update",
    "apply_plan_dense",
    "inc_usr_delta",
    "compute_gamma_lambda",
    "compute_update_vectors",
    "UpdateVectors",
    "inc_usr_update",
    "inc_sr_update",
    "UnitUpdateResult",
    "AffectedAreaStats",
    "IncSVDSimRank",
    "UpdateWorkspace",
    "DynamicSimRank",
    "UpdateStats",
]
