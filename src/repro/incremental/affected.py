"""Theorem 4 — affected-area identification for pruned updates.

The series ``M = Σ_k C^{k+1}·Q̃^k·e_j·γᵀ·(Q̃ᵀ)^k`` spreads mass outward
from the update target ``j`` along *out*-links: at iteration ``k`` the
row support of the new term is reachable from ``{j}`` in ``k`` forward
hops of the new graph, and the column support from ``supp(γ)`` likewise.
Theorem 4 packages this as iterated sets

    A_0 × B_0 = {j} × (F_1 ∪ F_2 ∪ {j}),
    A_k = ⋃_{x: ξ_{k-1}[x] ≠ 0} Õ(x),   B_k = ⋃_{y: η_{k-1}[y] ≠ 0} Õ(y)

(with ``F_1`` the out-neighbors of nodes ``y`` having ``[S]_{i,y} ≠ 0``
and ``F_2`` the nonzero support of ``[S]_{j,:}`` when ``d_j > 0``); every
pair outside ``(A_k × B_k) ∪ (A_0 × B_0)`` provably has ``[M_k] = 0`` and
is skipped *without loss of exactness*.

:class:`AffectedAreaTracker` maintains exactly these supports during the
Inc-SR iteration, and :class:`AffectedAreaStats` aggregates the
``|AFF| = avg_k |A_k|·|B_k|`` quantity the paper reports in Figs. 2d/2e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..graph.digraph import DynamicDiGraph


@dataclass
class AffectedAreaStats:
    """Sizes of the affected areas across iterations of one unit update.

    ``row_sizes[k]``/``col_sizes[k]`` are ``|A_k|``/``|B_k|``; the paper's
    ``|AFF|`` is :meth:`average_area`, and :meth:`pruned_fraction` is the
    share of the full ``n²`` pair space never touched.
    """

    num_nodes: int
    row_sizes: List[int] = field(default_factory=list)
    col_sizes: List[int] = field(default_factory=list)

    def record(self, row_size: int, col_size: int) -> None:
        """Append one iteration's ``(|A_k|, |B_k|)``."""
        self.row_sizes.append(int(row_size))
        self.col_sizes.append(int(col_size))

    @property
    def iterations(self) -> int:
        """Number of recorded iterations (``K + 1`` including k = 0)."""
        return len(self.row_sizes)

    def area_sizes(self) -> List[int]:
        """``|A_k| · |B_k|`` per iteration."""
        return [r * c for r, c in zip(self.row_sizes, self.col_sizes)]

    def average_area(self) -> float:
        """``|AFF| = avg_k |A_k|·|B_k|`` (0.0 when nothing recorded)."""
        sizes = self.area_sizes()
        return sum(sizes) / len(sizes) if sizes else 0.0

    def affected_fraction(self) -> float:
        """``|AFF| / n²`` — the quantity plotted in Fig. 2e."""
        if self.num_nodes == 0:
            return 0.0
        return self.average_area() / float(self.num_nodes**2)

    def pruned_fraction(self) -> float:
        """Fraction of node-pairs skipped, ``1 − |AFF|/n²`` (Fig. 2d)."""
        return 1.0 - self.affected_fraction()

    def merged_with(self, other: "AffectedAreaStats") -> "AffectedAreaStats":
        """Concatenate per-iteration records (for multi-update aggregates)."""
        merged = AffectedAreaStats(num_nodes=self.num_nodes)
        merged.row_sizes = self.row_sizes + other.row_sizes
        merged.col_sizes = self.col_sizes + other.col_sizes
        return merged


class AffectedAreaTracker:
    """Maintains the supports ``A_k``/``B_k`` during an Inc-SR run.

    The tracker works on index arrays: given the support of ``ξ_{k-1}``
    (resp. ``η_{k-1}``), :meth:`expand_rows`/:meth:`expand_cols` return
    the out-neighbor closure in the *new* graph — exactly Eq. (40) —
    while recording sizes into :class:`AffectedAreaStats`.
    """

    def __init__(self, new_graph: DynamicDiGraph) -> None:
        self._graph = new_graph
        self.stats = AffectedAreaStats(num_nodes=new_graph.num_nodes)

    def expand(self, support: np.ndarray) -> np.ndarray:
        """Out-neighbor closure ``⋃_{x∈support} Õ(x)`` as a sorted index array."""
        result = set()
        for node in support.tolist():
            result.update(self._graph.out_neighbors(int(node)))
        return np.fromiter(sorted(result), dtype=np.int64, count=len(result))

    def record_iteration(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Log ``(|A_k|, |B_k|)`` for one iteration."""
        self.stats.record(rows.size, cols.size)


def initial_affected_sets(
    old_graph: DynamicDiGraph,
    s_matrix: np.ndarray,
    update_source: int,
    update_target: int,
    target_degree_positive: bool,
    tolerance: float = 0.0,
) -> np.ndarray:
    """The set ``B_0 = F_1 ∪ F_2 ∪ {j}`` of Eq. (38)–(40), as sorted indices.

    ``F_1`` is built from the support of column ``i`` of the old ``S``
    expanded one out-hop in the *old* graph; ``F_2`` is the support of row
    ``j`` of ``S`` (only when the branch with ``d_j > 0`` insertion /
    ``d_j > 1`` deletion applies, signalled by ``target_degree_positive``).
    """
    support_i = np.nonzero(np.abs(s_matrix[:, update_source]) > tolerance)[0]
    f1 = set()
    for node in support_i.tolist():
        f1.update(old_graph.out_neighbors(int(node)))
    members = set(f1)
    if target_degree_positive:
        support_j = np.nonzero(np.abs(s_matrix[update_target, :]) > tolerance)[0]
        members.update(support_j.tolist())
    members.add(update_target)
    return np.fromiter(sorted(members), dtype=np.int64, count=len(members))
