"""Pooled per-update scratch vectors — :class:`UpdateWorkspace`.

Every unit update needs a handful of dense ``n``-vectors: the rank-one
factors ``u``/``v`` (Theorem 1), the mat-vec result ``w = Q·[S]_{:,i}``
and the folded ``γ`` (Theorems 2–3), plus transient arithmetic scratch.
The seed implementation allocated all of them fresh on every update —
thousands of short-lived ``n``-vectors per second under heavy update
traffic, all churned through the allocator.

:class:`UpdateWorkspace` owns one buffer per named role and hands out
views, growing by capacity doubling when the node universe expands.

Lifecycle contract
------------------
A buffer named ``x`` stays valid from the moment it is requested until
the *next* request for the same name — i.e. for the duration of one
update.  :class:`~repro.incremental.gamma.UpdateVectors` produced with a
workspace therefore alias workspace memory and are clobbered by the
following update; the engine consumes them within the same update, which
is the intended pattern.  Callers that need the vectors to outlive the
update (tests, offline analysis) simply omit the workspace and get
freshly allocated arrays, as before.

The workspace is *not* thread-safe: one workspace per engine/session.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Buffer roles handed out by the workspace.  ``u``/``v``: rank-one
#: factors; ``w``: the ``Q·[S]_{:,i}`` mat-vec; ``gamma``: Theorem 3's
#: folded vector; ``scratch``: transient arithmetic temporary; ``xcol``:
#: contiguous staging for strided matrix columns fed to mat-vecs.
BUFFER_NAMES = ("u", "v", "w", "gamma", "scratch", "xcol")


class UpdateWorkspace:
    """A pool of reusable dense ``n``-vectors for the update hot path."""

    def __init__(self, num_nodes: int = 0, dtype=None) -> None:
        self._capacity = 0
        self._buffers: Dict[str, np.ndarray] = {}
        # Planning arithmetic is float64 end to end (reduced-precision
        # score stores cast at scatter time), so the default stays
        # float64; the seam exists for offline experiments only.
        self._dtype = np.float64 if dtype is None else np.dtype(dtype)
        if num_nodes > 0:
            self.ensure_capacity(num_nodes)

    @property
    def capacity(self) -> int:
        """Current buffer length (>= every ``n`` seen so far)."""
        return self._capacity

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the pooled buffers (float64 by default)."""
        return self._dtype

    def ensure_capacity(self, num_nodes: int) -> None:
        """Grow all buffers to hold ``num_nodes`` entries (doubling)."""
        if num_nodes <= self._capacity:
            return
        new_capacity = max(num_nodes, 2 * self._capacity, 16)
        self._buffers = {
            name: np.zeros(new_capacity, dtype=self._dtype)
            for name in BUFFER_NAMES
        }
        self._capacity = new_capacity

    def vector(self, name: str, num_nodes: int) -> np.ndarray:
        """A length-``num_nodes`` view of buffer ``name`` (stale contents).

        The view's contents are whatever the previous user left behind;
        use :meth:`zeros` when a cleared buffer is needed.
        """
        self.ensure_capacity(num_nodes)
        return self._buffers[name][:num_nodes]

    def zeros(self, name: str, num_nodes: int) -> np.ndarray:
        """Like :meth:`vector` but zero-filled."""
        view = self.vector(name, num_nodes)
        view[:] = 0.0
        return view

    def nbytes(self) -> int:
        """Total bytes held by the pooled buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __repr__(self) -> str:
        return f"UpdateWorkspace(capacity={self._capacity})"
