"""Kernel layer — explicit :class:`UpdatePlan` objects.

The incremental kernels (Inc-SR / Inc-uSR / generalized row updates) are
pure functions here: they read the *old* ``(Q, S)`` state and return an
:class:`UpdatePlan` describing the score change as a **factored low-rank
delta** instead of mutating ``S`` in place:

    ΔS = L·Rᵀ  scattered at  rows_union × cols_union,  plus its transpose,

where the columns of ``L``/``R`` are the per-iteration affected-support
factor pairs ``(ξ_k, η_k)`` of Algorithm 2 (each stored sparse).  This is
the same shape as a factored ``R·C`` low-rank update of a weight matrix:
the plan is tiny relative to ``S`` (its footprint tracks the affected
area, not ``n²``), so it can be shipped to whichever executor owns the
score rows — the dense helper :func:`apply_plan_dense` for a plain
ndarray, or the row-sharded
:class:`~repro.executor.score_store.ScoreStore`, which applies the
union-support GEMM shard by shard.

Separating *planning* (read-only on old state) from *application*
(a scatter-add against the score store) is what enables the service
layer's copy-on-write snapshots: readers keep serving the old shards
while the writer applies plans to private copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..config import SimRankConfig
from .affected import AffectedAreaStats
from .gamma import UpdateVectors

SparseVector = Tuple[np.ndarray, np.ndarray]  # (sorted indices, values)

_EMPTY_IDX = np.zeros(0, dtype=np.int64)
_EMPTY_VAL = np.zeros(0, dtype=np.float64)


def to_support(dense: np.ndarray, tolerance: float) -> SparseVector:
    """Dense vector -> (indices, values) above the magnitude tolerance."""
    indices = np.nonzero(np.abs(dense) > tolerance)[0]
    return indices, dense[indices]


def filter_support(
    indices: np.ndarray, values: np.ndarray, tolerance: float
) -> SparseVector:
    """Drop sparse entries at or below the magnitude tolerance."""
    keep = np.abs(values) > tolerance
    if keep.all():
        return indices, values
    return indices[keep], values[keep]


def add_entry(
    indices: np.ndarray, values: np.ndarray, position: int, delta: float
) -> SparseVector:
    """Add ``delta`` at ``position`` of a sorted sparse vector."""
    if delta == 0.0:
        return indices, values
    at = int(np.searchsorted(indices, position))
    if at < indices.size and indices[at] == position:
        values[at] += delta
        return indices, values
    return (
        np.insert(indices, at, position),
        np.insert(values, at, delta),
    )


def sorted_union(index_arrays) -> np.ndarray:
    """Union of sorted index arrays (sort + run-length dedup beats hashing)."""
    if len(index_arrays) == 1:
        return index_arrays[0]
    merged = np.concatenate(index_arrays)
    merged.sort(kind="stable")
    keep = np.empty(merged.size, dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


@dataclass
class UpdatePlan:
    """A factored low-rank score delta plus its affected support sets.

    The plan is the kernel→executor contract: it fully determines the
    score change ``ΔS = Σ_k ξ_k·η_kᵀ + (Σ_k ξ_k·η_kᵀ)ᵀ`` without
    referencing the score store it will be applied to.

    Attributes
    ----------
    target:
        The updated ``Q`` row (the ``j`` of the paper's unit update).
    left_factors, right_factors:
        The per-iteration sparse factor pairs ``(ξ_k, η_k)``; equal
        length.  An empty list encodes a no-op plan (e.g. a fully
        pruned update).
    rows_union, cols_union:
        Sorted unions of the left/right factor supports — exactly the
        rows/columns of ``S`` the plan will touch.
    affected:
        Theorem 4 affected-area statistics recorded while planning
        (``None`` on plans rebuilt from the packed wire encoding —
        application never reads them).
    vectors:
        The Theorem 1–3 precomputation the plan was built from (kept
        for diagnostics; may alias pooled workspace buffers, in which
        case it is only valid until the next update is planned).
    """

    target: int
    left_factors: List[SparseVector]
    right_factors: List[SparseVector]
    rows_union: np.ndarray
    cols_union: np.ndarray
    affected: Optional[AffectedAreaStats]
    vectors: Optional[UpdateVectors] = field(default=None, repr=False)

    @property
    def rank(self) -> int:
        """Number of factor pairs (the K of the truncated series)."""
        return len(self.left_factors)

    @property
    def is_noop(self) -> bool:
        """True when applying the plan would change nothing."""
        return not self.left_factors

    def support_size(self) -> int:
        """Entries of the (untransposed) scatter block, ``|rows|·|cols|``."""
        return int(self.rows_union.size) * int(self.cols_union.size)

    def panels(self, dtype=None) -> Tuple[np.ndarray, np.ndarray]:
        """Densify the factors over the union supports: ``(L, R)``.

        ``L`` is ``|rows_union| × rank`` and ``R`` is
        ``|cols_union| × rank`` so the scatter block is one GEMM
        ``L @ R.T`` — the fancy-indexed scatter-add is the slow part,
        the GEMM is nearly free.

        ``dtype`` selects the panel (and hence GEMM) precision; the
        default is float64, which every executor uses regardless of the
        score store's storage dtype — reduced-precision stores cast at
        scatter time, so the plan arithmetic stays bit-identical across
        dtypes.
        """
        terms = len(self.left_factors)
        panel_dtype = np.float64 if dtype is None else np.dtype(dtype)
        left = np.zeros((self.rows_union.size, terms), dtype=panel_dtype)
        right = np.zeros((self.cols_union.size, terms), dtype=panel_dtype)
        for term, (idx, val) in enumerate(self.left_factors):
            left[np.searchsorted(self.rows_union, idx), term] = val
        for term, (idx, val) in enumerate(self.right_factors):
            right[np.searchsorted(self.cols_union, idx), term] = val
        return left, right

    def delta_matrix(self, num_nodes: int) -> np.ndarray:
        """Materialize the dense ``ΔS`` (tests / offline analysis only)."""
        delta = np.zeros((num_nodes, num_nodes))
        apply_plan_dense(delta, self)
        return delta

    def nbytes(self) -> int:
        """Approximate plan footprint (tracks the affected area)."""
        total = self.rows_union.nbytes + self.cols_union.nbytes
        for idx, val in self.left_factors:
            total += idx.nbytes + val.nbytes
        for idx, val in self.right_factors:
            total += idx.nbytes + val.nbytes
        return total

    def __getstate__(self) -> dict:
        """Picklable state — the wire format shipped to cluster workers.

        ``vectors`` is dropped: it is diagnostics-only, may alias pooled
        workspace buffers (mutated by the next planned update), and a
        plan's *apply* semantics are fully determined by the factors and
        support unions.  Everything that reaches
        :meth:`panels`/:func:`apply_plan_dense` survives the round trip
        bit-identically.
        """
        state = dict(self.__dict__)
        state["vectors"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


@dataclass
class PackedPlanBatch:
    """A :class:`PlanBatch` flattened into five contiguous arrays.

    This is the wire format of the cluster's batched drain path: every
    factor support/value vector and union of every plan in a drain is
    concatenated into a handful of buffers, so the whole batch ships as
    **one** message whose payload is a single contiguous word block —
    either staged in a reusable shared-memory segment (zero bytes cross
    the pipe) or pickled in-band (the crash-replay journal).

    Layout (all elements are 8-byte words):

    * ``targets``  — ``int64[K]``, the target row of each plan;
    * ``ranks``    — ``int64[K]``, factor pairs per plan;
    * ``lens``     — ``int64``: per plan ``rows_union_len,
      cols_union_len`` then per factor pair ``left_len, right_len``;
    * ``idx``      — ``int64``: per plan ``rows_union, cols_union`` then
      per factor pair ``left_indices, right_indices``;
    * ``val``      — ``float64``: per factor pair ``left_values,
      right_values``.

    Unpacking is zero-copy: the rebuilt plans hold *views* into these
    arrays (or into the shared-memory words they were read from).
    """

    targets: np.ndarray
    ranks: np.ndarray
    lens: np.ndarray
    idx: np.ndarray
    val: np.ndarray

    @property
    def count(self) -> int:
        return int(self.targets.size)

    def word_count(self) -> int:
        """Total 8-byte words across all five arrays."""
        return int(
            self.targets.size
            + self.ranks.size
            + self.lens.size
            + self.idx.size
            + self.val.size
        )

    def nbytes(self) -> int:
        return self.word_count() * 8

    def section_lengths(self) -> Tuple[int, int, int]:
        """``(lens, idx, val)`` element counts (targets/ranks = count)."""
        return int(self.lens.size), int(self.idx.size), int(self.val.size)

    def write_words(self, out: np.ndarray) -> int:
        """Serialize into ``out`` (int64, caller-allocated); return words.

        ``val`` is bit-copied through an int64 view, so the float64
        payload survives exactly.
        """
        cursor = 0
        for part in (
            self.targets,
            self.ranks,
            self.lens,
            self.idx,
            self.val.view(np.int64),
        ):
            out[cursor : cursor + part.size] = part
            cursor += part.size
        return cursor

    @classmethod
    def from_words(
        cls, words: np.ndarray, count: int, sections: Tuple[int, int, int]
    ) -> "PackedPlanBatch":
        """Rebuild from a word block — pure views, no copies."""
        lens_len, idx_len, val_len = sections
        bounds = np.cumsum([count, count, lens_len, idx_len, val_len])
        if words.size < int(bounds[-1]):
            raise ValueError(
                f"packed plan batch needs {int(bounds[-1])} words, "
                f"got {words.size}"
            )
        return cls(
            targets=words[: bounds[0]],
            ranks=words[bounds[0] : bounds[1]],
            lens=words[bounds[1] : bounds[2]],
            idx=words[bounds[2] : bounds[3]],
            val=words[bounds[3] : bounds[4]].view(np.float64),
        )

    def plans(self) -> List["UpdatePlan"]:
        """Rebuild the batch's plans as views into the packed arrays.

        The rebuilt plans carry everything :meth:`UpdatePlan.panels` and
        the executors' scatter paths read — factors and support unions —
        bit-identical to the originals.  Planning-time diagnostics
        (``affected``, ``vectors``) do not ride the wire.
        """
        out: List[UpdatePlan] = []
        len_at = 0
        idx_at = 0
        val_at = 0
        for k in range(self.count):
            rows_len = int(self.lens[len_at])
            cols_len = int(self.lens[len_at + 1])
            len_at += 2
            rows_union = self.idx[idx_at : idx_at + rows_len]
            idx_at += rows_len
            cols_union = self.idx[idx_at : idx_at + cols_len]
            idx_at += cols_len
            left: List[SparseVector] = []
            right: List[SparseVector] = []
            for _ in range(int(self.ranks[k])):
                left_len = int(self.lens[len_at])
                right_len = int(self.lens[len_at + 1])
                len_at += 2
                left_idx = self.idx[idx_at : idx_at + left_len]
                idx_at += left_len
                right_idx = self.idx[idx_at : idx_at + right_len]
                idx_at += right_len
                left_val = self.val[val_at : val_at + left_len]
                val_at += left_len
                right_val = self.val[val_at : val_at + right_len]
                val_at += right_len
                left.append((left_idx, left_val))
                right.append((right_idx, right_val))
            out.append(
                UpdatePlan(
                    target=int(self.targets[k]),
                    left_factors=left,
                    right_factors=right,
                    rows_union=rows_union,
                    cols_union=cols_union,
                    affected=None,
                )
            )
        return out


@dataclass
class PlanBatch:
    """An ordered sequence of :class:`UpdatePlan` objects — one drain.

    The batch is the executor contract of the pipelined cluster path:
    the parent plans a whole drain (each plan against the scores left by
    the previous one), then ships the batch in a single command, and the
    workers apply the plans **in order** with exactly the per-plan
    union-support GEMM + scatter arithmetic of the unbatched path.
    Application is deliberately *not* fused across plans: folding the
    batch into one wider GEMM reorders BLAS reductions wherever two
    plans' supports overlap, which breaks the bit-equivalence gate
    against the in-process executor.  Batching amortizes the per-message
    round trip, not the arithmetic.
    """

    plans: List[UpdatePlan]

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self):
        return iter(self.plans)

    @property
    def is_noop(self) -> bool:
        return all(plan.is_noop for plan in self.plans)

    @property
    def total_rank(self) -> int:
        return sum(plan.rank for plan in self.plans)

    def nbytes(self) -> int:
        return sum(plan.nbytes() for plan in self.plans)

    def packed(self) -> PackedPlanBatch:
        """Flatten into the contiguous wire encoding (fresh arrays)."""
        targets = np.empty(len(self.plans), dtype=np.int64)
        ranks = np.empty(len(self.plans), dtype=np.int64)
        lens: List[int] = []
        idx_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        for k, plan in enumerate(self.plans):
            targets[k] = plan.target
            ranks[k] = plan.rank
            lens.append(plan.rows_union.size)
            lens.append(plan.cols_union.size)
            idx_parts.append(plan.rows_union)
            idx_parts.append(plan.cols_union)
            for (l_idx, l_val), (r_idx, r_val) in zip(
                plan.left_factors, plan.right_factors
            ):
                lens.append(l_idx.size)
                lens.append(r_idx.size)
                idx_parts.append(l_idx)
                idx_parts.append(r_idx)
                val_parts.append(l_val)
                val_parts.append(r_val)
        return PackedPlanBatch(
            targets=targets,
            ranks=ranks,
            lens=np.asarray(lens, dtype=np.int64),
            idx=(
                np.concatenate(idx_parts).astype(np.int64, copy=False)
                if idx_parts
                else _EMPTY_IDX
            ),
            val=(
                np.concatenate(val_parts)
                if val_parts
                else _EMPTY_VAL
            ),
        )


def plan_rank_one(
    store,
    target: int,
    vectors: UpdateVectors,
    config: SimRankConfig,
    tolerance: float = 0.0,
) -> UpdatePlan:
    """Plan the pruned Inc-SR iteration (lines 13–20 of Algorithm 2).

    ``store`` is the **old** :class:`~repro.linalg.qstore.TransitionStore`
    and ``vectors`` the Theorem 1–3 quantities for a rank-one update of
    row ``target`` (``vectors.u`` supported on ``{target}``).  Pure
    read-only planning: neither the store nor any score state is
    touched, and the returned plan's factor supports are exactly the
    realized affected areas of Theorem 4.
    """
    damping = config.damping
    n = store.shape[0]

    u_scale = float(vectors.u[target])  # the only nonzero of u
    v_dense = vectors.v

    # ξ_0 = C·e_j, η_0 = γ (support = B_0 of Theorem 4).
    xi_idx = np.asarray([target], dtype=np.int64)
    xi_val = np.asarray([damping])
    eta_idx, eta_val = to_support(vectors.gamma, tolerance)

    stats = AffectedAreaStats(num_nodes=n)
    stats.record(xi_idx.size, eta_idx.size)

    left: List[SparseVector] = []
    right: List[SparseVector] = []
    if xi_idx.size and eta_idx.size:
        left.append((xi_idx, xi_val))
        right.append((eta_idx, eta_val))

    for _ in range(config.iterations):
        if xi_idx.size == 0 or eta_idx.size == 0:
            break
        # Q̃·x = Q·x + (vᵀ·x)·u without materializing Q̃ (Theorem 1);
        # u's support is {j}, so the correction lands on one entry.
        delta_xi = float(v_dense[xi_idx] @ xi_val) * u_scale
        delta_eta = float(v_dense[eta_idx] @ eta_val) * u_scale
        (xi_idx, xi_val), (eta_idx, eta_val) = store.gather_columns_pair(
            xi_idx, xi_val, eta_idx, eta_val
        )
        xi_idx, xi_val = add_entry(xi_idx, xi_val, target, delta_xi)
        xi_val *= damping
        eta_idx, eta_val = add_entry(eta_idx, eta_val, target, delta_eta)

        xi_idx, xi_val = filter_support(xi_idx, xi_val, tolerance)
        eta_idx, eta_val = filter_support(eta_idx, eta_val, tolerance)
        stats.record(xi_idx.size, eta_idx.size)
        if xi_idx.size and eta_idx.size:
            left.append((xi_idx, xi_val))
            right.append((eta_idx, eta_val))

    rows_union = (
        sorted_union([idx for idx, _ in left]) if left else _EMPTY_IDX
    )
    cols_union = (
        sorted_union([idx for idx, _ in right]) if right else _EMPTY_IDX
    )
    return UpdatePlan(
        target=target,
        left_factors=left,
        right_factors=right,
        rows_union=rows_union,
        cols_union=cols_union,
        affected=stats,
        vectors=vectors,
    )


def plan_unit_update(
    store,
    scores,
    update,
    graph,
    config: SimRankConfig,
    workspace=None,
    tolerance: float = 0.0,
) -> UpdatePlan:
    """Plan one unit edge update end to end (Theorems 1–4).

    Runs the Theorem 1–3 precomputation against the old ``(Q, S)`` state
    — ``scores`` may be a dense matrix or any score source supporting
    ``[:, i]`` / ``[i, j]`` reads, e.g. a
    :class:`~repro.executor.score_store.ScoreStore` — then the pruned
    planner.  Nothing is mutated; apply the returned plan through the
    executor of your choice.
    """
    from .gamma import compute_update_vectors

    vectors = compute_update_vectors(
        store, scores, update, graph, config, workspace=workspace
    )
    return plan_rank_one(
        store, update.target, vectors, config, tolerance=tolerance
    )


def apply_plan_dense(s_matrix: np.ndarray, plan: UpdatePlan) -> np.ndarray:
    """Apply a plan to a plain dense score matrix, in place.

    The reference executor: one union-support GEMM followed by two
    fancy-indexed scatter-adds (block and transpose).  The sharded
    :class:`~repro.executor.score_store.ScoreStore` applies the same
    block row-slice by row-slice, so both executors are bit-identical.
    """
    if plan.is_noop:
        return s_matrix
    left, right = plan.panels()
    block = left @ right.T
    s_matrix[np.ix_(plan.rows_union, plan.cols_union)] += block
    s_matrix[np.ix_(plan.cols_union, plan.rows_union)] += block.T
    return s_matrix
