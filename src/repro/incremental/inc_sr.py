"""Algorithm 2 — **Inc-SR**: incremental SimRank with affected-area pruning.

Inc-SR is Inc-uSR restricted, at every step, to the affected areas of
Theorem 4.  This implementation realizes the pruning with *sparse
vector* arithmetic over the CSC slabs of a
:class:`~repro.linalg.qstore.TransitionStore`: the product ``Q·ξ_k`` is
a gather over exactly the columns in ``supp(ξ_k)`` — whose touched rows
are precisely the out-neighbor closure ``A_k`` of Theorem 4's Eq. (40)
— and the outer-product accumulation touches exactly ``A_k × B_k``
entries.  The gather returns its result *sparse* (sorted indices +
sums), so a whole iteration costs
``O(nnz(Q[:, supp])·log + |A_k|·|B_k|)`` with **no O(n) dense-vector
pass at all** — the seed implementation materialized two dense
``n``-vectors per iteration just to re-extract their supports.

The pruning is *lossless*: every skipped entry is provably zero
(Theorem 4), so Inc-SR and Inc-uSR return identical matrices up to float
round-off — a property the test suite asserts on random graphs.

The recorded :class:`~repro.incremental.affected.AffectedAreaStats` use
the realized supports ``supp(ξ_k)``/``supp(η_k)`` (subsets of the paper's
closure sets ``A_k``/``B_k``; equal to them in the absence of exact
numerical cancellation), i.e. the affected area actually computed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate
from ..linalg.qstore import TransitionStore
from ..simrank.base import default_config
from .affected import AffectedAreaStats
from .gamma import UpdateVectors, compute_update_vectors
from .inc_usr import UnitUpdateResult
from .workspace import UpdateWorkspace

SparseVector = Tuple[np.ndarray, np.ndarray]  # (indices, values)


def _to_support(dense: np.ndarray, tolerance: float) -> SparseVector:
    """Dense vector -> (indices, values) above the magnitude tolerance."""
    indices = np.nonzero(np.abs(dense) > tolerance)[0]
    return indices, dense[indices]


def _filter_support(
    indices: np.ndarray, values: np.ndarray, tolerance: float
) -> SparseVector:
    """Drop sparse entries at or below the magnitude tolerance."""
    keep = np.abs(values) > tolerance
    if keep.all():
        return indices, values
    return indices[keep], values[keep]


def _add_entry(
    indices: np.ndarray, values: np.ndarray, position: int, delta: float
) -> SparseVector:
    """Add ``delta`` at ``position`` of a sorted sparse vector."""
    if delta == 0.0:
        return indices, values
    at = int(np.searchsorted(indices, position))
    if at < indices.size and indices[at] == position:
        values[at] += delta
        return indices, values
    return (
        np.insert(indices, at, position),
        np.insert(values, at, delta),
    )


def _sorted_union(index_arrays) -> np.ndarray:
    """Union of sorted index arrays (sort + run-length dedup beats hashing)."""
    if len(index_arrays) == 1:
        return index_arrays[0]
    merged = np.concatenate(index_arrays)
    merged.sort(kind="stable")
    keep = np.empty(merged.size, dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


def _scatter_series(
    new_s: np.ndarray,
    xi_stack,
    eta_stack,
) -> None:
    """Add ``Σ_k ξ_k·η_kᵀ`` (and its transpose) into ``new_s``.

    The per-iteration factor pairs are batched into two dense panels
    over the *union* supports and combined with one BLAS GEMM, so the
    score matrix is scatter-updated twice per update instead of twice
    per iteration — the fancy-indexed scatter-add is the slow part, the
    GEMM is nearly free.
    """
    if not xi_stack:
        return
    rows_union = _sorted_union([idx for idx, _ in xi_stack])
    cols_union = _sorted_union([idx for idx, _ in eta_stack])
    terms = len(xi_stack)
    left = np.zeros((rows_union.size, terms))
    right = np.zeros((cols_union.size, terms))
    for term, (idx, val) in enumerate(xi_stack):
        left[np.searchsorted(rows_union, idx), term] = val
    for term, (idx, val) in enumerate(eta_stack):
        right[np.searchsorted(cols_union, idx), term] = val
    block = left @ right.T
    new_s[np.ix_(rows_union, cols_union)] += block
    new_s[np.ix_(cols_union, rows_union)] += block.T


def _resolve_store(q_matrix, q_csc) -> TransitionStore:
    """Accept a live :class:`TransitionStore` or build one from CSR.

    ``q_csc`` (the scipy-era cache hint) still pays off here: it skips
    the transpose pass when a throwaway store must be built for a
    plain-CSR caller.
    """
    if isinstance(q_matrix, TransitionStore):
        return q_matrix
    return TransitionStore.from_csr(q_matrix, csc_hint=q_csc)


def inc_sr_core(
    q_matrix,
    s_matrix: np.ndarray,
    target: int,
    vectors: UpdateVectors,
    config: SimRankConfig,
    tolerance: float = 0.0,
    in_place: bool = False,
    q_csc: Optional[sp.csc_matrix] = None,
    workspace: Optional[UpdateWorkspace] = None,
) -> UnitUpdateResult:
    """The pruned iteration (lines 13–20 of Algorithm 2).

    ``q_matrix``/``s_matrix`` describe the *old* graph and ``vectors``
    must already hold the Theorem 1–3 quantities for a rank-one update
    of row ``target`` (``vectors.u`` supported on ``{target}``).
    ``q_matrix`` may be a scipy CSR matrix or — on the engine's zero-
    rebuild fast path — a live :class:`TransitionStore`, whose CSC slabs
    are gathered directly.  With ``in_place=True`` the update is written
    directly into ``s_matrix`` (the engine's fast path); otherwise
    ``s_matrix`` is copied first.  For plain-CSR callers ``q_csc`` may
    supply a cached CSC view, sparing the throwaway store a transpose
    pass.  ``workspace`` is accepted for interface symmetry; the core
    itself works on sparse supports and needs no dense scratch.
    """
    damping = config.damping
    store = _resolve_store(q_matrix, q_csc)
    n = store.shape[0]

    u_scale = float(vectors.u[target])  # the only nonzero of u
    v_dense = vectors.v

    # ξ_0 = C·e_j, η_0 = γ (support = B_0 of Theorem 4).
    xi_idx = np.asarray([target], dtype=np.int64)
    xi_val = np.asarray([damping])
    eta_idx, eta_val = _to_support(vectors.gamma, tolerance)

    stats = AffectedAreaStats(num_nodes=n)
    stats.record(xi_idx.size, eta_idx.size)

    new_s = s_matrix if in_place else s_matrix.copy()

    xi_stack = []
    eta_stack = []
    if xi_idx.size and eta_idx.size:
        xi_stack.append((xi_idx, xi_val))
        eta_stack.append((eta_idx, eta_val))

    for _ in range(config.iterations):
        if xi_idx.size == 0 or eta_idx.size == 0:
            break
        # Q̃·x = Q·x + (vᵀ·x)·u without materializing Q̃ (Theorem 1);
        # u's support is {j}, so the correction lands on one entry.
        delta_xi = float(v_dense[xi_idx] @ xi_val) * u_scale
        delta_eta = float(v_dense[eta_idx] @ eta_val) * u_scale
        (xi_idx, xi_val), (eta_idx, eta_val) = store.gather_columns_pair(
            xi_idx, xi_val, eta_idx, eta_val
        )
        xi_idx, xi_val = _add_entry(xi_idx, xi_val, target, delta_xi)
        xi_val *= damping
        eta_idx, eta_val = _add_entry(eta_idx, eta_val, target, delta_eta)

        xi_idx, xi_val = _filter_support(xi_idx, xi_val, tolerance)
        eta_idx, eta_val = _filter_support(eta_idx, eta_val, tolerance)
        stats.record(xi_idx.size, eta_idx.size)
        if xi_idx.size and eta_idx.size:
            xi_stack.append((xi_idx, xi_val))
            eta_stack.append((eta_idx, eta_val))

    _scatter_series(new_s, xi_stack, eta_stack)

    return UnitUpdateResult(
        new_s=new_s,
        delta_s=None,
        vectors=vectors,
        affected=stats,
    )


def inc_sr_update(
    graph: DynamicDiGraph,
    q_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    config: SimRankConfig = None,
    new_graph: Optional[DynamicDiGraph] = None,
    tolerance: float = 0.0,
    workspace: Optional[UpdateWorkspace] = None,
) -> UnitUpdateResult:
    """Apply one unit update with Algorithm 2 (pruned, exact).

    Parameters
    ----------
    graph, q_matrix, s_matrix:
        State of the *old* graph (none of them is mutated);
        ``q_matrix`` may be CSR or a :class:`TransitionStore`.
    update:
        The unit update on edge ``(i, j)``.
    new_graph:
        Unused (kept for interface compatibility; the sparse-vector
        formulation does not need the updated graph).
    tolerance:
        Support threshold: entries with ``|x| <= tolerance`` are treated
        as zero when growing affected areas.  ``0.0`` (default) keeps the
        pruning lossless.
    workspace:
        Optional pooled scratch for the Theorem 1–3 precomputation.

    Returns
    -------
    UnitUpdateResult
        With :attr:`~repro.incremental.inc_usr.UnitUpdateResult.affected`
        populated; ``delta_s`` is filled in as ``new_s − s_matrix``.
    """
    cfg = default_config(config)
    vectors = compute_update_vectors(
        q_matrix, s_matrix, update, graph, cfg, workspace=workspace
    )
    result = inc_sr_core(
        q_matrix, s_matrix, update.target, vectors, cfg, tolerance=tolerance
    )
    result.delta_s = result.new_s - s_matrix
    return result
