"""Algorithm 2 — **Inc-SR**: incremental SimRank with affected-area pruning.

Inc-SR is Inc-uSR restricted, at every step, to the affected areas of
Theorem 4.  This implementation realizes the pruning with *sparse vector*
arithmetic over the raw CSC arrays of ``Q``: the product ``Q·ξ_k`` is a
gather over exactly the columns in ``supp(ξ_k)`` — whose touched rows are
precisely the out-neighbor closure ``A_k`` of Theorem 4's Eq. (40) — and
the outer-product accumulation touches exactly ``A_k × B_k`` entries.
Per-iteration cost is ``O(nnz(Q[:, supp]) + |A_k|·|B_k|)`` instead of the
unpruned ``O(n·d + n²)``.

The pruning is *lossless*: every skipped entry is provably zero
(Theorem 4), so Inc-SR and Inc-uSR return identical matrices up to float
round-off — a property the test suite asserts on random graphs.

The recorded :class:`~repro.incremental.affected.AffectedAreaStats` use
the realized supports ``supp(ξ_k)``/``supp(η_k)`` (subsets of the paper's
closure sets ``A_k``/``B_k``; equal to them in the absence of exact
numerical cancellation), i.e. the affected area actually computed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate
from ..simrank.base import default_config
from .affected import AffectedAreaStats
from .gamma import UpdateVectors, compute_update_vectors
from .inc_usr import UnitUpdateResult

SparseVector = Tuple[np.ndarray, np.ndarray]  # (indices, values)


def _gather_matvec(
    csc: sp.csc_matrix,
    indices: np.ndarray,
    values: np.ndarray,
    num_rows: int,
) -> np.ndarray:
    """Dense ``Q @ x`` for a sparse ``x = (indices, values)``.

    Gathers the CSC columns in ``supp(x)`` (a fully vectorized
    range-concatenation) and scatter-adds with ``np.bincount``; cost is
    ``O(nnz(Q[:, supp]) + n)`` with no scipy object churn.
    """
    if indices.size == 0:
        return np.zeros(num_rows)
    starts = csc.indptr[indices]
    ends = csc.indptr[indices + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(num_rows)
    # Positions of all gathered nnz entries inside csc.data/indices.
    head = np.repeat(
        starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    positions = head + np.arange(total)
    rows = csc.indices[positions]
    contributions = csc.data[positions] * np.repeat(values, counts)
    return np.bincount(rows, weights=contributions, minlength=num_rows)


def _to_support(dense: np.ndarray, tolerance: float) -> SparseVector:
    """Dense vector -> (indices, values) above the magnitude tolerance."""
    indices = np.nonzero(np.abs(dense) > tolerance)[0]
    return indices, dense[indices]


def inc_sr_core(
    q_matrix: sp.csr_matrix,
    s_matrix: np.ndarray,
    target: int,
    vectors: UpdateVectors,
    config: SimRankConfig,
    tolerance: float = 0.0,
    in_place: bool = False,
    q_csc: Optional[sp.csc_matrix] = None,
) -> UnitUpdateResult:
    """The pruned iteration (lines 13–20 of Algorithm 2).

    ``q_matrix``/``s_matrix`` describe the *old* graph and ``vectors``
    must already hold the Theorem 1–3 quantities for a rank-one update
    of row ``target`` (``vectors.u`` supported on ``{target}``).  With
    ``in_place=True`` the update is written directly into ``s_matrix``
    (the engine's fast path); otherwise ``s_matrix`` is copied first.
    ``q_csc`` may supply a cached CSC view of ``q_matrix`` to skip the
    conversion.
    """
    damping = config.damping
    n = q_matrix.shape[0]
    csc = q_matrix.tocsc() if q_csc is None else q_csc

    u_scale = float(vectors.u[target])  # the only nonzero of u
    v_dense = vectors.v

    # ξ_0 = C·e_j, η_0 = γ (support = B_0 of Theorem 4).
    xi_idx = np.asarray([target], dtype=np.int64)
    xi_val = np.asarray([damping])
    eta_idx, eta_val = _to_support(vectors.gamma, tolerance)

    stats = AffectedAreaStats(num_nodes=n)
    stats.record(xi_idx.size, eta_idx.size)

    new_s = s_matrix if in_place else s_matrix.copy()

    def accumulate(
        rows: np.ndarray, row_vals: np.ndarray, cols: np.ndarray, col_vals: np.ndarray
    ) -> None:
        if rows.size == 0 or cols.size == 0:
            return
        block = np.outer(row_vals, col_vals)
        new_s[np.ix_(rows, cols)] += block
        new_s[np.ix_(cols, rows)] += block.T

    accumulate(xi_idx, xi_val, eta_idx, eta_val)

    for _ in range(config.iterations):
        if xi_idx.size == 0 or eta_idx.size == 0:
            break
        # Q̃·x = Q·x + (vᵀ·x)·u without materializing Q̃ (Theorem 1);
        # u's support is {j}, so the correction lands on one entry.
        delta_xi = float(v_dense[xi_idx] @ xi_val) * u_scale
        delta_eta = float(v_dense[eta_idx] @ eta_val) * u_scale
        xi_dense = _gather_matvec(csc, xi_idx, xi_val, n)
        xi_dense[target] += delta_xi
        xi_dense *= damping
        eta_dense = _gather_matvec(csc, eta_idx, eta_val, n)
        eta_dense[target] += delta_eta

        xi_idx, xi_val = _to_support(xi_dense, tolerance)
        eta_idx, eta_val = _to_support(eta_dense, tolerance)
        stats.record(xi_idx.size, eta_idx.size)
        accumulate(xi_idx, xi_val, eta_idx, eta_val)

    return UnitUpdateResult(
        new_s=new_s,
        delta_s=None,
        vectors=vectors,
        affected=stats,
    )


def inc_sr_update(
    graph: DynamicDiGraph,
    q_matrix: sp.csr_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    config: SimRankConfig = None,
    new_graph: Optional[DynamicDiGraph] = None,
    tolerance: float = 0.0,
) -> UnitUpdateResult:
    """Apply one unit update with Algorithm 2 (pruned, exact).

    Parameters
    ----------
    graph, q_matrix, s_matrix:
        State of the *old* graph (none of them is mutated).
    update:
        The unit update on edge ``(i, j)``.
    new_graph:
        Unused (kept for interface compatibility; the sparse-vector
        formulation does not need the updated graph).
    tolerance:
        Support threshold: entries with ``|x| <= tolerance`` are treated
        as zero when growing affected areas.  ``0.0`` (default) keeps the
        pruning lossless.

    Returns
    -------
    UnitUpdateResult
        With :attr:`~repro.incremental.inc_usr.UnitUpdateResult.affected`
        populated; ``delta_s`` is filled in as ``new_s − s_matrix``.
    """
    cfg = default_config(config)
    vectors = compute_update_vectors(q_matrix, s_matrix, update, graph, cfg)
    result = inc_sr_core(
        q_matrix, s_matrix, update.target, vectors, cfg, tolerance=tolerance
    )
    result.delta_s = result.new_s - s_matrix
    return result
