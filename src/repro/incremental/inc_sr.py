"""Algorithm 2 — **Inc-SR**: incremental SimRank with affected-area pruning.

Inc-SR is Inc-uSR restricted, at every step, to the affected areas of
Theorem 4.  The pruned iteration itself lives in the kernel layer
(:func:`repro.incremental.plan.plan_rank_one`): it realizes the pruning
with *sparse vector* arithmetic over the CSC slabs of a
:class:`~repro.linalg.qstore.TransitionStore` — the product ``Q·ξ_k`` is
a gather over exactly the columns in ``supp(ξ_k)``, whose touched rows
are precisely the out-neighbor closure ``A_k`` of Theorem 4's Eq. (40)
— and returns an explicit :class:`~repro.incremental.plan.UpdatePlan`
(factored low-rank delta + affected support sets) instead of mutating
``S``.  This module is the dense-matrix convenience wrapper: it plans
and then applies the plan to a plain ndarray, which is what the
standalone-function API and the test-suite equivalence checks consume.
A whole update costs ``O(nnz(Q[:, supp])·log + |A_k|·|B_k|)`` with no
O(n) dense-vector pass at all.

The pruning is *lossless*: every skipped entry is provably zero
(Theorem 4), so Inc-SR and Inc-uSR return identical matrices up to float
round-off — a property the test suite asserts on random graphs.

The recorded :class:`~repro.incremental.affected.AffectedAreaStats` use
the realized supports ``supp(ξ_k)``/``supp(η_k)`` (subsets of the paper's
closure sets ``A_k``/``B_k``; equal to them in the absence of exact
numerical cancellation), i.e. the affected area actually computed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate
from ..linalg.qstore import TransitionStore
from ..simrank.base import default_config
from .gamma import UpdateVectors, compute_update_vectors
from .inc_usr import UnitUpdateResult
from .plan import apply_plan_dense, plan_rank_one
from .workspace import UpdateWorkspace


def _resolve_store(q_matrix, q_csc) -> TransitionStore:
    """Accept a live :class:`TransitionStore` or build one from CSR.

    ``q_csc`` (the scipy-era cache hint) still pays off here: it skips
    the transpose pass when a throwaway store must be built for a
    plain-CSR caller.
    """
    if isinstance(q_matrix, TransitionStore):
        return q_matrix
    return TransitionStore.from_csr(q_matrix, csc_hint=q_csc)


def inc_sr_core(
    q_matrix,
    s_matrix: np.ndarray,
    target: int,
    vectors: UpdateVectors,
    config: SimRankConfig,
    tolerance: float = 0.0,
    in_place: bool = False,
    q_csc: Optional[sp.csc_matrix] = None,
    workspace: Optional[UpdateWorkspace] = None,
) -> UnitUpdateResult:
    """The pruned iteration (lines 13–20 of Algorithm 2), dense-applied.

    ``q_matrix``/``s_matrix`` describe the *old* graph and ``vectors``
    must already hold the Theorem 1–3 quantities for a rank-one update
    of row ``target`` (``vectors.u`` supported on ``{target}``).
    ``q_matrix`` may be a scipy CSR matrix or a live
    :class:`TransitionStore`, whose CSC slabs are gathered directly.
    With ``in_place=True`` the update is written directly into
    ``s_matrix``; otherwise ``s_matrix`` is copied first.  For plain-CSR
    callers ``q_csc`` may supply a cached CSC view, sparing the
    throwaway store a transpose pass.  ``workspace`` is accepted for
    interface symmetry; the kernel works on sparse supports and needs no
    dense scratch.

    This is equivalent to :func:`~repro.incremental.plan.plan_rank_one`
    followed by :func:`~repro.incremental.plan.apply_plan_dense`; the
    engine's sharded path applies the same plan through a
    :class:`~repro.executor.score_store.ScoreStore` instead.
    """
    store = _resolve_store(q_matrix, q_csc)
    plan = plan_rank_one(store, target, vectors, config, tolerance=tolerance)
    new_s = s_matrix if in_place else s_matrix.copy()
    apply_plan_dense(new_s, plan)
    return UnitUpdateResult(
        new_s=new_s,
        delta_s=None,
        vectors=vectors,
        affected=plan.affected,
    )


def inc_sr_update(
    graph: DynamicDiGraph,
    q_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    config: SimRankConfig = None,
    new_graph: Optional[DynamicDiGraph] = None,
    tolerance: float = 0.0,
    workspace: Optional[UpdateWorkspace] = None,
) -> UnitUpdateResult:
    """Apply one unit update with Algorithm 2 (pruned, exact).

    Parameters
    ----------
    graph, q_matrix, s_matrix:
        State of the *old* graph (none of them is mutated);
        ``q_matrix`` may be CSR or a :class:`TransitionStore`.
    update:
        The unit update on edge ``(i, j)``.
    new_graph:
        Unused (kept for interface compatibility; the sparse-vector
        formulation does not need the updated graph).
    tolerance:
        Support threshold: entries with ``|x| <= tolerance`` are treated
        as zero when growing affected areas.  ``0.0`` (default) keeps the
        pruning lossless.
    workspace:
        Optional pooled scratch for the Theorem 1–3 precomputation.

    Returns
    -------
    UnitUpdateResult
        With :attr:`~repro.incremental.inc_usr.UnitUpdateResult.affected`
        populated; ``delta_s`` is filled in as ``new_s − s_matrix``.
    """
    cfg = default_config(config)
    vectors = compute_update_vectors(
        q_matrix, s_matrix, update, graph, cfg, workspace=workspace
    )
    result = inc_sr_core(
        q_matrix, s_matrix, update.target, vectors, cfg, tolerance=tolerance
    )
    result.delta_s = result.new_s - s_matrix
    return result
