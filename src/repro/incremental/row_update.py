"""Generalized rank-one *row* updates and batch consolidation.

An extension beyond the paper's unit updates: Theorem 1 shows a single
edge change rewrites one row of ``Q`` and hence factors as ``ΔQ = u·vᵀ``
with ``u ∝ e_j``.  But the proof of Theorems 2–3 never uses the *unit*
structure — it holds for **any** rank-one ``ΔQ``.  Consequently, *any
set of edge changes that all target the same node j* (several citations
added to one paper, a whole related-video list rewritten) is still a
single rank-one update:

    ΔQ = e_j · (new_row_j − old_row_j)ᵀ,

and costs one Sylvester-series run instead of one per edge.

:func:`consolidate_batch` groups an update batch by target node (after
cancelling insert/delete pairs that annihilate), and
:func:`apply_row_update` runs the pruned Inc-SR core on the composite
rank-one change.  The result is bit-compatible with processing the
group's unit updates sequentially only in the limit ``K → ∞``; at finite
``K`` both are within the same truncation bound of the exact fixed
point (asserted by the tests), while the consolidated path does
``(group size)×`` less work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..exceptions import GraphError
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..linalg.qstore import TransitionStore
from ..simrank.base import default_config
from .gamma import UpdateVectors
from .inc_sr import inc_sr_core
from .inc_usr import UnitUpdateResult
from .workspace import UpdateWorkspace


@dataclass(frozen=True)
class RowUpdate:
    """A composite change to the in-neighbor set of one target node.

    Attributes
    ----------
    target:
        The node whose ``Q`` row changes (the ``j`` of the paper).
    added, removed:
        Source nodes gaining/losing an edge into ``target``; disjoint.
    """

    target: int
    added: Tuple[int, ...]
    removed: Tuple[int, ...]

    @property
    def num_changes(self) -> int:
        """Number of unit edge updates this row update replaces."""
        return len(self.added) + len(self.removed)

    def unit_updates(self) -> List[EdgeUpdate]:
        """The equivalent sequence of unit updates (removals first)."""
        removals = [EdgeUpdate.delete(s, self.target) for s in self.removed]
        additions = [EdgeUpdate.insert(s, self.target) for s in self.added]
        return removals + additions

    def apply_to(self, graph: DynamicDiGraph) -> None:
        """Mutate ``graph`` with all of this row's edge changes."""
        for update in self.unit_updates():
            update.apply_to(graph)


def consolidate_batch(
    batch: UpdateBatch, graph: DynamicDiGraph
) -> List[RowUpdate]:
    """Group a batch into per-target :class:`RowUpdate` objects.

    Net semantics: an insert followed by a delete of the same edge (or
    vice versa) cancels.  The batch must be sequentially applicable to
    ``graph`` (validated).  Row updates are returned in ascending target
    order; because each touches a distinct ``Q`` row, their relative
    order does not affect the final graph.
    """
    batch.validate_against(graph)
    added: Dict[int, Set[int]] = {}
    removed: Dict[int, Set[int]] = {}
    for update in batch:
        source, target = update.edge
        add_set = added.setdefault(target, set())
        remove_set = removed.setdefault(target, set())
        if update.is_insert:
            if source in remove_set:
                remove_set.discard(source)
            else:
                add_set.add(source)
        else:
            if source in add_set:
                add_set.discard(source)
            else:
                remove_set.add(source)
    row_updates = []
    for target in sorted(set(added) | set(removed)):
        add_tuple = tuple(sorted(added.get(target, ())))
        remove_tuple = tuple(sorted(removed.get(target, ())))
        if add_tuple or remove_tuple:
            row_updates.append(
                RowUpdate(target=target, added=add_tuple, removed=remove_tuple)
            )
    return row_updates


def row_rank_one_vectors(
    graph: DynamicDiGraph, row_update: RowUpdate
) -> Tuple[np.ndarray, np.ndarray]:
    """The rank-one factors ``(u, v)`` of a composite row change.

    ``u = e_target`` and ``v = new_row − old_row`` where both rows are
    the in-neighbor-averaged ``Q`` rows before/after the change.
    ``graph`` is the graph *before* the row update.
    """
    n = graph.num_nodes
    target = row_update.target
    old_set = set(graph.in_neighbors(target))
    for source in row_update.removed:
        if source not in old_set:
            raise GraphError(
                f"row update removes missing edge ({source} -> {target})"
            )
    for source in row_update.added:
        if source in old_set:
            raise GraphError(
                f"row update adds existing edge ({source} -> {target})"
            )
    new_set = (old_set - set(row_update.removed)) | set(row_update.added)

    old_row = np.zeros(n)
    if old_set:
        old_row[sorted(old_set)] = 1.0 / len(old_set)
    new_row = np.zeros(n)
    if new_set:
        new_row[sorted(new_set)] = 1.0 / len(new_set)

    u_vector = np.zeros(n)
    u_vector[target] = 1.0
    return u_vector, new_row - old_row


def general_update_vectors(
    q_matrix,
    s_matrix: np.ndarray,
    u_vector: np.ndarray,
    v_vector: np.ndarray,
    target: int,
    config: SimRankConfig,
    workspace: UpdateWorkspace = None,
) -> UpdateVectors:
    """Theorem 2 for an arbitrary rank-one ``ΔQ = u·vᵀ`` with ``u = e_j``.

    Computes ``z = S·v``, ``y = Q·z``, ``λ = vᵀ·z`` and folds
    ``w = y + (λ/2)·u`` into the γ vector consumed by the Inc-SR core.
    This is the generic path the degree-specialized closed forms of
    Eqs. (27)–(28) shortcut.  ``q_matrix`` may be CSR or a
    :class:`TransitionStore`; a ``workspace`` pools the dense scratch.
    """
    if workspace is None:
        z_vector = s_matrix @ v_vector
        y_vector = q_matrix @ z_vector
        lam = float(v_vector @ z_vector)
        gamma = y_vector + 0.5 * lam * u_vector
    else:
        n = s_matrix.shape[0]
        if hasattr(s_matrix, "matvec"):
            # Sharded score stores run the GEMV shard by shard.
            z_vector = s_matrix.matvec(
                v_vector, out=workspace.vector("scratch", n)
            )
        else:
            z_vector = np.dot(
                s_matrix, v_vector, out=workspace.vector("scratch", n)
            )
        if hasattr(q_matrix, "matvec"):
            y_vector = q_matrix.matvec(z_vector, out=workspace.vector("w", n))
        else:
            y_vector = q_matrix @ z_vector
        lam = float(v_vector @ z_vector)
        gamma = workspace.vector("gamma", n)
        np.multiply(u_vector, 0.5 * lam, out=gamma)
        gamma += y_vector
    return UpdateVectors(
        u=u_vector,
        v=v_vector,
        gamma=gamma,
        lam=lam,
        target_degree=-1,  # not meaningful for composite updates
    )


def plan_composite_row_update(
    graph: DynamicDiGraph,
    store: TransitionStore,
    scores,
    row_update: RowUpdate,
    config: SimRankConfig = None,
    workspace: UpdateWorkspace = None,
    tolerance: float = 0.0,
):
    """Plan one composite row update as an explicit kernel UpdatePlan.

    The consolidated-batch analogue of
    :func:`repro.incremental.plan.plan_unit_update`: reads the old
    ``(graph, Q, S)`` state only and returns the factored low-rank plan
    for the whole row group.  ``scores`` may be dense or a sharded
    score store (anything supporting ``[:, i]`` reads and ``matvec``).
    """
    from .plan import plan_rank_one

    cfg = default_config(config)
    u_vector, v_vector = row_rank_one_vectors(graph, row_update)
    vectors = general_update_vectors(
        store,
        scores,
        u_vector,
        v_vector,
        row_update.target,
        cfg,
        workspace=workspace,
    )
    return plan_rank_one(
        store, row_update.target, vectors, cfg, tolerance=tolerance
    )


def apply_row_update(
    graph: DynamicDiGraph,
    q_matrix,
    s_matrix: np.ndarray,
    row_update: RowUpdate,
    config: SimRankConfig = None,
    tolerance: float = 0.0,
    workspace: UpdateWorkspace = None,
    in_place: bool = False,
) -> UnitUpdateResult:
    """Apply one composite row update with the pruned Inc-SR core.

    ``graph``/``q_matrix``/``s_matrix`` describe the state *before* the
    row update (``q_matrix`` may be CSR or a :class:`TransitionStore`).
    By default nothing is mutated and ``delta_s`` is filled in; with
    ``in_place=True`` the update is written straight into ``s_matrix``
    and ``delta_s`` stays ``None`` (the consolidated-batch hot path).
    """
    cfg = default_config(config)
    u_vector, v_vector = row_rank_one_vectors(graph, row_update)
    vectors = general_update_vectors(
        q_matrix,
        s_matrix,
        u_vector,
        v_vector,
        row_update.target,
        cfg,
        workspace=workspace,
    )
    result = inc_sr_core(
        q_matrix,
        s_matrix,
        row_update.target,
        vectors,
        cfg,
        tolerance=tolerance,
        in_place=in_place,
    )
    if not in_place:
        result.delta_s = result.new_s - s_matrix
    return result


def apply_consolidated_batch(
    graph: DynamicDiGraph,
    q_matrix,
    s_matrix: np.ndarray,
    batch: UpdateBatch,
    config: SimRankConfig = None,
    tolerance: float = 0.0,
    store: TransitionStore = None,
    workspace: UpdateWorkspace = None,
    in_place: bool = False,
) -> Tuple[np.ndarray, sp.csr_matrix, DynamicDiGraph, int]:
    """Process a whole batch as consolidated row updates.

    Returns ``(new_s, new_q, new_graph, num_row_updates)``.  Each row
    group is one rank-one Sylvester run, so a batch with ``g`` distinct
    targets costs ``g`` runs instead of ``len(batch)``.

    By default nothing is mutated (the graph and scores are copied and a
    private :class:`TransitionStore` is built from ``q_matrix``).  The
    engine's zero-rebuild path passes its live ``store``/``workspace``
    with ``in_place=True``: the graph, scores, and store are then
    mutated directly and only row-granular surgery happens — no CSR
    rebuild anywhere.
    """
    cfg = default_config(config)
    row_updates = consolidate_batch(batch, graph)
    live_graph = graph if in_place else graph.copy()
    if store is None:
        store = TransitionStore.from_csr(q_matrix)
    elif not in_place:
        # Honor the no-mutation default for a caller-supplied store too.
        store = store.copy()
    scores = s_matrix if in_place else s_matrix.copy()
    for row_update in row_updates:
        apply_row_update(
            live_graph,
            store,
            scores,
            row_update,
            cfg,
            tolerance=tolerance,
            workspace=workspace,
            in_place=True,
        )
        row_update.apply_to(live_graph)
        # Row-granular surgery on the dual store (no CSR rebuild).
        store.set_row_from_graph(live_graph, row_update.target)
    return scores, store.csr_matrix(), live_graph, len(row_updates)
