"""Theorem 1: the rank-one structure of transition-matrix updates.

For a unit update on edge ``(i, j)`` (source ``i``, target ``j``), only
row ``j`` of ``Q`` changes, and the change factors as ``ΔQ = u·vᵀ``:

Insertion (``d_j`` = in-degree of ``j`` in the *old* graph):

* ``d_j = 0``:  ``u = e_j``,            ``v = e_i``
* ``d_j > 0``:  ``u = e_j/(d_j + 1)``,  ``v = e_i − [Q]ᵀ_{j,:}``

Deletion (the edge exists, so ``d_j >= 1``):

* ``d_j = 1``:  ``u = e_j``,            ``v = −e_i``
* ``d_j > 1``:  ``u = e_j/(d_j − 1)``,  ``v = [Q]ᵀ_{j,:} − e_i``

The decomposition is validated end-to-end by tests that materialize
``u·vᵀ`` and compare against ``Q̃ − Q``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import EdgeExistsError, EdgeNotFoundError
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate
from .workspace import UpdateWorkspace


def validate_update(graph: DynamicDiGraph, update: EdgeUpdate) -> None:
    """Check that ``update`` is applicable to ``graph`` (raises if not)."""
    source, target = update.edge
    exists = graph.has_edge(source, target)
    if update.is_insert and exists:
        raise EdgeExistsError(source, target)
    if not update.is_insert and not exists:
        raise EdgeNotFoundError(source, target)


def old_transition_row_dense(graph: DynamicDiGraph, node: int) -> np.ndarray:
    """Dense ``[Q]_{node,:}`` of the *old* graph as a 1-D array."""
    n = graph.num_nodes
    row = np.zeros(n)
    in_list = graph.in_neighbors(node)
    if in_list:
        weight = 1.0 / len(in_list)
        for neighbor in in_list:
            row[neighbor] = weight
    return row


def rank_one_decomposition(
    graph: DynamicDiGraph,
    update: EdgeUpdate,
    workspace: Optional[UpdateWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return dense ``(u, v)`` with ``Q̃ − Q = u·vᵀ`` (Theorem 1).

    ``graph`` must be the graph *before* the update; the update must be
    applicable (inserting a missing edge / deleting an existing one).
    With a ``workspace``, ``u`` and ``v`` alias pooled buffers (valid
    until the next update); otherwise they are freshly allocated.
    """
    validate_update(graph, update)
    n = graph.num_nodes
    source, target = update.edge
    degree = graph.in_degree(target)

    if workspace is None:
        u_vector = np.zeros(n)
        v_vector = np.zeros(n)
    else:
        u_vector = workspace.zeros("u", n)
        v_vector = workspace.zeros("v", n)

    if update.is_insert:
        if degree == 0:
            u_vector[target] = 1.0
            v_vector[source] = 1.0
        else:
            u_vector[target] = 1.0 / (degree + 1)
            neighbors = np.fromiter(
                graph.in_neighbors(target), dtype=np.int64, count=degree
            )
            v_vector[neighbors] = -(1.0 / degree)
            v_vector[source] += 1.0
    else:
        if degree == 1:
            u_vector[target] = 1.0
            v_vector[source] = -1.0
        else:
            u_vector[target] = 1.0 / (degree - 1)
            neighbors = np.fromiter(
                graph.in_neighbors(target), dtype=np.int64, count=degree
            )
            v_vector[neighbors] = 1.0 / degree
            v_vector[source] -= 1.0
    return u_vector, v_vector


def delta_q_dense(graph: DynamicDiGraph, update: EdgeUpdate) -> np.ndarray:
    """Materialized ``ΔQ = u·vᵀ`` (dense); for tests and documentation."""
    u_vector, v_vector = rank_one_decomposition(graph, update)
    return np.outer(u_vector, v_vector)


def target_in_degree(graph: DynamicDiGraph, update: EdgeUpdate) -> int:
    """The in-degree ``d_j`` of the update target in the old graph."""
    return graph.in_degree(update.target)
