"""Algorithm 1 — **Inc-uSR**: incremental SimRank without pruning.

Given the old graph ``G``, its transition matrix ``Q`` and similarity
matrix ``S``, and a unit update on edge ``(i, j)``:

1. lines 1–12: precompute ``u, v`` (Theorem 1) and ``γ, λ``
   (Theorems 2–3) from the old ``Q`` and ``S``;
2. lines 13–17: iterate the two auxiliary vectors

       ξ_{k+1} = C·Q̃·ξ_k,    η_{k+1} = Q̃·η_k,
       M_{k+1} = ξ_{k+1}·η_{k+1}ᵀ + M_k,

   with ``ξ_0 = C·e_j`` and ``η_0 = γ``, applying
   ``Q̃·x = Q·x + (vᵀx)·u`` so the updated matrix is never formed;
3. line 18: ``S̃ = S + M_K + M_Kᵀ``.

Total cost: ``O(K·n²)`` (the ``n²`` is the outer-product accumulation),
with only matrix–vector and vector–vector products — the paper's headline
improvement over the ``O(r⁴·n²)`` Inc-SVD baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate
from ..linalg.sylvester import rank_one_sylvester_series, updated_matvec
from ..simrank.base import default_config
from .affected import AffectedAreaStats
from .gamma import UpdateVectors, compute_update_vectors
from .workspace import UpdateWorkspace


@dataclass
class UnitUpdateResult:
    """Outcome of one incremental unit update.

    Attributes
    ----------
    new_s:
        The updated similarity matrix ``S̃`` (dense ``n x n``).
    delta_s:
        The SimRank update matrix ``ΔS = M_K + M_Kᵀ`` (``None`` on the
        engine's in-place Inc-SR fast path, where it is never formed).
    vectors:
        The precomputed :class:`~repro.incremental.gamma.UpdateVectors`.
    affected:
        Affected-area statistics; populated by Inc-SR only.
    """

    new_s: np.ndarray
    delta_s: Optional[np.ndarray]
    vectors: UpdateVectors
    affected: Optional[AffectedAreaStats] = field(default=None)


def inc_usr_delta(
    graph: DynamicDiGraph,
    q_matrix,
    scores,
    update: EdgeUpdate,
    config: SimRankConfig = None,
    workspace: "UpdateWorkspace" = None,
):
    """The dense Algorithm 1 delta ``ΔS = M_K + M_Kᵀ`` and its vectors.

    Kernel form of the unpruned update: reads the old state only and
    returns ``(delta_s, vectors)`` without forming ``S̃``, so executors
    that do not hold ``S`` as one ndarray (the sharded
    :class:`~repro.executor.score_store.ScoreStore`) can add the delta
    shard by shard.  ``scores`` may be a dense matrix or any score
    source supporting ``[:, i]`` / ``[i, j]`` reads.
    """
    cfg = default_config(config)
    vectors = compute_update_vectors(
        q_matrix, scores, update, graph, cfg, workspace=workspace
    )

    n = q_matrix.shape[0]
    e_target = (
        np.zeros(n) if workspace is None else workspace.zeros("scratch", n)
    )
    e_target[update.target] = 1.0

    matvec = updated_matvec(q_matrix, vectors.u, vectors.v)
    series = rank_one_sylvester_series(
        matvec,
        u_vector=e_target,
        w_vector=vectors.gamma,
        damping=cfg.damping,
        iterations=cfg.iterations,
        materialize=True,
    )
    m_matrix = series.matrix
    return m_matrix + m_matrix.T, vectors


def inc_usr_update(
    graph: DynamicDiGraph,
    q_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    config: SimRankConfig = None,
    workspace: "UpdateWorkspace" = None,
) -> UnitUpdateResult:
    """Apply one unit update to ``S`` with Algorithm 1 (no pruning).

    ``graph``, ``q_matrix`` and ``s_matrix`` all describe the graph
    *before* the update; ``q_matrix`` may be a scipy CSR matrix or a
    :class:`~repro.linalg.qstore.TransitionStore` (anything supporting
    ``@`` with a dense vector).  The caller is responsible for mutating
    the graph and ``Q`` afterwards (the
    :class:`~repro.incremental.engine.DynamicSimRank` engine does this).
    ``workspace`` optionally pools the Theorem 1–3 scratch vectors.
    """
    delta_s, vectors = inc_usr_delta(
        graph, q_matrix, s_matrix, update, config, workspace=workspace
    )
    return UnitUpdateResult(
        new_s=s_matrix + delta_s,
        delta_s=delta_s,
        vectors=vectors,
    )
