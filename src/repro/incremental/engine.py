"""High-level incremental SimRank session: :class:`DynamicSimRank`.

The engine owns the triple ``(graph, Q, S)`` and keeps it consistent
across unit updates and batches, dispatching to the configured algorithm:

* ``"inc-sr"``  — Algorithm 2 (pruned, default);
* ``"inc-usr"`` — Algorithm 1 (no pruning);
* ``"batch"``   — full recomputation via the matrix-form batch iteration
  (the paper's Batch comparator, used for crossover studies).

Hot-path architecture
---------------------
``Q`` lives in a :class:`~repro.linalg.qstore.TransitionStore` — a
persistent dual CSR/CSC slab store with per-row slack — so a unit update
performs *row-granular surgery only*: no ``tocsc()`` conversion, no
full-array CSR rebuild, no scipy object churn.  Dense per-update scratch
(``u``, ``v``, ``w``, ``γ``) comes from a pooled
:class:`~repro.incremental.workspace.UpdateWorkspace` owned by the
session, and the pruned Inc-SR core iterates on sparse supports gathered
straight from the store's CSC slabs.  The net effect is that per-update
maintenance cost is O(row) instead of the O(nnz) the seed implementation
paid, which is what lets update cost track the affected area rather than
the graph size (the paper's headline claim).

Every update is timed and its affected-area statistics recorded in
:class:`UpdateStats`, which the benchmark harness aggregates into the
paper's figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..exceptions import ConfigError, GraphError
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import verify_transition_matrix
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..linalg.qstore import TransitionStore
from ..simrank.base import default_config
from ..simrank.matrix import matrix_simrank
from .affected import AffectedAreaStats
from .inc_usr import inc_usr_update
from .workspace import UpdateWorkspace

ALGORITHMS = ("inc-sr", "inc-usr", "batch")


@dataclass
class UpdateStats:
    """Per-unit-update bookkeeping produced by the engine."""

    update: EdgeUpdate
    seconds: float
    algorithm: str
    affected: Optional[AffectedAreaStats] = field(default=None)


class DynamicSimRank:
    """A live SimRank index over a link-evolving graph.

    Typical use::

        engine = DynamicSimRank(graph, config=SimRankConfig(0.6, 15))
        engine.apply(EdgeUpdate.insert(3, 7))
        engine.similarity(3, 7)

    Parameters
    ----------
    graph:
        Initial graph; copied, so the caller's object is never mutated.
    config:
        Damping/iterations shared by the initial batch computation and
        all incremental updates.
    algorithm:
        One of ``"inc-sr"`` (default), ``"inc-usr"``, ``"batch"``.
    initial_scores:
        Optional precomputed ``S`` for the initial graph (skips the batch
        precomputation — the paper's "precompute SimRank on the old
        entire graph once" step).
    paranoid:
        When True, re-derive ``Q`` from the graph after every update and
        assert consistency (slow; for tests/debugging).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: SimRankConfig = None,
        algorithm: str = "inc-sr",
        initial_scores: Optional[np.ndarray] = None,
        paranoid: bool = False,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ConfigError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        self._config = default_config(config)
        self._graph = graph.copy()
        self._algorithm = algorithm
        self._paranoid = bool(paranoid)
        self._store = TransitionStore.from_graph(self._graph)
        self._workspace = UpdateWorkspace(self._graph.num_nodes)
        if initial_scores is None:
            self._s_matrix = matrix_simrank(self._store.csr_matrix(), self._config)
        else:
            scores = np.asarray(initial_scores, dtype=np.float64)
            n = self._graph.num_nodes
            if scores.shape != (n, n):
                raise GraphError(
                    f"initial_scores shape {scores.shape} != ({n}, {n})"
                )
            self._s_matrix = scores.copy()
        # Capacity-doubled backing buffer for S; allocated lazily on the
        # first node arrival (see add_node).
        self._s_buffer: Optional[np.ndarray] = None
        self._history: List[UpdateStats] = []

    # ------------------------------------------------------------------ #
    # Read API
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SimRankConfig:
        """The shared configuration."""
        return self._config

    @property
    def algorithm(self) -> str:
        """The configured update algorithm."""
        return self._algorithm

    @property
    def graph(self) -> DynamicDiGraph:
        """The live graph (internal copy; do not mutate)."""
        return self._graph

    @property
    def transition_matrix(self) -> sp.csr_matrix:
        """The live backward transition matrix ``Q`` as scipy CSR.

        A packed view served from the store's cache: repeated reads
        between updates return the same object without copying; the view
        is rebuilt lazily after a mutation.  Treat it as read-only.
        """
        return self._store.csr_matrix()

    @property
    def transition_store(self) -> TransitionStore:
        """The live dual-layout ``Q`` store (the update hot path)."""
        return self._store

    @property
    def history(self) -> List[UpdateStats]:
        """Per-update statistics in application order."""
        return list(self._history)

    def similarities(self) -> np.ndarray:
        """A copy of the full similarity matrix ``S``."""
        return self._s_matrix.copy()

    def similarity(self, node_a: int, node_b: int) -> float:
        """The SimRank score of one node pair."""
        return float(self._s_matrix[node_a, node_b])

    def top_k(self, k: int, include_self: bool = False):
        """Top-``k`` most similar node pairs (delegates to metrics.topk)."""
        from ..metrics.topk import top_k_pairs

        return top_k_pairs(self._s_matrix, k, include_self=include_self)

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #

    def apply(
        self, change: Union[EdgeUpdate, UpdateBatch]
    ) -> List[UpdateStats]:
        """Apply a unit update or a batch; return the new stats entries."""
        updates = [change] if isinstance(change, EdgeUpdate) else list(change)
        produced: List[UpdateStats] = []
        for update in updates:
            produced.append(self._apply_unit(update))
        return produced

    def _apply_unit(self, update: EdgeUpdate) -> UpdateStats:
        started = time.perf_counter()
        affected: Optional[AffectedAreaStats] = None

        if self._algorithm == "batch":
            update.apply_to(self._graph)
            self._store.replace_from_graph(self._graph)
            self._s_matrix = matrix_simrank(
                self._store.csr_matrix(), self._config
            )
        elif self._algorithm == "inc-sr":
            # Fast path: Theorem 1-3 quantities need only the old state,
            # so precompute them into pooled buffers, mutate the graph in
            # place, apply the pruned iteration directly into S, and
            # finish with row-granular surgery on the dual Q store — no
            # copies, no format conversions, no array rebuilds.
            from .gamma import compute_update_vectors
            from .inc_sr import inc_sr_core

            vectors = compute_update_vectors(
                self._store,
                self._s_matrix,
                update,
                self._graph,
                self._config,
                workspace=self._workspace,
            )
            update.apply_to(self._graph)
            result = inc_sr_core(
                self._store,
                self._s_matrix,
                update.target,
                vectors,
                self._config,
                in_place=True,
            )
            affected = result.affected
            self._s_matrix = result.new_s
            self._store.apply_update(update)
        else:
            result = inc_usr_update(
                self._graph,
                self._store,
                self._s_matrix,
                update,
                self._config,
                workspace=self._workspace,
            )
            self._s_matrix = result.new_s
            update.apply_to(self._graph)
            self._store.apply_update(update)

        if self._paranoid:
            problem = verify_transition_matrix(
                self._store.csr_matrix(), self._graph
            )
            if problem is not None:
                raise GraphError(f"paranoid check failed: {problem}")

        stats = UpdateStats(
            update=update,
            seconds=time.perf_counter() - started,
            algorithm=self._algorithm,
            affected=affected,
        )
        self._history.append(stats)
        return stats

    def apply_consolidated(self, batch: UpdateBatch) -> int:
        """Apply a batch as per-target consolidated row updates.

        Groups the batch by target node (cancelling inverse pairs) and
        processes each group as a *single* generalized rank-one update —
        see :mod:`repro.incremental.row_update`.  Returns the number of
        row groups processed.  Only available with the ``inc-sr``
        algorithm (the pruned core is reused for each group).  Runs on
        the engine's live store/workspace, so the whole batch performs
        only row-granular surgery.
        """
        if self._algorithm != "inc-sr":
            raise ConfigError(
                "apply_consolidated requires the 'inc-sr' algorithm, "
                f"engine uses {self._algorithm!r}"
            )
        from .row_update import apply_consolidated_batch

        started = time.perf_counter()
        scores, _, _, groups = apply_consolidated_batch(
            self._graph,
            None,
            self._s_matrix,
            batch,
            self._config,
            store=self._store,
            workspace=self._workspace,
            in_place=True,
        )
        self._s_matrix = scores
        elapsed = time.perf_counter() - started
        for update in batch:
            self._history.append(
                UpdateStats(
                    update=update,
                    seconds=elapsed / max(1, len(batch)),
                    algorithm="inc-sr/consolidated",
                )
            )
        if self._paranoid:
            problem = verify_transition_matrix(
                self._store.csr_matrix(), self._graph
            )
            if problem is not None:
                raise GraphError(f"paranoid check failed: {problem}")
        return groups

    def add_node(self) -> int:
        """Grow the node universe by one isolated node; return its id.

        Node arrival is the paper's other update type (handled in [8] by
        He et al.); here it is exact and amortized O(n): an isolated
        node has an all-zero ``Q`` row/column (one empty segment appended
        to each store layout), and its only nonzero similarity is the
        matrix-form self-score ``1 − C``.  ``S`` grows inside a
        capacity-doubled backing buffer, so a stream of arrivals costs
        one O(n²) copy per *doubling* rather than per node.  Subsequent
        edges to/from the node flow through the normal incremental path.
        """
        node = self._graph.add_node()
        n = self._graph.num_nodes
        self._store.add_node()
        self._workspace.ensure_capacity(n)
        self._grow_scores(n)
        self._s_matrix[node, node] = 1.0 - self._config.damping
        return node

    def _grow_scores(self, n: int) -> None:
        """Extend ``S`` to ``(n, n)``, reusing the doubling buffer."""
        old = self._s_matrix
        old_n = old.shape[0]
        buffer = self._s_buffer
        in_buffer = buffer is not None and old.base is buffer
        if in_buffer and n <= buffer.shape[0]:
            view = buffer[:n, :n]
            view[old_n:, :] = 0.0
            view[:, old_n:] = 0.0
            self._s_matrix = view
            return
        capacity = buffer.shape[0] if in_buffer else old_n
        new_capacity = max(n, 2 * capacity)
        fresh = np.zeros((new_capacity, new_capacity), dtype=old.dtype)
        fresh[:old_n, :old_n] = old
        self._s_buffer = fresh
        self._s_matrix = fresh[:n, :n]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Persist the session (graph, S, config) to a ``.npz`` file.

        The paper's workflow precomputes SimRank once and then serves
        updates; persisting the state lets that precomputation survive
        process restarts.  ``Q`` is rebuilt on load (cheaper than
        storing it).
        """
        edges = np.asarray(list(self._graph.edges()), dtype=np.int64)
        np.savez_compressed(
            path,
            num_nodes=np.asarray([self._graph.num_nodes], dtype=np.int64),
            edges=edges.reshape(-1, 2),
            scores=self._s_matrix,
            damping=np.asarray([self._config.damping]),
            iterations=np.asarray([self._config.iterations], dtype=np.int64),
            algorithm=np.asarray([self._algorithm]),
        )

    @classmethod
    def load(cls, path: str) -> "DynamicSimRank":
        """Restore a session previously written by :meth:`save`."""
        payload = np.load(path, allow_pickle=False)
        num_nodes = int(payload["num_nodes"][0])
        graph = DynamicDiGraph(num_nodes)
        for source, target in payload["edges"]:
            graph.add_edge(int(source), int(target))
        config = SimRankConfig(
            damping=float(payload["damping"][0]),
            iterations=int(payload["iterations"][0]),
        )
        return cls(
            graph,
            config,
            algorithm=str(payload["algorithm"][0]),
            initial_scores=payload["scores"],
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def total_update_seconds(self) -> float:
        """Sum of wall-clock seconds over all applied updates."""
        return sum(stats.seconds for stats in self._history)

    def aggregate_affected(self) -> Optional[AffectedAreaStats]:
        """Merged affected-area stats across all Inc-SR updates (or None)."""
        merged: Optional[AffectedAreaStats] = None
        for stats in self._history:
            if stats.affected is None:
                continue
            merged = (
                stats.affected
                if merged is None
                else merged.merged_with(stats.affected)
            )
        return merged

    def intermediate_bytes(self) -> int:
        """Rough bytes held by the engine beyond the S output (Fig. 3).

        Counts the dual-layout ``Q`` store (both CSR and CSC slabs,
        *including* their per-row slack and relocation holes) plus the
        pooled per-update vector workspace; the ``n²`` output matrix is
        excluded, mirroring the paper's "intermediate space" definition.
        """
        return self._store.buffer_bytes() + self._workspace.nbytes()
