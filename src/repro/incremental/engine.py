"""High-level incremental SimRank session: :class:`DynamicSimRank`.

The engine is now a thin **facade** over a three-layer architecture:

* **kernel** (:mod:`repro.incremental.plan`, :mod:`~repro.incremental.gamma`,
  :mod:`~repro.incremental.row_update`) — pure functions that read the
  old ``(Q, S)`` state and emit explicit
  :class:`~repro.incremental.plan.UpdatePlan` objects: a factored
  low-rank delta (the per-iteration ``ξ_k``/``η_k`` factor pairs of
  Algorithm 2) plus the affected support sets of Theorem 4.  Nothing is
  mutated at this layer.
* **executor** (:mod:`repro.executor.score_store`,
  :mod:`repro.linalg.qstore`) — the state owners.  ``Q`` lives in a
  :class:`~repro.linalg.qstore.TransitionStore` (persistent dual
  CSR/CSC slab store, O(row) surgery); ``S`` lives in a
  :class:`~repro.executor.score_store.ScoreStore` (row-block shards,
  per-shard application of a plan's union-support GEMM, copy-on-write
  snapshots).  Dense per-update scratch comes from a pooled
  :class:`~repro.incremental.workspace.UpdateWorkspace`.
* **service** (:mod:`repro.serving`) — versioned reads and coalesced
  writes on top of the engine: readers pin
  :class:`~repro.serving.snapshot.SnapshotView` objects at a frozen
  version while a single writer drains an
  :class:`~repro.serving.scheduler.UpdateScheduler`.

The facade keeps the original public API: ``apply`` dispatches to the
configured algorithm (``"inc-sr"`` — Algorithm 2, pruned, default;
``"inc-usr"`` — Algorithm 1; ``"batch"`` — full recomputation),
``apply_consolidated`` groups a batch into per-target rank-one row
updates, and every update is timed into :class:`UpdateStats`.  Per-update
maintenance stays O(row) on ``Q`` and affected-area-sized on ``S`` —
update cost tracks the affected area rather than the graph size (the
paper's headline claim) — while the plan/apply split is what lets the
serving layer keep readers on frozen versions for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..dtypes import resolve_dtype
from ..exceptions import ClusterError, ConfigError, GraphError, PoolUnrecoverableError
from ..executor.score_store import DEFAULT_SHARD_ROWS, ScoreStore
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import verify_transition_matrix
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..linalg.qstore import TransitionStore
from ..simrank.base import default_config
from ..simrank.matrix import matrix_simrank
from .affected import AffectedAreaStats
from .workspace import UpdateWorkspace

ALGORITHMS = ("inc-sr", "inc-usr", "batch")

#: Score-store executors: in-process row-block shards, or a
#: :mod:`repro.cluster` pool of shard worker processes.
EXECUTORS = ("inproc", "process")


@dataclass
class UpdateStats:
    """Per-unit-update bookkeeping produced by the engine."""

    update: EdgeUpdate
    seconds: float
    algorithm: str
    affected: Optional[AffectedAreaStats] = field(default=None)


class DynamicSimRank:
    """A live SimRank index over a link-evolving graph.

    Typical use::

        engine = DynamicSimRank(graph, config=SimRankConfig(0.6, 15))
        engine.apply(EdgeUpdate.insert(3, 7))
        engine.similarity(3, 7)

    Parameters
    ----------
    graph:
        Initial graph; copied, so the caller's object is never mutated.
    config:
        Damping/iterations shared by the initial batch computation and
        all incremental updates.
    algorithm:
        One of ``"inc-sr"`` (default), ``"inc-usr"``, ``"batch"``.
    initial_scores:
        Optional precomputed ``S`` for the initial graph (skips the batch
        precomputation — the paper's "precompute SimRank on the old
        entire graph once" step).
    paranoid:
        When True, re-derive ``Q`` from the graph after every update and
        assert consistency (slow; for tests/debugging).
    shard_rows:
        Row-block size of the sharded score store (default
        :data:`~repro.executor.score_store.DEFAULT_SHARD_ROWS`).
    executor:
        ``"inproc"`` (default) keeps ``S`` in this process;
        ``"process"`` shards it across a :mod:`repro.cluster` pool of
        worker processes — plans fan out over pipes, reads and
        snapshots stay zero-copy through shared memory, and results
        are bit-identical to the in-process executor.
    workers:
        Worker-process count for the ``"process"`` executor (>= 1;
        ignored otherwise).
    start_method:
        Multiprocessing start method override for the pool (the
        default, ``spawn``, is the only one promised correct).
    plan_batching:
        When True (default) and the executor supports it (the process
        pool does), :meth:`apply_consolidated` plans the whole drain
        against a parent-side overlay and ships it as **one**
        :class:`~repro.incremental.plan.PlanBatch` command instead of
        one round trip per row group — bit-identical either way.  Set
        False to force the per-plan wire path (the benchmark's
        comparison axis).
    executor_options:
        Extra keyword arguments forwarded to the ``"process"``
        executor's :func:`~repro.cluster.build_client` →
        :class:`~repro.cluster.ShardWorkerPool` (e.g. ``supervise``,
        ``deadline_floor``, ``command_timeout``, ``max_respawns``,
        ``fault_plan``).  Ignored for the in-process executor.
    score_dtype:
        Storage dtype of the score shards (``"float64"`` default,
        ``"float32"`` opt-in).  Planning and the union-support GEMM stay
        float64 everywhere; reduced precision applies where blocks are
        scattered into shard storage — identically in both executors, so
        a float32 process run is bit-identical to a float32 in-process
        run.  The float64 default is the bit-identity reference.
    telemetry:
        A :class:`repro.telemetry.Telemetry` facade threaded through to
        the score executor (apply-latency histograms, drain trace
        spans, crash flight recording).  ``None`` (the default) uses
        the shared disabled instance — standalone engines pay one no-op
        method call per instrumentation point.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: SimRankConfig = None,
        algorithm: str = "inc-sr",
        initial_scores: Optional[np.ndarray] = None,
        paranoid: bool = False,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        executor: str = "inproc",
        workers: int = 2,
        start_method: Optional[str] = None,
        plan_batching: bool = True,
        executor_options: Optional[dict] = None,
        score_dtype: Optional[str] = None,
        telemetry=None,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ConfigError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        if executor not in EXECUTORS:
            raise ConfigError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self._config = default_config(config)
        self._graph = graph.copy()
        self._algorithm = algorithm
        self._executor = executor
        self._paranoid = bool(paranoid)
        self._plan_batching = bool(plan_batching)
        self._score_dtype = resolve_dtype(score_dtype)
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._telemetry = telemetry
        self._store = TransitionStore.from_graph(self._graph)
        self._workspace = UpdateWorkspace(self._graph.num_nodes)
        if initial_scores is None:
            scores = matrix_simrank(self._store.csr_matrix(), self._config)
        else:
            scores = np.asarray(initial_scores, dtype=np.float64)
            n = self._graph.num_nodes
            if scores.shape != (n, n):
                raise GraphError(
                    f"initial_scores shape {scores.shape} != ({n}, {n})"
                )
        if executor == "process":
            from ..cluster import build_client

            options = dict(executor_options or {})
            options.setdefault("dtype", self._score_dtype)
            options.setdefault("telemetry", telemetry)
            self._scores = build_client(
                scores,
                shard_rows=shard_rows,
                workers=workers,
                start_method=start_method,
                **options,
            )
            # Topology changes ship the packed Q payload to workers.
            self._scores.transition_exporter = self._store.export_packed
        else:
            self._scores = ScoreStore(
                scores,
                shard_rows=shard_rows,
                dtype=self._score_dtype,
                telemetry=telemetry,
            )
        self._topk_index = None
        self._history: List[UpdateStats] = []
        self._version = 0
        # The most recent successful consolidated drain as
        # ``(row_updates, plans)`` — what the durability layer frames
        # into its write-ahead log (see :meth:`take_last_drain`).
        self._last_drain = None
        # Failover bookkeeping: plans/row-updates whose graph + Q surgery
        # already happened but whose score application died with the pool.
        self._unapplied_plans: List = []
        self._unapplied_row_updates: List = []
        self._failed_client = None

    # ------------------------------------------------------------------ #
    # Read API
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SimRankConfig:
        """The shared configuration."""
        return self._config

    @property
    def algorithm(self) -> str:
        """The configured update algorithm."""
        return self._algorithm

    @property
    def executor(self) -> str:
        """Which executor owns the score shards (``inproc``/``process``)."""
        return self._executor

    @property
    def plan_batching(self) -> bool:
        """Whether consolidated drains ship as one batched command."""
        return self._plan_batching

    @property
    def score_dtype(self) -> np.dtype:
        """The configured storage dtype of the score shards."""
        return self._score_dtype

    def close(self) -> None:
        """Release executor resources (worker processes, shared memory).

        A no-op for the in-process executor; idempotent.  The engine
        must not be used after closing when running on the process
        executor.
        """
        closer = getattr(self._scores, "close", None)
        if closer is not None:
            closer()
        if self._failed_client is not None:
            failed, self._failed_client = self._failed_client, None
            failed.close()

    def __enter__(self) -> "DynamicSimRank":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def graph(self) -> DynamicDiGraph:
        """The live graph (internal copy; do not mutate)."""
        return self._graph

    @property
    def version(self) -> int:
        """Monotone state version; bumped once per applied update/batch."""
        return self._version

    @property
    def transition_matrix(self) -> sp.csr_matrix:
        """The live backward transition matrix ``Q`` as scipy CSR.

        A packed view served from the store's cache: repeated reads
        between updates return the same object without copying; the view
        is rebuilt lazily after a mutation.  Treat it as read-only.
        """
        return self._store.csr_matrix()

    @property
    def transition_store(self) -> TransitionStore:
        """The live dual-layout ``Q`` store (the update hot path)."""
        return self._store

    @property
    def score_store(self) -> ScoreStore:
        """The live sharded ``S`` store (the executor layer)."""
        return self._scores

    @property
    def history(self) -> List[UpdateStats]:
        """Per-update statistics in application order."""
        return list(self._history)

    def similarities(self) -> np.ndarray:
        """A copy of the full similarity matrix ``S``."""
        return self._scores.to_array()

    def similarity(self, node_a: int, node_b: int) -> float:
        """The SimRank score of one node pair."""
        return self._scores.entry(node_a, node_b)

    @property
    def topk_index(self):
        """The lazily built shard-local top-k index (or None)."""
        return self._topk_index

    def top_k(self, k: int, include_self: bool = False):
        """Top-``k`` most similar node pairs, served shard-locally.

        Ranking and tie order are bit-identical to
        :func:`repro.metrics.topk.top_k_pairs` on the dense matrix, but
        the dense ``n × n`` scan is gone: a lazily built
        :class:`~repro.executor.topk_index.ShardTopK` keeps per-shard
        candidate heaps patched from each update plan's affected
        supports, and a query k-way merges them.  ``include_self``
        rankings (rare) fall back to the block-at-a-time shard merge,
        which still never materializes ``S``.
        """
        from ..exceptions import DimensionError

        if k < 0:
            raise DimensionError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        if include_self:
            from ..executor.topk_index import top_k_from_blocks

            return top_k_from_blocks(
                self._scores.iter_shard_blocks(), k, include_self=True
            )
        if self._topk_index is None or k > self._topk_index.capacity:
            # The executor hands out the matching index: shard heaps in
            # this process, or a pool-backed mirror over worker heaps.
            self._topk_index = self._scores.make_topk_index(k)
        return self._topk_index.top_k(k)

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #

    def apply(
        self, change: Union[EdgeUpdate, UpdateBatch]
    ) -> List[UpdateStats]:
        """Apply a unit update or a batch; return the new stats entries."""
        updates = [change] if isinstance(change, EdgeUpdate) else list(change)
        produced: List[UpdateStats] = []
        for update in updates:
            produced.append(self._apply_unit(update))
        return produced

    def _apply_unit(self, update: EdgeUpdate) -> UpdateStats:
        started = time.perf_counter()
        affected: Optional[AffectedAreaStats] = None

        if self._algorithm == "batch":
            update.apply_to(self._graph)
            self._store.replace_from_graph(self._graph)
            self._scores.replace_dense(
                matrix_simrank(self._store.csr_matrix(), self._config)
            )
        elif self._algorithm == "inc-sr":
            # Fast path: the kernel plans the factored delta from the
            # old state (Theorems 1-4), then the executor applies it —
            # per-shard union-support GEMM on S, row-granular surgery
            # on the dual Q store.  No copies, no format conversions,
            # no array rebuilds.
            from .gamma import compute_update_vectors
            from .plan import plan_rank_one

            vectors = compute_update_vectors(
                self._store,
                self._scores,
                update,
                self._graph,
                self._config,
                workspace=self._workspace,
            )
            update.apply_to(self._graph)
            plan = plan_rank_one(
                self._store, update.target, vectors, self._config
            )
            affected = plan.affected
            self._scores.apply_plan(plan)
            self._store.apply_update(update)
        else:
            from .inc_usr import inc_usr_delta

            delta_s, _ = inc_usr_delta(
                self._graph,
                self._store,
                self._scores,
                update,
                self._config,
                workspace=self._workspace,
            )
            self._scores.add_dense(delta_s)
            update.apply_to(self._graph)
            self._store.apply_update(update)

        if self._paranoid:
            problem = verify_transition_matrix(
                self._store.csr_matrix(), self._graph
            )
            if problem is not None:
                raise GraphError(f"paranoid check failed: {problem}")

        self._version += 1
        stats = UpdateStats(
            update=update,
            seconds=time.perf_counter() - started,
            algorithm=self._algorithm,
            affected=affected,
        )
        self._history.append(stats)
        return stats

    def apply_consolidated(self, batch: UpdateBatch) -> int:
        """Apply a batch as per-target consolidated row updates.

        Groups the batch by target node (cancelling inverse pairs) and
        processes each group as a *single* generalized rank-one update —
        see :mod:`repro.incremental.row_update`.  Returns the number of
        row groups processed.  Only available with the ``inc-sr``
        algorithm (the pruned kernel is reused for each group).  Each
        group is planned from the live state and applied through the
        sharded score store, so the whole batch performs only
        row-granular surgery.
        """
        if self._algorithm != "inc-sr":
            raise ConfigError(
                "apply_consolidated requires the 'inc-sr' algorithm, "
                f"engine uses {self._algorithm!r}"
            )
        from .row_update import consolidate_batch, plan_composite_row_update

        started = time.perf_counter()
        self._last_drain = None
        row_updates = consolidate_batch(batch, self._graph)
        batched = (
            self._plan_batching
            and len(row_updates) > 0
            and getattr(self._scores, "supports_plan_batches", False)
        )
        # Batched drains plan every row group against a parent-side
        # copy-on-write overlay — each group planned on the scores the
        # previous group's plan produced, applied with the *same*
        # arithmetic the executor will run — then ship the whole drain
        # as one pipelined PlanBatch command instead of one round trip
        # per group.  One loop serves both paths (only the score target
        # and the deferred dispatch differ), so they cannot drift.
        view = self._scores.planning_view() if batched else None
        scores = view if batched else self._scores
        plans = []
        for index, row_update in enumerate(row_updates):
            plan = plan_composite_row_update(
                self._graph,
                self._store,
                scores,
                row_update,
                self._config,
                workspace=self._workspace,
            )
            try:
                scores.apply_plan(plan)
            except PoolUnrecoverableError:
                # Only reachable on the per-plan wire path (the batched
                # path applies to a local overlay).  The pool journals a
                # command before dispatching it, so this plan is part of
                # any rebuild from base + journal: finish the group's
                # graph + Q surgery to stay consistent with that rebuilt
                # score state, stash the untouched remainder for
                # :meth:`failover_in_process`, and surface the failure.
                row_update.apply_to(self._graph)
                self._store.set_row_from_graph(
                    self._graph, row_update.target
                )
                self._unapplied_row_updates = list(row_updates[index + 1 :])
                raise
            # Collected on *both* wire paths: the batched dispatch below
            # ships them, and the durability layer frames them into the
            # WAL either way (plan factors are fresh arrays — only the
            # dropped diagnostics may alias pooled workspace).
            plans.append(plan)
            row_update.apply_to(self._graph)
            # Row-granular surgery on the dual store (no CSR rebuild).
            self._store.set_row_from_graph(self._graph, row_update.target)
        if batched:
            from .plan import PlanBatch

            try:
                self._scores.apply_batch(PlanBatch(plans), planned_on=view)
            except PoolUnrecoverableError:
                # The pool refuses (or fails) a batch *before* journaling
                # it, so none of these plans reached the journal — but
                # the graph and Q surgery above already happened.  Stash
                # the plans; :meth:`failover_in_process` re-applies them
                # to the rebuilt store to close the gap.
                self._unapplied_plans = list(plans)
                raise
            except ClusterError:
                raise
            except Exception:
                # Transient dispatch failure (e.g. staging-slot
                # allocation): nothing was journaled or applied, the
                # pool is still healthy, so ship the same plans one
                # command at a time — bit-identical arithmetic.
                for position, plan in enumerate(plans):
                    try:
                        self._scores.apply_plan(plan)
                    except PoolUnrecoverableError:
                        self._unapplied_plans = list(plans[position + 1 :])
                        raise
        elapsed = time.perf_counter() - started
        self._version += 1
        self._last_drain = (tuple(row_updates), tuple(plans))
        for update in batch:
            self._history.append(
                UpdateStats(
                    update=update,
                    seconds=elapsed / max(1, len(batch)),
                    algorithm="inc-sr/consolidated",
                )
            )
        if self._paranoid:
            problem = verify_transition_matrix(
                self._store.csr_matrix(), self._graph
            )
            if problem is not None:
                raise GraphError(f"paranoid check failed: {problem}")
        return len(row_updates)

    def take_last_drain(self):
        """Pop the last drain's ``(row_updates, plans)`` record, if any.

        Consumed by the durability layer right after a successful
        :meth:`apply_consolidated` (under the apply lock) to frame the
        drain into the write-ahead log; cleared on read so a later
        failure can never re-log a stale drain.  Returns None when no
        unconsumed drain record exists.
        """
        drained, self._last_drain = self._last_drain, None
        return drained

    def restore_version(self, version: int) -> None:
        """Reset the monotone version counter (crash-restart recovery).

        Called exactly once, by the serving layer, after rebuilding the
        engine from a durability checkpoint + WAL replay — the restored
        state *is* the state at ``version``, and every downstream
        consumer (acks, time travel, the front door's version header)
        keys off this counter matching the durable history.
        """
        self._version = int(version)

    def add_node(self) -> int:
        """Grow the node universe by one isolated node; return its id.

        Node arrival is the paper's other update type (handled in [8] by
        He et al.); here it is exact and amortized O(n): an isolated
        node has an all-zero ``Q`` row/column (one empty segment appended
        to each store layout), and its only nonzero similarity is the
        matrix-form self-score ``1 − C``.  ``S`` grows inside the
        sharded store — at most the tail shard's rows and each shard's
        column capacity (doubling), never a wholesale ``n²`` copy.
        Subsequent edges to/from the node flow through the normal
        incremental path.
        """
        node = self._graph.add_node()
        n = self._graph.num_nodes
        self._store.add_node()
        self._workspace.ensure_capacity(n)
        self._scores.add_node()
        self._scores.set_entry(node, node, 1.0 - self._config.damping)
        self._version += 1
        return node

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #

    def executor_heartbeat(self) -> bool:
        """Probe the executor's liveness (always True for in-process).

        Delegates to the cluster client's ``heartbeat`` when running on
        the process executor: raises
        :class:`~repro.exceptions.PoolUnrecoverableError` if the pool
        has failed, returns False if a probe was skipped because
        pipelined batches are still in flight, True otherwise.
        """
        probe = getattr(self._scores, "heartbeat", None)
        if probe is None:
            return True
        return probe()

    def rebuilt_scores(self) -> ScoreStore:
        """An in-process score store rebuilt from the (failed) pool.

        Frozen replay base + journal, plus any stashed plans that were
        planned but never journaled — exactly consistent with the live
        graph and ``Q`` up to the stashed row updates, which is the
        state a read-only degraded view should serve.  Does **not**
        swap executors or consume the stashes; see
        :meth:`failover_in_process` for the destructive version.
        """
        if self._executor != "process":
            raise ClusterError(
                "rebuilt_scores requires the 'process' executor"
            )
        from ..cluster.recovery import rebuild_score_store

        store = rebuild_score_store(self._scores.pool)
        for plan in self._unapplied_plans:
            store.apply_plan(plan)
        return store

    def failover_in_process(self) -> int:
        """Swap a dead process pool for a rebuilt in-process store.

        Reassembles the score state from the failed pool's frozen
        replay base + journal
        (:func:`~repro.cluster.recovery.rebuild_score_store`), re-applies
        any plans that were planned but never journaled, then finishes
        the row updates the failed drain never reached — after which the
        engine runs on the ``"inproc"`` executor as if nothing happened
        (bit-identical scores).  The dead client is retained so its
        shared-memory segments stay mapped until :meth:`close`.

        Returns the number of stashed plans + row updates resumed.
        Raises :class:`~repro.exceptions.ClusterError` when the engine
        is not on the process executor.
        """
        if self._executor != "process":
            raise ClusterError(
                "failover_in_process requires the 'process' executor"
            )
        from .row_update import plan_composite_row_update

        store = self.rebuilt_scores()
        pending_plans = self._unapplied_plans
        pending_updates = self._unapplied_row_updates
        self._unapplied_plans = []
        self._unapplied_row_updates = []
        self._failed_client = self._scores
        self._scores = store
        self._executor = "inproc"
        self._topk_index = None
        for row_update in pending_updates:
            plan = plan_composite_row_update(
                self._graph,
                self._store,
                store,
                row_update,
                self._config,
                workspace=self._workspace,
            )
            store.apply_plan(plan)
            row_update.apply_to(self._graph)
            self._store.set_row_from_graph(self._graph, row_update.target)
        self._version += 1
        return len(pending_plans) + len(pending_updates)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Persist the session (graph, S, config) to a ``.npz`` file.

        The paper's workflow precomputes SimRank once and then serves
        updates; persisting the state lets that precomputation survive
        process restarts.  ``Q`` is rebuilt on load (cheaper than
        storing it).
        """
        edges = np.asarray(list(self._graph.edges()), dtype=np.int64)
        np.savez_compressed(
            path,
            num_nodes=np.asarray([self._graph.num_nodes], dtype=np.int64),
            edges=edges.reshape(-1, 2),
            scores=self._scores.to_array(),
            damping=np.asarray([self._config.damping]),
            iterations=np.asarray([self._config.iterations], dtype=np.int64),
            algorithm=np.asarray([self._algorithm]),
            score_dtype=np.asarray([self._score_dtype.name]),
        )

    @classmethod
    def load(cls, path: str) -> "DynamicSimRank":
        """Restore a session previously written by :meth:`save`."""
        payload = np.load(path, allow_pickle=False)
        num_nodes = int(payload["num_nodes"][0])
        graph = DynamicDiGraph(num_nodes)
        for source, target in payload["edges"]:
            graph.add_edge(int(source), int(target))
        config = SimRankConfig(
            damping=float(payload["damping"][0]),
            iterations=int(payload["iterations"][0]),
        )
        score_dtype = (
            str(payload["score_dtype"][0])
            if "score_dtype" in payload.files
            else None
        )
        return cls(
            graph,
            config,
            algorithm=str(payload["algorithm"][0]),
            initial_scores=payload["scores"],
            score_dtype=score_dtype,
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def total_update_seconds(self) -> float:
        """Sum of wall-clock seconds over all applied updates."""
        return sum(stats.seconds for stats in self._history)

    def aggregate_affected(self) -> Optional[AffectedAreaStats]:
        """Merged affected-area stats across all Inc-SR updates (or None)."""
        merged: Optional[AffectedAreaStats] = None
        for stats in self._history:
            if stats.affected is None:
                continue
            merged = (
                stats.affected
                if merged is None
                else merged.merged_with(stats.affected)
            )
        return merged

    def intermediate_bytes(self) -> int:
        """Rough bytes held by the engine beyond the S output (Fig. 3).

        Counts the dual-layout ``Q`` store (both CSR and CSC slabs,
        *including* their per-row slack and relocation holes) plus the
        pooled per-update vector workspace; the ``n²`` score store is
        excluded, mirroring the paper's "intermediate space" definition.
        """
        return self._store.buffer_bytes() + self._workspace.nbytes()

    def memory_report(self) -> dict:
        """Layered memory accounting: Q store, workspace, score shards."""
        report = {
            "transition_store_bytes": self._store.buffer_bytes(),
            "transition_slack_bytes": self._store.slack_bytes(),
            "workspace_bytes": self._workspace.nbytes(),
            "score_buffer_bytes": self._scores.buffer_bytes(),
            "score_logical_bytes": self._scores.nbytes(),
            "score_shards": self._scores.shard_report(),
            "score_shared_shards": self._scores.shared_shard_count(),
            "score_cow_copies": self._scores.cow_copies,
        }
        report.update(self._scores.dtype_report())
        return report
