"""High-level incremental SimRank session: :class:`DynamicSimRank`.

The engine owns the triple ``(graph, Q, S)`` and keeps it consistent
across unit updates and batches, dispatching to the configured algorithm:

* ``"inc-sr"``  — Algorithm 2 (pruned, default);
* ``"inc-usr"`` — Algorithm 1 (no pruning);
* ``"batch"``   — full recomputation via the matrix-form batch iteration
  (the paper's Batch comparator, used for crossover studies).

Every update is timed and its affected-area statistics recorded in
:class:`UpdateStats`, which the benchmark harness aggregates into the
paper's figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..exceptions import ConfigError, GraphError
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import (
    backward_transition_matrix,
    update_transition_matrix,
    verify_transition_matrix,
)
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..simrank.base import default_config
from ..simrank.matrix import matrix_simrank
from .affected import AffectedAreaStats
from .inc_sr import inc_sr_update
from .inc_usr import inc_usr_update

ALGORITHMS = ("inc-sr", "inc-usr", "batch")


@dataclass
class UpdateStats:
    """Per-unit-update bookkeeping produced by the engine."""

    update: EdgeUpdate
    seconds: float
    algorithm: str
    affected: Optional[AffectedAreaStats] = field(default=None)


class DynamicSimRank:
    """A live SimRank index over a link-evolving graph.

    Typical use::

        engine = DynamicSimRank(graph, config=SimRankConfig(0.6, 15))
        engine.apply(EdgeUpdate.insert(3, 7))
        engine.similarity(3, 7)

    Parameters
    ----------
    graph:
        Initial graph; copied, so the caller's object is never mutated.
    config:
        Damping/iterations shared by the initial batch computation and
        all incremental updates.
    algorithm:
        One of ``"inc-sr"`` (default), ``"inc-usr"``, ``"batch"``.
    initial_scores:
        Optional precomputed ``S`` for the initial graph (skips the batch
        precomputation — the paper's "precompute SimRank on the old
        entire graph once" step).
    paranoid:
        When True, re-derive ``Q`` from the graph after every update and
        assert consistency (slow; for tests/debugging).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: SimRankConfig = None,
        algorithm: str = "inc-sr",
        initial_scores: Optional[np.ndarray] = None,
        paranoid: bool = False,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ConfigError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        self._config = default_config(config)
        self._graph = graph.copy()
        self._algorithm = algorithm
        self._paranoid = bool(paranoid)
        self._q_matrix = backward_transition_matrix(self._graph)
        if initial_scores is None:
            self._s_matrix = matrix_simrank(self._q_matrix, self._config)
        else:
            scores = np.asarray(initial_scores, dtype=np.float64)
            n = self._graph.num_nodes
            if scores.shape != (n, n):
                raise GraphError(
                    f"initial_scores shape {scores.shape} != ({n}, {n})"
                )
            self._s_matrix = scores.copy()
        self._history: List[UpdateStats] = []

    # ------------------------------------------------------------------ #
    # Read API
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SimRankConfig:
        """The shared configuration."""
        return self._config

    @property
    def algorithm(self) -> str:
        """The configured update algorithm."""
        return self._algorithm

    @property
    def graph(self) -> DynamicDiGraph:
        """The live graph (internal copy; do not mutate)."""
        return self._graph

    @property
    def transition_matrix(self) -> sp.csr_matrix:
        """The live backward transition matrix ``Q``."""
        return self._q_matrix

    @property
    def history(self) -> List[UpdateStats]:
        """Per-update statistics in application order."""
        return list(self._history)

    def similarities(self) -> np.ndarray:
        """A copy of the full similarity matrix ``S``."""
        return self._s_matrix.copy()

    def similarity(self, node_a: int, node_b: int) -> float:
        """The SimRank score of one node pair."""
        return float(self._s_matrix[node_a, node_b])

    def top_k(self, k: int, include_self: bool = False):
        """Top-``k`` most similar node pairs (delegates to metrics.topk)."""
        from ..metrics.topk import top_k_pairs

        return top_k_pairs(self._s_matrix, k, include_self=include_self)

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #

    def apply(
        self, change: Union[EdgeUpdate, UpdateBatch]
    ) -> List[UpdateStats]:
        """Apply a unit update or a batch; return the new stats entries."""
        updates = [change] if isinstance(change, EdgeUpdate) else list(change)
        produced: List[UpdateStats] = []
        for update in updates:
            produced.append(self._apply_unit(update))
        return produced

    def _apply_unit(self, update: EdgeUpdate) -> UpdateStats:
        started = time.perf_counter()
        affected: Optional[AffectedAreaStats] = None

        if self._algorithm == "batch":
            update.apply_to(self._graph)
            self._q_matrix = backward_transition_matrix(self._graph)
            self._s_matrix = matrix_simrank(self._q_matrix, self._config)
        elif self._algorithm == "inc-sr":
            # Fast path: Theorem 1-3 quantities need only the old state,
            # so precompute them, mutate the graph in place, and apply
            # the pruned iteration directly into S (no copies).
            from .gamma import compute_update_vectors
            from .inc_sr import inc_sr_core

            vectors = compute_update_vectors(
                self._q_matrix, self._s_matrix, update, self._graph, self._config
            )
            update.apply_to(self._graph)
            result = inc_sr_core(
                self._q_matrix,
                self._s_matrix,
                update.target,
                vectors,
                self._config,
                in_place=True,
                q_csc=self._q_matrix.tocsc(),
            )
            affected = result.affected
            self._s_matrix = result.new_s
            self._q_matrix = update_transition_matrix(
                self._q_matrix, update, self._graph
            )
        else:
            result = inc_usr_update(
                self._graph,
                self._q_matrix,
                self._s_matrix,
                update,
                self._config,
            )
            self._s_matrix = result.new_s
            update.apply_to(self._graph)
            self._q_matrix = update_transition_matrix(
                self._q_matrix, update, self._graph
            )

        if self._paranoid:
            problem = verify_transition_matrix(self._q_matrix, self._graph)
            if problem is not None:
                raise GraphError(f"paranoid check failed: {problem}")

        stats = UpdateStats(
            update=update,
            seconds=time.perf_counter() - started,
            algorithm=self._algorithm,
            affected=affected,
        )
        self._history.append(stats)
        return stats

    def apply_consolidated(self, batch: UpdateBatch) -> int:
        """Apply a batch as per-target consolidated row updates.

        Groups the batch by target node (cancelling inverse pairs) and
        processes each group as a *single* generalized rank-one update —
        see :mod:`repro.incremental.row_update`.  Returns the number of
        row groups processed.  Only available with the ``inc-sr``
        algorithm (the pruned core is reused for each group).
        """
        if self._algorithm != "inc-sr":
            raise ConfigError(
                "apply_consolidated requires the 'inc-sr' algorithm, "
                f"engine uses {self._algorithm!r}"
            )
        from .row_update import apply_consolidated_batch

        started = time.perf_counter()
        scores, q_matrix, graph, groups = apply_consolidated_batch(
            self._graph, self._q_matrix, self._s_matrix, batch, self._config
        )
        self._s_matrix = scores
        self._q_matrix = q_matrix
        self._graph = graph
        elapsed = time.perf_counter() - started
        for update in batch:
            self._history.append(
                UpdateStats(
                    update=update,
                    seconds=elapsed / max(1, len(batch)),
                    algorithm="inc-sr/consolidated",
                )
            )
        if self._paranoid:
            problem = verify_transition_matrix(self._q_matrix, self._graph)
            if problem is not None:
                raise GraphError(f"paranoid check failed: {problem}")
        return groups

    def add_node(self) -> int:
        """Grow the node universe by one isolated node; return its id.

        Node arrival is the paper's other update type (handled in [8] by
        He et al.); here it is exact and O(n): an isolated node has an
        all-zero ``Q`` row/column, and its only nonzero similarity is the
        matrix-form self-score ``1 − C``.  Subsequent edges to/from the
        node flow through the normal incremental path.
        """
        node = self._graph.add_node()
        n = self._graph.num_nodes
        self._q_matrix = sp.csr_matrix(
            (
                self._q_matrix.data,
                self._q_matrix.indices,
                np.concatenate(
                    (self._q_matrix.indptr, [self._q_matrix.indptr[-1]])
                ),
            ),
            shape=(n, n),
        )
        expanded = np.zeros((n, n))
        expanded[: n - 1, : n - 1] = self._s_matrix
        expanded[node, node] = 1.0 - self._config.damping
        self._s_matrix = expanded
        return node

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Persist the session (graph, S, config) to a ``.npz`` file.

        The paper's workflow precomputes SimRank once and then serves
        updates; persisting the state lets that precomputation survive
        process restarts.  ``Q`` is rebuilt on load (cheaper than
        storing it).
        """
        edges = np.asarray(list(self._graph.edges()), dtype=np.int64)
        np.savez_compressed(
            path,
            num_nodes=np.asarray([self._graph.num_nodes], dtype=np.int64),
            edges=edges.reshape(-1, 2),
            scores=self._s_matrix,
            damping=np.asarray([self._config.damping]),
            iterations=np.asarray([self._config.iterations], dtype=np.int64),
            algorithm=np.asarray([self._algorithm]),
        )

    @classmethod
    def load(cls, path: str) -> "DynamicSimRank":
        """Restore a session previously written by :meth:`save`."""
        payload = np.load(path, allow_pickle=False)
        num_nodes = int(payload["num_nodes"][0])
        graph = DynamicDiGraph(num_nodes)
        for source, target in payload["edges"]:
            graph.add_edge(int(source), int(target))
        config = SimRankConfig(
            damping=float(payload["damping"][0]),
            iterations=int(payload["iterations"][0]),
        )
        return cls(
            graph,
            config,
            algorithm=str(payload["algorithm"][0]),
            initial_scores=payload["scores"],
        )

    def total_update_seconds(self) -> float:
        """Sum of wall-clock seconds over all applied updates."""
        return sum(stats.seconds for stats in self._history)

    def aggregate_affected(self) -> Optional[AffectedAreaStats]:
        """Merged affected-area stats across all Inc-SR updates (or None)."""
        merged: Optional[AffectedAreaStats] = None
        for stats in self._history:
            if stats.affected is None:
                continue
            merged = (
                stats.affected
                if merged is None
                else merged.merged_with(stats.affected)
            )
        return merged

    def intermediate_bytes(self) -> int:
        """Rough bytes held by the engine beyond the S output (Fig. 3).

        Counts ``Q`` (CSR arrays) and the per-update vector workspace;
        the ``n²`` output matrix is excluded, mirroring the paper's
        "intermediate space" definition.
        """
        q_bytes = (
            self._q_matrix.data.nbytes
            + self._q_matrix.indices.nbytes
            + self._q_matrix.indptr.nbytes
        )
        n = self._graph.num_nodes
        # ξ, η, γ, w, u, v dense scratch vectors.
        vector_bytes = 8 * 6 * n
        return q_bytes + vector_bytes
