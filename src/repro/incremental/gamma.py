"""Theorems 2–3: the update vectors ``γ`` and scalar ``λ``.

After the rank-one decomposition ``ΔQ = u·vᵀ`` (Theorem 1), the SimRank
update matrix is ``ΔS = M + Mᵀ`` with

    M = Σ_{k>=0} C^{k+1} · Q̃^k · e_j · γᵀ · (Q̃ᵀ)^k          (Eq. (26))

where ``γ`` folds ``u``'s scaling into the closed forms of Eqs. (27)–(28)
and ``λ`` is Eq. (29):

    λ = [S]_{i,i} + (1/C)·[S]_{j,j} − 2·[Q]_{j,:}·[S]_{:,i} − 1/C + 1.

Everything here is computed from the *old* ``Q`` and ``S`` only, using a
single sparse matrix–vector product ``w = Q·[S]_{:,i}`` plus SAXPY-level
vector work — this is lines 3–12 of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..exceptions import DimensionError
from ..graph.updates import EdgeUpdate


@dataclass(frozen=True)
class UpdateVectors:
    """All precomputed quantities for one unit update.

    Attributes
    ----------
    u, v:
        The rank-one factors of ``ΔQ`` (Theorem 1), dense.
    gamma:
        The folded right-hand-side vector ``γ`` of Eq. (27)/(28).
    lam:
        The scalar ``λ`` of Eq. (29) (only meaningful for the
        ``d_j > 0`` insertion / ``d_j > 1`` deletion branches; exposed
        for tests in all cases).
    target_degree:
        ``d_j``, the in-degree of the target in the old graph.
    """

    u: np.ndarray
    v: np.ndarray
    gamma: np.ndarray
    lam: float
    target_degree: int


def compute_gamma(
    q_matrix: sp.csr_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    target_degree: int,
    config: SimRankConfig,
) -> np.ndarray:
    """The vector ``γ`` of Theorem 3 (Eqs. (27)–(28)).

    Parameters
    ----------
    q_matrix, s_matrix:
        The transition and similarity matrices of the *old* graph.
    update:
        The unit update on edge ``(i, j)``.
    target_degree:
        ``d_j`` in the old graph.
    config:
        Supplies the damping factor ``C``.
    """
    damping = config.damping
    n = q_matrix.shape[0]
    if s_matrix.shape != (n, n):
        raise DimensionError(
            f"S has shape {s_matrix.shape}, expected ({n}, {n})"
        )
    source, target = update.edge

    # Line 3 of Algorithm 1: w = Q · [S]_{:,i}  (one sparse mat-vec).
    w_vector = q_matrix @ s_matrix[:, source]
    # Line 4: λ from Eq. (29); [w]_j doubles as [Q]_{j,:}·[S]_{:,i}.
    lam = (
        s_matrix[source, source]
        + s_matrix[target, target] / damping
        - 2.0 * w_vector[target]
        - 1.0 / damping
        + 1.0
    )

    e_target = np.zeros(n)
    e_target[target] = 1.0

    if update.is_insert:
        if target_degree == 0:
            # Eq. (27), d_j = 0:  γ = Q·[S]_{:,i} + (1/2)[S]_{i,i}·e_j
            return w_vector + 0.5 * s_matrix[source, source] * e_target
        # Eq. (27), d_j > 0.
        scale = 1.0 / (target_degree + 1)
        coefficient = lam * scale / 2.0 + 1.0 / damping - 1.0
        return scale * (
            w_vector
            - s_matrix[:, target] / damping
            + coefficient * e_target
        )
    if target_degree == 1:
        # Eq. (28), d_j = 1:  γ = (1/2)[S]_{i,i}·e_j − Q·[S]_{:,i}
        return 0.5 * s_matrix[source, source] * e_target - w_vector
    # Eq. (28), d_j > 1.
    scale = 1.0 / (target_degree - 1)
    coefficient = lam * scale / 2.0 - 1.0 / damping + 1.0
    return scale * (
        s_matrix[:, target] / damping - w_vector + coefficient * e_target
    )


def compute_update_vectors(
    q_matrix: sp.csr_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    graph,
    config: SimRankConfig,
) -> UpdateVectors:
    """Bundle ``(u, v, γ, λ, d_j)`` for a unit update (lines 1–12 of Alg. 1)."""
    from .rank_one import rank_one_decomposition, target_in_degree

    degree = target_in_degree(graph, update)
    u_vector, v_vector = rank_one_decomposition(graph, update)
    gamma = compute_gamma(q_matrix, s_matrix, update, degree, config)
    damping = config.damping
    w_vector = q_matrix @ s_matrix[:, update.source]
    lam = (
        s_matrix[update.source, update.source]
        + s_matrix[update.target, update.target] / damping
        - 2.0 * w_vector[update.target]
        - 1.0 / damping
        + 1.0
    )
    return UpdateVectors(
        u=u_vector,
        v=v_vector,
        gamma=gamma,
        lam=float(lam),
        target_degree=degree,
    )
