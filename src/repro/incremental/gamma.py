"""Theorems 2–3: the update vectors ``γ`` and scalar ``λ``.

After the rank-one decomposition ``ΔQ = u·vᵀ`` (Theorem 1), the SimRank
update matrix is ``ΔS = M + Mᵀ`` with

    M = Σ_{k>=0} C^{k+1} · Q̃^k · e_j · γᵀ · (Q̃ᵀ)^k          (Eq. (26))

where ``γ`` folds ``u``'s scaling into the closed forms of Eqs. (27)–(28)
and ``λ`` is Eq. (29):

    λ = [S]_{i,i} + (1/C)·[S]_{j,j} − 2·[Q]_{j,:}·[S]_{:,i} − 1/C + 1.

Everything here is computed from the *old* ``Q`` and ``S`` only, using a
**single** sparse matrix–vector product ``w = Q·[S]_{:,i}`` plus
SAXPY-level vector work — this is lines 3–12 of Algorithm 1.  ``γ`` and
``λ`` share that one mat-vec via :func:`compute_gamma_lambda`; the
``q_matrix`` argument may be a scipy CSR matrix or a
:class:`~repro.linalg.qstore.TransitionStore`, and an optional
:class:`~repro.incremental.workspace.UpdateWorkspace` supplies pooled
output buffers (see that module for the aliasing contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import SimRankConfig
from ..exceptions import DimensionError
from ..graph.updates import EdgeUpdate
from .workspace import UpdateWorkspace


@dataclass(frozen=True)
class UpdateVectors:
    """All precomputed quantities for one unit update.

    Attributes
    ----------
    u, v:
        The rank-one factors of ``ΔQ`` (Theorem 1), dense.
    gamma:
        The folded right-hand-side vector ``γ`` of Eq. (27)/(28).
    lam:
        The scalar ``λ`` of Eq. (29) (only meaningful for the
        ``d_j > 0`` insertion / ``d_j > 1`` deletion branches; exposed
        for tests in all cases).
    target_degree:
        ``d_j``, the in-degree of the target in the old graph.

    When produced through an :class:`UpdateWorkspace`, the arrays alias
    pooled buffers and are only valid until the next update.
    """

    u: np.ndarray
    v: np.ndarray
    gamma: np.ndarray
    lam: float
    target_degree: int


def _q_matvec(
    q_matrix,
    x: np.ndarray,
    workspace: Optional[UpdateWorkspace],
    name: str,
) -> np.ndarray:
    """``Q @ x`` routed into a pooled buffer when possible.

    A strided ``x`` (e.g. a matrix column) is staged into a contiguous
    pooled buffer first: the store's mat-vec gathers ``x`` by fancy
    index, and gathering from a 1-element-per-cache-line strided column
    is several times slower than one sequential staging pass.
    """
    if workspace is not None and hasattr(q_matrix, "matvec"):
        n = q_matrix.shape[0]
        if not x.flags.c_contiguous:
            staged = workspace.vector("xcol", n)
            np.copyto(staged, x)
            x = staged
        return q_matrix.matvec(x, out=workspace.vector(name, n))
    return q_matrix @ x


def compute_gamma_lambda(
    q_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    target_degree: int,
    config: SimRankConfig,
    workspace: Optional[UpdateWorkspace] = None,
) -> Tuple[np.ndarray, float]:
    """``(γ, λ)`` of Theorems 2–3 from one shared mat-vec.

    Parameters
    ----------
    q_matrix, s_matrix:
        The transition and similarity matrices of the *old* graph;
        ``q_matrix`` may be CSR or a ``TransitionStore``.
    update:
        The unit update on edge ``(i, j)``.
    target_degree:
        ``d_j`` in the old graph.
    config:
        Supplies the damping factor ``C``.
    workspace:
        Optional buffer pool; when given, ``γ`` (and the internal
        mat-vec result) live in pooled buffers.
    """
    damping = config.damping
    n = q_matrix.shape[0]
    if s_matrix.shape != (n, n):
        raise DimensionError(
            f"S has shape {s_matrix.shape}, expected ({n}, {n})"
        )
    source, target = update.edge

    # Line 3 of Algorithm 1: w = Q · [S]_{:,i}  (the one sparse mat-vec,
    # shared by λ and every branch of γ).
    w_vector = _q_matvec(q_matrix, s_matrix[:, source], workspace, "w")
    # Line 4: λ from Eq. (29); [w]_j doubles as [Q]_{j,:}·[S]_{:,i}.
    lam = float(
        s_matrix[source, source]
        + s_matrix[target, target] / damping
        - 2.0 * w_vector[target]
        - 1.0 / damping
        + 1.0
    )

    if workspace is not None:
        gamma = workspace.vector("gamma", n)
        scratch = workspace.vector("scratch", n)
    else:
        gamma = np.empty(n)
        scratch = np.empty(n)

    if update.is_insert:
        if target_degree == 0:
            # Eq. (27), d_j = 0:  γ = Q·[S]_{:,i} + (1/2)[S]_{i,i}·e_j
            gamma[:] = w_vector
            gamma[target] += 0.5 * s_matrix[source, source]
            return gamma, lam
        # Eq. (27), d_j > 0.
        scale = 1.0 / (target_degree + 1)
        coefficient = lam * scale / 2.0 + 1.0 / damping - 1.0
        np.divide(s_matrix[:, target], damping, out=scratch)
        np.subtract(w_vector, scratch, out=gamma)
        gamma[target] += coefficient
        gamma *= scale
        return gamma, lam
    if target_degree == 1:
        # Eq. (28), d_j = 1:  γ = (1/2)[S]_{i,i}·e_j − Q·[S]_{:,i}
        np.negative(w_vector, out=gamma)
        gamma[target] += 0.5 * s_matrix[source, source]
        return gamma, lam
    # Eq. (28), d_j > 1.
    scale = 1.0 / (target_degree - 1)
    coefficient = lam * scale / 2.0 - 1.0 / damping + 1.0
    np.divide(s_matrix[:, target], damping, out=gamma)
    gamma -= w_vector
    gamma[target] += coefficient
    gamma *= scale
    return gamma, lam


def compute_gamma(
    q_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    target_degree: int,
    config: SimRankConfig,
) -> np.ndarray:
    """The vector ``γ`` of Theorem 3 (Eqs. (27)–(28)).

    Thin wrapper over :func:`compute_gamma_lambda` kept for callers that
    only need ``γ``; always returns a freshly allocated array.
    """
    return compute_gamma_lambda(
        q_matrix, s_matrix, update, target_degree, config
    )[0]


def compute_update_vectors(
    q_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    graph,
    config: SimRankConfig,
    workspace: Optional[UpdateWorkspace] = None,
) -> UpdateVectors:
    """Bundle ``(u, v, γ, λ, d_j)`` for a unit update (lines 1–12 of Alg. 1).

    The single ``Q·[S]_{:,i}`` mat-vec inside
    :func:`compute_gamma_lambda` supplies both ``γ`` and ``λ`` — nothing
    is computed twice.  With a ``workspace``, every returned vector
    aliases a pooled buffer (valid until the next update).
    """
    from .rank_one import rank_one_decomposition, target_in_degree

    degree = target_in_degree(graph, update)
    u_vector, v_vector = rank_one_decomposition(
        graph, update, workspace=workspace
    )
    gamma, lam = compute_gamma_lambda(
        q_matrix, s_matrix, update, degree, config, workspace=workspace
    )
    return UpdateVectors(
        u=u_vector,
        v=v_vector,
        gamma=gamma,
        lam=lam,
        target_degree=degree,
    )
