"""Crash flight recorder: a bounded event ring snapshotted on failure.

Every process keeps a ``deque(maxlen=N)`` of recent telemetry events —
drain dispatches, worker respawns, backpressure trips, anything a layer
cares to :meth:`FlightRecorder.record`.  Appends are single bytecode
deque operations (atomic under the GIL, no lock on the hot path).

When something goes wrong — a worker crashes, a batch is quarantined,
the service enters degraded mode — the owning layer calls
:meth:`FlightRecorder.dump` and the whole ring is written to a JSON
file, so the post-mortem has the last N events *leading up to* the
failure without re-running the chaos schedule.

Dump files are named ``flight-<pid>-<reason>-<seq>.json`` and contain::

    {
      "reason": "quarantine",
      "pid": 12345,
      "dumped_at": 1754650000.123,
      "context": {"durable_version": 41, "wal_offset": 18204, ...},
      "events": [
        {"time": ..., "kind": "drain", "fields": {...}},
        ...
      ]
    }

``context`` holds slow-changing facts layers push with
:meth:`FlightRecorder.set_context` — e.g. the durability layer's last
durable version and WAL byte offset — so a dump pins *where the
on-disk history ends* next to the events that led to the failure.

Dumping is best-effort: an unwritable directory must never turn a
handled worker crash into a parent crash, so I/O errors are swallowed
and surfaced only via the ``dump_errors`` counter.  Files land in
``TelemetryConfig.flight_dir`` when configured, otherwise the system
temp directory.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlightRecorder", "NullFlightRecorder"]


class FlightRecorder:
    def __init__(
        self,
        capacity: int = 256,
        directory: Optional[str] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        # Dumps default to the system temp dir: post-mortems must work
        # out of the box without littering the working directory of
        # every process that merely *survived* a worker crash.
        self.directory = directory or tempfile.gettempdir()
        self._ring: deque = deque(maxlen=self.capacity)
        self._seq_lock = threading.Lock()
        self._seq = 0
        self.events_recorded = 0
        self.dumps = 0
        self.dump_errors = 0
        self._context: Dict = {}

    def set_context(self, **fields) -> None:
        """Merge slow-changing facts into every future dump's payload."""
        if not self.enabled:
            return
        self._context.update(fields)

    def context(self) -> Dict:
        return dict(self._context)

    def record(self, kind: str, **fields) -> None:
        """Append one event to the ring (lock-free hot path)."""
        if not self.enabled:
            return
        self._ring.append(
            {"time": time.time(), "kind": kind, "fields": fields}
        )
        self.events_recorded += 1

    def events(self) -> List[Dict]:
        return list(self._ring)

    def dump(self, reason: str) -> Optional[str]:
        """Snapshot the ring to a JSON file; returns its path (or None).

        Best-effort by design: failures to write increment
        ``dump_errors`` and return ``None`` rather than raising into a
        crash-recovery path that must keep going.
        """
        if not self.enabled:
            return None
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        payload = {
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "context": self.context(),
            "events": self.events(),
        }
        name = f"flight-{os.getpid()}-{reason}-{seq}.json"
        path = os.path.join(self.directory, name)
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=repr)
                handle.write("\n")
        except OSError:
            self.dump_errors += 1
            return None
        self.dumps += 1
        return path

    def report(self) -> Dict[str, float]:
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "events_buffered": len(self._ring),
            "dumps": self.dumps,
            "dump_errors": self.dump_errors,
        }


class NullFlightRecorder:
    """Disabled flight recorder: record/dump are no-ops."""

    __slots__ = ()

    enabled = False
    capacity = 0
    directory = "."
    events_recorded = 0
    dumps = 0
    dump_errors = 0

    def record(self, kind: str, **fields) -> None:
        pass

    def set_context(self, **fields) -> None:
        pass

    def context(self) -> Dict:
        return {}

    def events(self) -> List[Dict]:
        return []

    def dump(self, reason: str) -> Optional[str]:
        return None

    def report(self) -> Dict[str, float]:
        return {
            "enabled": False,
            "capacity": 0,
            "events_recorded": 0,
            "events_buffered": 0,
            "dumps": 0,
            "dump_errors": 0,
        }
