"""Request tracing: minted/propagated trace ids and a bounded span ring.

A trace id is minted at the front door (or accepted verbatim from an
``X-Trace-Id`` header) and rides the request through every layer:
``QueryRequest`` envelopes carry it into admission batching, update
submissions remember it until the drain that folds them in, and the
cluster pipe carries it inside ``ApplyPlanCmd``/``ApplyBatchCmd``
headers so worker-side apply time lands in the same trace (the parent
materialises those spans from the worker-reported ``Reply.seconds`` —
worker clocks are never compared against parent clocks).

Spans are plain dicts in a bounded ring (``deque(maxlen)``, appends are
atomic under the GIL), exportable as JSON via :meth:`Tracer.export` or
the front door's ``GET /traces?trace_id=...``.

Sampling is **deterministic on the trace id** (CRC32, not the salted
``hash``), so every layer — and every process — independently agrees
whether a given trace is recorded.  Explicitly supplied ids (the
``X-Trace-Id`` header) are always sampled: if a caller went to the
trouble of naming the trace, they want to see it.
"""

from __future__ import annotations

import threading
import time
import uuid
import zlib
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "trace_sampled"]

_SAMPLE_SPACE = 1 << 20


def trace_sampled(trace_id: str, sample_rate: float) -> bool:
    """Deterministic, process-independent sampling decision."""
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode("utf-8")) % _SAMPLE_SPACE
    return bucket < int(sample_rate * _SAMPLE_SPACE)


class Span:
    """A timing scope bound to one trace; use as a context manager."""

    __slots__ = ("tracer", "name", "trace_id", "attrs", "_started", "_wall")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str, attrs):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.attrs = attrs
        self._started = 0.0
        self._wall = 0.0

    def __enter__(self) -> "Span":
        self._wall = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._started
        if exc_type is not None:
            self.attrs = dict(self.attrs or {})
            self.attrs["error"] = exc_type.__name__
        self.tracer.record(
            self.name,
            self.trace_id,
            duration_seconds=duration,
            start_time=self._wall,
            **(self.attrs or {}),
        )
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Mints trace ids and records sampled spans into a bounded ring."""

    def __init__(
        self,
        capacity: int = 512,
        sample_rate: float = 1.0,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.sample_rate = float(sample_rate)
        self._ring: deque = deque(maxlen=self.capacity)
        self._forced: set = set()
        self._forced_lock = threading.Lock()
        self._active: Optional[str] = None
        self.spans_recorded = 0
        self.spans_dropped = 0

    # ------------------------------------------------------------- #
    # Trace id lifecycle
    # ------------------------------------------------------------- #

    def mint(self) -> str:
        return uuid.uuid4().hex

    def admit(self, trace_id: Optional[str]) -> Optional[str]:
        """The front-door entry point: adopt an explicit id or mint one.

        Explicit ids (``X-Trace-Id``) bypass sampling — they are pinned
        as force-sampled for the ring's lifetime (bounded set).  Minted
        ids are returned only when the sampler keeps them, so an
        unsampled request carries no id at all and every downstream
        layer skips its spans with one ``is None`` check.
        """
        if not self.enabled:
            return trace_id
        if trace_id:
            with self._forced_lock:
                self._forced.add(trace_id)
                while len(self._forced) > 4 * self.capacity:
                    self._forced.pop()
            return trace_id
        minted = self.mint()
        return minted if trace_sampled(minted, self.sample_rate) else None

    def sampled(self, trace_id: Optional[str]) -> bool:
        if not self.enabled or not trace_id:
            return False
        if trace_sampled(trace_id, self.sample_rate):
            return True
        with self._forced_lock:
            return trace_id in self._forced

    # The active trace is a one-slot baton for call chains too deep to
    # thread an argument through (writer drain -> engine -> executor ->
    # pool).  Drains are serialised by the writer's apply lock, so a
    # single slot is race-free in practice.
    def set_active(self, trace_id: Optional[str]) -> None:
        self._active = trace_id

    def active(self) -> Optional[str]:
        return self._active

    # ------------------------------------------------------------- #
    # Span recording
    # ------------------------------------------------------------- #

    def span(self, name: str, trace_id: Optional[str], **attrs):
        """A timing context manager; no-op when the trace is unsampled."""
        if not self.sampled(trace_id):
            return _NULL_SPAN
        return Span(self, name, trace_id, attrs)

    def record(
        self,
        name: str,
        trace_id: Optional[str],
        duration_seconds: float,
        start_time: Optional[float] = None,
        **attrs,
    ) -> None:
        """Record an externally timed span (e.g. worker apply seconds)."""
        if not self.sampled(trace_id):
            return
        span = {
            "name": name,
            "trace_id": trace_id,
            "start_time": time.time() if start_time is None else start_time,
            "duration_ms": duration_seconds * 1e3,
        }
        if attrs:
            span["attrs"] = attrs
        if len(self._ring) == self.capacity:
            self.spans_dropped += 1
        self._ring.append(span)
        self.spans_recorded += 1

    # ------------------------------------------------------------- #
    # Export
    # ------------------------------------------------------------- #

    def export(self, trace_id: Optional[str] = None) -> List[Dict]:
        """JSON-ready spans, oldest first; optionally one trace only."""
        spans = list(self._ring)
        if trace_id is not None:
            spans = [s for s in spans if s["trace_id"] == trace_id]
        return spans

    def report(self) -> Dict[str, float]:
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "capacity": self.capacity,
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
            "spans_buffered": len(self._ring),
        }


class NullTracer:
    """Disabled tracing: every call is a cheap no-op."""

    __slots__ = ()

    enabled = False
    sample_rate = 0.0
    capacity = 0
    spans_recorded = 0
    spans_dropped = 0

    def mint(self) -> str:
        return uuid.uuid4().hex

    def admit(self, trace_id):
        return trace_id

    def sampled(self, trace_id) -> bool:
        return False

    def set_active(self, trace_id) -> None:
        pass

    def active(self):
        return None

    def span(self, name, trace_id, **attrs):
        return _NULL_SPAN

    def record(self, name, trace_id, duration_seconds, **attrs) -> None:
        pass

    def export(self, trace_id=None) -> List[Dict]:
        return []

    def report(self) -> Dict[str, float]:
        return {
            "enabled": False,
            "sample_rate": 0.0,
            "capacity": 0,
            "spans_recorded": 0,
            "spans_dropped": 0,
            "spans_buffered": 0,
        }
