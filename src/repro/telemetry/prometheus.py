"""Prometheus text-format exposition (and a minimal parser for tests).

:func:`render_prometheus` walks a :class:`~.registry.MetricRegistry`
and emits text-format 0.0.4 — ``# TYPE`` lines, cumulative
``_bucket{le="..."}`` series for histograms, plus ``_sum``/``_count``.
Callback gauges are evaluated at render time; non-finite values are
emitted as Prometheus ``NaN``.

:func:`parse_prometheus_text` is the deliberately small inverse used by
the test suite and the CI smoke leg to *validate* a live scrape: it
understands comments, the ``name{labels} value`` sample shape, and
returns per-family type + samples.  It is not a general client.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

__all__ = ["render_prometheus", "parse_prometheus_text", "CONTENT_TYPE"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def _sanitize(name: str) -> str:
    return _NAME_OK.sub("_", name)


def _format_value(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(registry) -> str:
    """Text-format 0.0.4 exposition of every registered instrument."""
    lines: List[str] = []
    for instrument in registry.collect():
        name = _sanitize(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if instrument.kind == "histogram":
            cumulative = 0
            counts = instrument.bucket_counts()
            for bound, count in zip(instrument.buckets, counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += counts[-1] if counts else 0
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
        else:
            lines.append(f"{name} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict]:
    """Parse a text-format scrape into ``{family: {type, samples}}``.

    ``samples`` maps ``(sample_name, labels_tuple)`` to a float value,
    where ``labels_tuple`` is a sorted tuple of ``(key, value)`` pairs.
    Raises ``ValueError`` on any line it cannot understand — the CI
    smoke leg uses this as a validity gate, so unparseable output must
    fail loudly, not silently skip.
    """
    families: Dict[str, Dict] = {}
    declared_type: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared_type[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable prometheus sample: {raw!r}")
        sample_name = match.group("name")
        labels: Tuple[Tuple[str, str], ...] = ()
        if match.group("labels"):
            labels = tuple(
                sorted(
                    (m.group("key"), m.group("value"))
                    for m in _LABEL.finditer(match.group("labels"))
                )
            )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        elif value_text == "NaN":
            value = float("nan")
        else:
            value = float(value_text)
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(
                suffix
            ) else None
            if base and base in declared_type:
                family = base
                break
        entry = families.setdefault(
            family,
            {"type": declared_type.get(family, "untyped"), "samples": {}},
        )
        entry["samples"][(sample_name, labels)] = value
    return families


def validate_scrape(text: str) -> Dict[str, int]:
    """Parse + sanity-check a scrape; returns summary counts.

    Used by the CI front-door smoke leg: every histogram family must
    have a ``+Inf`` bucket whose value equals its ``_count``.
    """
    families = parse_prometheus_text(text)
    histograms = 0
    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        histograms += 1
        samples = entry["samples"]
        inf_bucket: Optional[float] = None
        count: Optional[float] = None
        for (sample_name, labels), value in samples.items():
            if sample_name == f"{name}_bucket" and (
                ("le", "+Inf") in labels
            ):
                inf_bucket = value
            if sample_name == f"{name}_count":
                count = value
        if inf_bucket is None or count is None or inf_bucket != count:
            raise ValueError(
                f"histogram {name} +Inf bucket ({inf_bucket}) does not "
                f"match count ({count})"
            )
    return {"families": len(families), "histograms": histograms}
