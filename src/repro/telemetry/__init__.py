"""Unified runtime telemetry: metrics, tracing, flight recording.

This package is the **runtime observability** spine of the stack — as
opposed to :mod:`repro.metrics`, which holds the paper's *evaluation*
metrics (NDCG, error norms, top-k overlap).  Three pillars, one
:class:`Telemetry` facade that every layer shares:

* :mod:`repro.telemetry.registry` — typed counters / gauges /
  fixed-bucket histograms with a near-zero-overhead no-op mode.
* :mod:`repro.telemetry.tracing` — per-request trace ids propagated
  front door → service → writer → executor → cluster pipe, spans in a
  bounded ring.
* :mod:`repro.telemetry.flight` — a per-process event ring snapshotted
  to JSON on worker crash, batch quarantine, or degraded entry.
* :mod:`repro.telemetry.prometheus` — text-format exposition for
  ``GET /metrics?format=prometheus`` plus the minimal parser the tests
  and CI validate scrapes with.

``NULL_TELEMETRY`` is the shared disabled instance: standalone engines
(benchmark legs, unit tests) run against it and pay one no-op method
call per instrumentation point.
"""

from __future__ import annotations

from typing import Dict, Optional

from .flight import FlightRecorder, NullFlightRecorder
from .prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_prometheus,
    validate_scrape,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    GaugeGroup,
    Histogram,
    MetricRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from .tracing import NullTracer, Span, Tracer, trace_sampled

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "GaugeGroup",
    "Histogram",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "Tracer",
    "NullTracer",
    "Span",
    "trace_sampled",
    "FlightRecorder",
    "NullFlightRecorder",
    "render_prometheus",
    "parse_prometheus_text",
    "validate_scrape",
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
]


class Telemetry:
    """One process's telemetry spine: registry + tracer + flight ring."""

    def __init__(
        self,
        enabled: bool = True,
        trace_sample_rate: float = 1.0,
        trace_capacity: int = 512,
        flight_capacity: int = 256,
        flight_dir: Optional[str] = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricRegistry(enabled=self.enabled)
        if self.enabled:
            self.tracer = Tracer(
                capacity=trace_capacity,
                sample_rate=trace_sample_rate,
            )
            self.flight = FlightRecorder(
                capacity=flight_capacity, directory=flight_dir
            )
        else:
            self.tracer = NullTracer()
            self.flight = NullFlightRecorder()

    @classmethod
    def from_config(cls, config) -> "Telemetry":
        """Build from a ``TelemetryConfig`` (or None → enabled defaults)."""
        if config is None:
            return cls()
        return cls(
            enabled=config.enabled,
            trace_sample_rate=config.trace_sample_rate,
            trace_capacity=config.trace_capacity,
            flight_capacity=config.flight_capacity,
            flight_dir=config.flight_dir,
        )

    def report(self) -> Dict:
        """The ``telemetry`` section of ``metrics_report()``."""
        return {
            "enabled": self.enabled,
            "tracing": self.tracer.report(),
            "flight": self.flight.report(),
            "histograms": self.registry.histogram_summaries(),
        }


#: Shared disabled instance — the default for standalone engines.
NULL_TELEMETRY = Telemetry(enabled=False)
