"""Typed metric registry: counters, gauges, fixed-bucket histograms.

One registry instance is the telemetry spine of a process: every layer
(front door, service, writer, executor, cluster pool) creates its
instruments here instead of hand-rolling gauge dicts.  Three instrument
types:

* :class:`Counter` — monotonically increasing, thread-safe.
* :class:`Gauge` — a point-in-time value, either set explicitly or
  backed by a zero-argument callback (the idiomatic way to expose an
  existing stats attribute without double bookkeeping).
* :class:`Histogram` — fixed upper-bound buckets with total count, sum,
  and tracked min/max; p50/p95/p99 are estimated by linear
  interpolation inside the containing bucket, so summaries cost O(1)
  memory regardless of sample volume.

Disabled registries hand out shared **null instruments** whose
``inc``/``set``/``observe`` are empty methods on allocation-free
singletons — the no-op mode costs one dynamic dispatch on the hot path
and nothing else (asserted by ``tests/test_telemetry.py`` with
``tracemalloc``).

:class:`GaugeGroup` is the dedup helper for the front-door stats
objects: declare each report field once (a name and a reader callback)
and the group both registers a callback gauge into the registry *and*
renders the exact legacy ``report()`` dict — key names and values are
identical whether telemetry is enabled or not, because the readers pull
from the stats object's own attributes.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "GaugeGroup",
    "Histogram",
    "MetricRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "DEFAULT_LATENCY_BUCKETS",
]

# Upper bounds in seconds, spanning sub-millisecond gathers to
# multi-second cold drains.  Roughly 2.5x steps: fine enough that
# interpolated p99 lands within ~2x of the true value, coarse enough
# that a histogram is 16 ints.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value — set explicitly or read from a callback."""

    __slots__ = ("name", "help", "_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return float("nan")
        return self._value


class Histogram:
    """Fixed-bucket latency histogram with interpolated percentiles."""

    __slots__ = (
        "name",
        "help",
        "buckets",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Bisect by hand to avoid an import on the hot path; bucket
        # counts are small tuples so linear scan wins below ~20 bounds.
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def percentile(self, q: float) -> float:
        """Estimate the ``q`` quantile (0..1) by in-bucket interpolation."""
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            counts = list(self._counts)
            lo_value, hi_value = self._min, self._max
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if cumulative + bucket_count >= target and bucket_count > 0:
                lower = (
                    lo_value
                    if index == 0
                    else self.buckets[index - 1]
                )
                upper = (
                    hi_value
                    if index >= len(self.buckets)
                    else min(self.buckets[index], hi_value)
                )
                lower = max(min(lower, upper), 0.0)
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return hi_value

    def summary(self) -> Dict[str, float]:
        """The JSON-facing digest: count/mean plus p50/p95/p99."""
        count = self._count
        return {
            "count": count,
            "mean": (self._sum / count) if count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self._max if count else 0.0,
        }


class NullCounter:
    """Allocation-free no-op counter (shared singleton)."""

    __slots__ = ()

    kind = "counter"
    name = "null"
    help = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()

    kind = "gauge"
    name = "null"
    help = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    kind = "histogram"
    name = "null"
    help = ""
    buckets: Tuple[float, ...] = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> List[int]:
        return []

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class MetricRegistry:
    """The per-process instrument registry.

    Factories are idempotent by name (the existing instrument is
    returned), so layers can create their instruments independently
    without coordinating.  A disabled registry returns the shared null
    instruments from every factory — callers hold a reference whose
    methods do nothing, and the hot path never branches on ``enabled``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(name, lambda: Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        gauge = self._get_or_create(name, lambda: Gauge(name, help, fn))
        if fn is not None and gauge._fn is not fn:
            # Latest owner wins: a restarted writer (or a second front
            # door) re-registers its callback under the same name, and
            # the gauge must read the live object, not a dead one.
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, help)
        )

    def _get_or_create(self, name: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            return instrument

    def get(self, name: str):
        return self._instruments.get(name)

    def collect(self) -> Iterable[object]:
        """Every registered instrument, name-ordered (stable exposition)."""
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """All histogram digests keyed by metric name (JSON ``/metrics``)."""
        out: Dict[str, Dict[str, float]] = {}
        for instrument in self.collect():
            if instrument.kind == "histogram" and instrument.count:
                out[instrument.name] = instrument.summary()
        return out


class GaugeGroup:
    """Declare-once report fields shared between JSON and Prometheus.

    Each :meth:`expose` call registers ``<prefix>_<key>`` as a callback
    gauge in the registry *and* remembers the reader for
    :meth:`report`, which renders the legacy flat dict with the exact
    historical key names.  The readers pull live values from the owning
    stats object, so the report stays correct even when the registry is
    disabled (null gauges).
    """

    def __init__(self, registry: MetricRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix
        self._fields: List[Tuple[str, Callable[[], float]]] = []

    def expose(
        self, key: str, fn: Callable[[], float], help: str = ""
    ) -> None:
        self._fields.append((key, fn))
        self._registry.gauge(f"{self._prefix}_{key}", help=help, fn=fn)

    def report(self) -> Dict[str, float]:
        return {key: fn() for key, fn in self._fields}
