"""Row-sharded similarity-score store with copy-on-write snapshots.

``S`` is dense (the paper's algorithms maintain all-pairs scores), but a
single monolithic ``n × n`` ndarray couples every reader to every
writer: a snapshot costs a full O(n²) copy and any update invalidates
all concurrent views.  :class:`ScoreStore` instead holds ``S`` in
**row-block shards** — each shard an independently growable 2-D buffer
covering ``shard_rows`` consecutive rows — which buys three things:

* **per-shard plan application**: a kernel
  :class:`~repro.incremental.plan.UpdatePlan` touches only the shards
  overlapping its union supports; each overlapping shard receives its
  row slice of the one union-support GEMM block (bit-identical to the
  dense scatter, each score entry still gets exactly one add);
* **independent growth**: node arrival grows at most the tail shard's
  rows and each shard's column capacity (amortized by doubling), never
  reallocating ``S`` wholesale; and
* **copy-on-write snapshots**: :meth:`snapshot` marks every shard
  shared and hands out read-only views.  The next write to a shared
  shard first clones *that shard only*, so a pinned
  :class:`ScoreSnapshot` keeps serving the frozen version while the
  writer advances — snapshot cost is O(#shards), and memory overhead is
  one shard per shard actually diverged, not O(n²) per version.

The store also quacks like the score matrix for the kernel's read
patterns (``store[:, j]``, ``store[i, j]``, ``store @ v``,
``store.matvec``), so the Theorem 1–3 precomputation runs against it
unchanged.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dtypes import DEFAULT_FLOAT_DTYPE, resolve_dtype
from ..exceptions import DimensionError

#: Default rows per shard.  Small enough that copy-on-write divergence
#: and per-shard growth stay cheap, large enough that per-shard scatter
#: overhead is negligible against the union-support GEMM.
DEFAULT_SHARD_ROWS = 512

#: Samples kept in the bounded recent window of per-plan apply seconds
#: (so merged batch records can still report a distribution).
DEFAULT_RECENT_WINDOW = 256


def window_summary_ms(samples) -> dict:
    """p50/p95/p99 digest (in ms) of a bounded sample window."""
    data = sorted(samples)
    count = len(data)
    if count == 0:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def _at(q: float) -> float:
        return data[min(count - 1, int(q * count))] * 1e3

    return {
        "count": count,
        "p50": _at(0.50),
        "p95": _at(0.95),
        "p99": _at(0.99),
    }

#: Backwards-compatible alias; the definition lives in
#: :mod:`repro.dtypes` (one source of truth for the dtype seam).
_FLOAT_DTYPE = DEFAULT_FLOAT_DTYPE


@dataclass
class ApplyMetrics:
    """Per-shard apply wall-time gauges of one score-store executor.

    ``per_shard_seconds`` accumulates the scatter wall time each shard
    paid across all applied plans; ``last_per_shard_seconds`` holds the
    breakdown of the most recent plan only.  The cluster bench uses
    these to attribute drain latency to shard application versus IPC:
    the in-process store reports pure scatter time here, and the
    process-pool client reports per-worker apply time next to the
    measured round-trip overhead.
    """

    plans: int = 0
    seconds: float = 0.0
    per_shard_seconds: Dict[int, float] = field(default_factory=dict)
    last_plan_seconds: float = 0.0
    last_per_shard_seconds: Dict[int, float] = field(default_factory=dict)
    #: Apply commands that carried more than one plan (the cluster's
    #: batched-drain path; always 0 for purely per-plan executors).
    batches: int = 0
    #: Plans that arrived inside batched commands.
    batched_plans: int = 0
    last_batch_size: int = 0
    #: Bounded window of recent *per-plan* apply seconds.  Batched
    #: records merge shard timings across the whole command, so without
    #: this window the per-plan distribution would be unrecoverable —
    #: callers that know the per-plan split pass it to
    #: :meth:`record_batch`.
    recent_plan_seconds: deque = field(
        default_factory=lambda: deque(maxlen=DEFAULT_RECENT_WINDOW)
    )

    def record(self, per_shard: Dict[int, float], plans: int = 1) -> None:
        """Fold one apply command's per-shard timings into the gauges."""
        self.plans += plans
        total = sum(per_shard.values())
        self.seconds += total
        self.last_plan_seconds = total
        self.last_per_shard_seconds = dict(per_shard)
        if plans == 1:
            self.recent_plan_seconds.append(total)
        for shard_id, seconds in per_shard.items():
            self.per_shard_seconds[shard_id] = (
                self.per_shard_seconds.get(shard_id, 0.0) + seconds
            )

    def record_batch(
        self,
        per_shard: Dict[int, float],
        plans: int,
        per_plan_seconds: Optional[Sequence[float]] = None,
    ) -> None:
        """Fold one whole drain batch (``plans`` plans, one command).

        ``per_plan_seconds`` — when the executor timed each plan
        individually (the in-process batched path does) — feeds the
        bounded recent window, so ``report()`` can show a per-plan
        distribution even though the shard timings are merged.
        """
        self.record(per_shard, plans=plans)
        self.batches += 1
        self.batched_plans += plans
        self.last_batch_size = plans
        if per_plan_seconds is not None:
            self.recent_plan_seconds.extend(per_plan_seconds)

    def batch_size(self) -> float:
        """Mean plans per batched apply command (0.0 before any batch)."""
        if self.batches == 0:
            return 0.0
        return self.batched_plans / self.batches

    def report(self) -> dict:
        """JSON-friendly summary (keys stringified for serialization)."""
        return {
            "plans": self.plans,
            "apply_seconds": self.seconds,
            "mean_plan_seconds": self.seconds / self.plans if self.plans else 0.0,
            "last_plan_seconds": self.last_plan_seconds,
            "batches": self.batches,
            "batch_size": self.batch_size(),
            "last_batch_size": self.last_batch_size,
            "per_shard_seconds": {
                str(shard): seconds
                for shard, seconds in sorted(self.per_shard_seconds.items())
            },
            "recent_plan_ms": window_summary_ms(self.recent_plan_seconds),
        }


class _Shard:
    """One row block of ``S``: a growable buffer plus sharing state."""

    __slots__ = ("base", "rows", "buffer", "shared")

    def __init__(self, base: int, rows: int, buffer: np.ndarray) -> None:
        self.base = int(base)
        self.rows = int(rows)
        self.buffer = buffer
        #: True while any snapshot may still reference ``buffer``; the
        #: next write clones the buffer and clears the flag.
        self.shared = False


class ScoreSnapshot:
    """An immutable view of ``S`` frozen at one store version.

    Holds read-only row-block views into the shard buffers that were
    live at :meth:`ScoreStore.snapshot` time.  Copy-on-write in the
    store guarantees those buffers are never written again once the
    writer diverges, so every read from this snapshot is bit-identical
    to the state at pin time, forever.
    """

    __slots__ = ("num_nodes", "version", "shard_rows", "_views")

    def __init__(
        self,
        num_nodes: int,
        version: int,
        shard_rows: int,
        views: Sequence[np.ndarray],
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.version = int(version)
        self.shard_rows = int(shard_rows)
        self._views = tuple(views)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_nodes, self.num_nodes)

    def entry(self, row: int, col: int) -> float:
        """One frozen score ``[S]_{row,col}``."""
        view = self._views[row // self.shard_rows]
        return float(view[row % self.shard_rows, col])

    @property
    def dtype(self) -> np.dtype:
        """Widest shard dtype — what dense reads materialize into."""
        if not self._views:
            return DEFAULT_FLOAT_DTYPE
        dtypes = {view.dtype for view in self._views}
        if len(dtypes) == 1:
            return dtypes.pop()
        return np.result_type(*dtypes)

    def row(self, row: int) -> np.ndarray:
        """A copy of frozen row ``row`` (in the shard's own dtype)."""
        view = self._views[row // self.shard_rows]
        return np.array(view[row % self.shard_rows])

    def gather(self, rows, cols) -> list:
        """Frozen scores of many ``(row, col)`` pairs, one read per shard.

        The front door's batched-admission path for ``similarity``
        queries: pairs are grouped by shard and fetched with one
        fancy-indexing read each, instead of one Python-level
        :meth:`entry` call per pair.  Bit-identical to :meth:`entry`
        (both read the same frozen array element and widen through
        ``float``).
        """
        by_shard: dict = {}
        for index, row in enumerate(rows):
            by_shard.setdefault(row // self.shard_rows, []).append(index)
        out = [0.0] * len(rows)
        for shard, indices in by_shard.items():
            local = np.array([rows[i] % self.shard_rows for i in indices])
            cut = np.array([cols[i] for i in indices])
            values = self._views[shard][local, cut]
            for slot, value in zip(indices, values):
                out[slot] = float(value)
        return out

    def column(self, col: int) -> np.ndarray:
        """A copy of frozen column ``col``."""
        out = np.empty(self.num_nodes, dtype=self.dtype)
        cursor = 0
        for view in self._views:
            out[cursor : cursor + view.shape[0]] = view[:, col]
            cursor += view.shape[0]
        return out

    def to_array(self) -> np.ndarray:
        """Materialize the full frozen matrix (a fresh copy)."""
        if not self._views:
            return np.zeros((0, 0), dtype=DEFAULT_FLOAT_DTYPE)
        return np.concatenate(self._views, axis=0)

    def iter_blocks(self):
        """Yield ``(base_row, block_view)`` per frozen shard.

        The shard-at-a-time read path: block-wise consumers (the top-k
        shard merge) never need :meth:`to_array`'s dense concatenation.
        """
        cursor = 0
        for view in self._views:
            yield cursor, view
            cursor += view.shape[0]

    def nbytes(self) -> int:
        """Logical bytes pinned by this snapshot (the viewed rows)."""
        return sum(view.nbytes for view in self._views)

    def __repr__(self) -> str:
        return (
            f"ScoreSnapshot(n={self.num_nodes}, version={self.version}, "
            f"shards={len(self._views)})"
        )


class ScoreStore:
    """The executor-side owner of ``S``; applies kernel update plans."""

    def __init__(
        self,
        scores: np.ndarray,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        dtype=None,
        telemetry=None,
    ) -> None:
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._telemetry = telemetry
        #: Per-plan apply latency histogram; the shared null instrument
        #: when telemetry is off, so the hot path never branches.
        self._apply_hist = telemetry.registry.histogram(
            "repro_executor_apply_plan_seconds",
            help="Per-plan union-support GEMM + scatter wall time",
        )
        self._dtype = resolve_dtype(dtype)
        scores = np.asarray(scores, dtype=self._dtype)
        if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
            raise DimensionError(
                f"scores must be square, got shape {scores.shape}"
            )
        if shard_rows <= 0:
            raise DimensionError(f"shard_rows must be positive: {shard_rows}")
        self._n = scores.shape[0]
        self._shard_rows = int(shard_rows)
        self._shards: List[_Shard] = []
        #: Optional shard-local top-k observer, notified on mutations.
        self._topk = None
        #: Monotone counter bumped by every mutation (mirrors
        #: :attr:`TransitionStore.version`).
        self.version = 0
        #: Shard buffers cloned by copy-on-write since construction.
        self.cow_copies = 0
        #: Per-shard apply wall-time gauges (see :class:`ApplyMetrics`).
        self.apply_metrics = ApplyMetrics()
        #: Scratch for the per-shard timing of the plan being applied.
        self._shard_timing: Dict[int, float] = {}
        for base in range(0, self._n, self._shard_rows):
            rows = min(self._shard_rows, self._n - base)
            # order="C" is load-bearing: np.array's default order="K"
            # would inherit an F-ordered source (BLAS results often
            # are), and the row-block scatter path is several times
            # slower on F-ordered shards.
            buffer = np.array(
                scores[base : base + rows], dtype=self._dtype, order="C"
            )
            self._shards.append(_Shard(base, rows, buffer))

    @classmethod
    def from_dense(
        cls,
        scores: np.ndarray,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        dtype=None,
        telemetry=None,
    ) -> "ScoreStore":
        """Shard a dense score matrix (the initial batch precomputation)."""
        return cls(
            scores, shard_rows=shard_rows, dtype=dtype, telemetry=telemetry
        )

    # -------------------------------------------------------------- #
    # Shape / reads
    # -------------------------------------------------------------- #

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._n)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_rows(self) -> int:
        """Rows per shard (all shards but the last are full)."""
        return self._shard_rows

    @property
    def dtype(self) -> np.dtype:
        """The store's default storage dtype (new shards allocate in it)."""
        return self._dtype

    def _read_dtype(self) -> np.dtype:
        """Widest shard dtype — the dtype dense reads materialize into.

        Uniform stores read in their own dtype; a mixed store (some
        shards demoted by a precision plan) promotes reads so no score
        loses precision on the way out.
        """
        if not self._shards:
            return self._dtype
        dtypes = {shard.buffer.dtype for shard in self._shards}
        if len(dtypes) == 1:
            return dtypes.pop()
        return np.result_type(*dtypes)

    def _live(self, shard: _Shard) -> np.ndarray:
        """The shard's live ``rows × n`` window (read-only by contract)."""
        return shard.buffer[: shard.rows, : self._n]

    def shard_block(self, index: int) -> Tuple[int, np.ndarray]:
        """``(base_row, live block view)`` of shard ``index`` (read-only)."""
        shard = self._shards[index]
        return shard.base, self._live(shard)

    def iter_shard_blocks(self):
        """Yield ``(base_row, live block view)`` per shard (read-only)."""
        for shard in self._shards:
            yield shard.base, self._live(shard)

    def attach_topk(self, index) -> None:
        """Register ``index`` as the shard-local top-k observer.

        The store notifies it on every mutation (:meth:`apply_plan`
        patches the affected pairs; dense rewrites and node arrival
        invalidate).  At most one observer is attached; a new one
        replaces the old.
        """
        self._topk = index

    @property
    def topk(self):
        """The attached shard-local top-k index, or None."""
        return self._topk

    def make_topk_index(self, k: int):
        """Build (and attach) the top-k index matching this executor.

        The in-process store answers with a
        :class:`~repro.executor.topk_index.ShardTopK` over its own
        shards; the process-pool :class:`~repro.cluster.ShardClient`
        overrides this to hand out a pool-backed index whose heaps live
        in the workers.  The engine routes ``top_k`` through this hook
        so it never needs to know which executor owns the shards.
        """
        from .topk_index import ShardTopK

        return ShardTopK(self, k=k)

    def apply_report(self) -> dict:
        """Executor-side apply gauges (mode + per-shard wall time)."""
        report = {"mode": "inproc", "workers": 0}
        report.update(self.apply_metrics.report())
        return report

    def entry(self, row: int, col: int) -> float:
        """One score ``[S]_{row,col}``."""
        shard = self._shards[row // self._shard_rows]
        return float(shard.buffer[row - shard.base, col])

    def row(self, row: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """A copy of row ``row`` (into ``out`` when given)."""
        shard = self._shards[row // self._shard_rows]
        if out is None:
            out = np.empty(self._n, dtype=shard.buffer.dtype)
        np.copyto(out, shard.buffer[row - shard.base, : self._n])
        return out

    def column(self, col: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """A copy of column ``col`` — a contiguous gather across shards."""
        if out is None:
            out = np.empty(self._n, dtype=self._read_dtype())
        for shard in self._shards:
            out[shard.base : shard.base + shard.rows] = shard.buffer[
                : shard.rows, col
            ]
        return out

    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense ``S @ x``, one GEMV per shard."""
        if out is None:
            out = np.empty(
                self._n, dtype=np.result_type(self._read_dtype(), x.dtype)
            )
        for shard in self._shards:
            np.dot(
                self._live(shard),
                x,
                out=out[shard.base : shard.base + shard.rows],
            )
        return out

    def __matmul__(self, x):
        if isinstance(x, np.ndarray) and x.ndim == 1:
            return self.matvec(x)
        return self.to_array() @ x

    def __getitem__(self, key):
        """Score-matrix duck typing for the kernel's read patterns.

        Supports exactly the accesses the Theorem 1–3 precomputation
        performs: ``store[i, j]`` (scalar), ``store[:, j]`` (column
        copy), and ``store[i, :]`` (row copy).
        """
        if isinstance(key, tuple) and len(key) == 2:
            row_key, col_key = key
            row_is_index = isinstance(row_key, (int, np.integer))
            col_is_index = isinstance(col_key, (int, np.integer))
            if row_is_index and col_is_index:
                return self.entry(int(row_key), int(col_key))
            if row_key == slice(None) and col_is_index:
                return self.column(int(col_key))
            if row_is_index and col_key == slice(None):
                return self.row(int(row_key))
        raise TypeError(
            f"ScoreStore supports [i, j], [:, j] and [i, :] reads; got {key!r}"
        )

    def to_array(self) -> np.ndarray:
        """Materialize the full matrix as one fresh dense copy."""
        if not self._shards:
            return np.zeros((0, 0), dtype=self._dtype)
        return np.concatenate(
            [self._live(shard) for shard in self._shards], axis=0
        )

    # -------------------------------------------------------------- #
    # Writes (all funnel through the copy-on-write gate)
    # -------------------------------------------------------------- #

    def _writable(self, shard: _Shard) -> np.ndarray:
        """The shard buffer, cloned first if a snapshot may reference it."""
        if shard.shared:
            shard.buffer = shard.buffer.copy()
            shard.shared = False
            self.cow_copies += 1
        return shard.buffer

    def apply_plan(self, plan) -> None:
        """Apply a kernel :class:`UpdatePlan`: union-support GEMM + scatter.

        Densifies the plan's factors over the union supports once, runs
        the single GEMM, and scatter-adds the block (and its transpose)
        shard by shard.  Only shards overlapping the supports are
        touched — and only those pay a copy-on-write clone.
        """
        if plan.is_noop:
            return
        self._shard_timing = {}
        self._apply_plan_scatter(plan)
        self.apply_metrics.record(self._shard_timing)
        self._apply_hist.observe(sum(self._shard_timing.values()))
        self.version += 1
        if self._topk is not None:
            self._topk.on_plan(plan)

    def _apply_plan_scatter(self, plan) -> None:
        """The one copy of the per-plan apply arithmetic.

        Every executor path (per-plan apply, batched apply, the cluster
        planning overlay via inheritance) funnels through this — the
        bit-equivalence gate rides on them staying one implementation.
        Timings land in ``self._shard_timing`` (caller resets it).
        """
        left, right = plan.panels()
        block = left @ right.T
        self._scatter_add(plan.rows_union, plan.cols_union, block)
        self._scatter_add(plan.cols_union, plan.rows_union, block.T)

    def apply_batch(self, batch, planned_on=None) -> None:
        """Apply a :class:`~repro.incremental.plan.PlanBatch` in order.

        Each plan runs the identical per-plan union-support GEMM +
        scatter as :meth:`apply_plan` (see :class:`PlanBatch` on why the
        GEMMs are deliberately not fused across plans), so the result is
        bit-identical to the sequential per-plan path.  The in-process
        store gains no round trips to amortize — the batched gauges
        exist so the cluster executor's :class:`ShardClient` can expose
        the same surface — but the batch is still recorded as one
        command in :class:`ApplyMetrics`.  ``planned_on`` (a planning
        overlay, on the cluster path) is ignored here: this store *is*
        the authoritative state the plans were planned against.
        """
        live = [plan for plan in batch if not plan.is_noop]
        if not live:
            return
        timing: Dict[int, float] = {}
        per_plan: List[float] = []
        for plan in live:
            self._shard_timing = {}
            self._apply_plan_scatter(plan)
            plan_total = 0.0
            for shard_id, seconds in self._shard_timing.items():
                timing[shard_id] = timing.get(shard_id, 0.0) + seconds
                plan_total += seconds
            per_plan.append(plan_total)
            self._apply_hist.observe(plan_total)
            self.version += 1
            if self._topk is not None:
                self._topk.on_plan(plan)
        self.apply_metrics.record_batch(
            timing, plans=len(live), per_plan_seconds=per_plan
        )

    def _scatter_shard(
        self,
        shard: _Shard,
        shard_id: int,
        rows: np.ndarray,
        cols: np.ndarray,
        block: np.ndarray,
    ) -> None:
        """One shard's slice of the scatter, timed into the apply gauges."""
        started = time.perf_counter()
        buffer = self._writable(shard)
        buffer[np.ix_(rows - shard.base, cols)] += block
        self._shard_timing[shard_id] = self._shard_timing.get(
            shard_id, 0.0
        ) + (time.perf_counter() - started)

    def _scatter_add(
        self, rows: np.ndarray, cols: np.ndarray, block: np.ndarray
    ) -> None:
        """``S[rows × cols] += block`` with ``rows`` sorted ascending."""
        if rows.size == 0 or cols.size == 0:
            return
        first = int(rows[0]) // self._shard_rows
        last = int(rows[-1]) // self._shard_rows
        if first == last:
            self._scatter_shard(self._shards[first], first, rows, cols, block)
            return
        bounds = np.searchsorted(
            rows,
            np.arange(first + 1, last + 1, dtype=np.int64) * self._shard_rows,
        )
        segments = np.concatenate(([0], bounds, [rows.size]))
        for offset, shard_id in enumerate(range(first, last + 1)):
            lo, hi = int(segments[offset]), int(segments[offset + 1])
            if lo == hi:
                continue
            self._scatter_shard(
                self._shards[shard_id],
                shard_id,
                rows[lo:hi],
                cols,
                block[lo:hi],
            )

    def add_dense(self, delta: np.ndarray) -> None:
        """``S += delta`` shard by shard (the unpruned Inc-uSR path)."""
        if delta.shape != self.shape:
            raise DimensionError(
                f"delta shape {delta.shape} != {self.shape}"
            )
        for shard in self._shards:
            buffer = self._writable(shard)
            buffer[: shard.rows, : self._n] += delta[
                shard.base : shard.base + shard.rows
            ]
        self.version += 1
        if self._topk is not None:
            self._topk.invalidate_all()

    def replace_dense(self, scores: np.ndarray) -> None:
        """Overwrite all scores (batch recomputation path).

        The assignment casts into each shard's own dtype, so demoted
        shards stay demoted across a rewrite.
        """
        scores = np.asarray(scores)
        if scores.shape != self.shape:
            raise DimensionError(
                f"scores shape {scores.shape} != {self.shape}"
            )
        for shard in self._shards:
            buffer = self._writable(shard)
            buffer[: shard.rows, : self._n] = scores[
                shard.base : shard.base + shard.rows
            ]
        self.version += 1
        if self._topk is not None:
            self._topk.invalidate_all()

    def set_entry(self, row: int, col: int, value: float) -> None:
        """Write one score (node-arrival self-score)."""
        shard = self._shards[row // self._shard_rows]
        buffer = self._writable(shard)
        buffer[row - shard.base, col] = value
        self.version += 1
        if self._topk is not None:
            self._topk.on_entry(row, col)

    def add_node(self) -> int:
        """Grow to ``n + 1`` nodes; returns the new (all-zero) row id.

        The tail shard's row window grows (doubling its buffer rows up
        to ``shard_rows``) or a fresh shard is opened; every shard's
        column capacity grows by doubling when ``n`` outruns it.  The
        new row and column read as zeros by construction: buffers are
        zero-allocated and writes never exceed the live window.
        """
        node = self._n
        self._n += 1
        # Column capacity first (all shards must span the new column).
        for shard in self._shards:
            if self._n > shard.buffer.shape[1]:
                grown = np.zeros(
                    (shard.buffer.shape[0], max(2 * shard.buffer.shape[1], self._n)),
                    dtype=shard.buffer.dtype,
                )
                grown[:, : shard.buffer.shape[1]] = shard.buffer
                shard.buffer = grown
                shard.shared = False  # fresh allocation, provably private
        tail = self._shards[-1] if self._shards else None
        if tail is not None and tail.rows < self._shard_rows:
            if tail.rows + 1 > tail.buffer.shape[0]:
                rows_cap = min(
                    self._shard_rows, max(2 * tail.buffer.shape[0], 1)
                )
                grown = np.zeros(
                    (rows_cap, tail.buffer.shape[1]), dtype=tail.buffer.dtype
                )
                grown[: tail.rows] = tail.buffer[: tail.rows]
                tail.buffer = grown
                tail.shared = False
            tail.rows += 1
        else:
            base = node
            buffer = np.zeros((1, max(self._n, 1)), dtype=self._dtype)
            self._shards.append(_Shard(base, 1, buffer))
        self.version += 1
        if self._topk is not None:
            self._topk.on_add_node()
        return node

    # -------------------------------------------------------------- #
    # Snapshots
    # -------------------------------------------------------------- #

    def snapshot(self) -> ScoreSnapshot:
        """Pin the current version as an immutable :class:`ScoreSnapshot`.

        O(#shards): marks every shard shared and returns read-only
        views of the live windows.  Later writes clone the affected
        shard buffers first, so the snapshot stays bit-identical to the
        pinned version no matter what the writer does next.
        """
        views = []
        for shard in self._shards:
            shard.shared = True
            view = self._live(shard)
            view.flags.writeable = False
            views.append(view)
        return ScoreSnapshot(self._n, self.version, self._shard_rows, views)

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #

    def nbytes(self) -> int:
        """Logical bytes of the live ``n × n`` scores.

        Dtype-aware: each shard is charged its *own* itemsize, so a
        store with demoted float32 shards reports the memory it
        actually holds, not the float64 estimate.
        """
        return sum(
            shard.rows * self._n * shard.buffer.dtype.itemsize
            for shard in self._shards
        )

    def buffer_bytes(self) -> int:
        """Allocated bytes across all shard buffers (slack included)."""
        return sum(shard.buffer.nbytes for shard in self._shards)

    def shard_report(self) -> List[dict]:
        """Per-shard accounting (rows, allocation, dtype, sharing state)."""
        return [
            {
                "base": shard.base,
                "rows": shard.rows,
                "buffer_bytes": shard.buffer.nbytes,
                "dtype": shard.buffer.dtype.name,
                "shared": shard.shared,
            }
            for shard in self._shards
        ]

    def shard_dtypes(self) -> List[str]:
        """Each shard's storage dtype name, in shard order."""
        return [shard.buffer.dtype.name for shard in self._shards]

    def dtype_report(self) -> dict:
        """Dtype-aware accounting for the observability surface.

        ``score_dtype_bytes`` is the live-score footprint at actual
        per-shard itemsize; ``shards_by_dtype`` counts shards per
        storage dtype (all under one key until a precision plan demotes
        a subset).
        """
        counts: Dict[str, int] = {}
        for shard in self._shards:
            name = shard.buffer.dtype.name
            counts[name] = counts.get(name, 0) + 1
        return {
            "score_dtype": self._dtype.name,
            "score_dtype_bytes": self.nbytes(),
            "shards_by_dtype": counts,
        }

    # -------------------------------------------------------------- #
    # Precision
    # -------------------------------------------------------------- #

    def set_shard_dtype(self, index: int, dtype) -> bool:
        """Convert one shard's storage to ``dtype`` (the demotion seam).

        Returns True when the shard actually changed.  Conversion
        allocates a fresh private buffer (so pinned snapshots keep
        their frozen views untouched) and counts as a mutation: a
        float64→float32 demotion rounds the stored scores.
        """
        target = resolve_dtype(dtype)
        shard = self._shards[index]
        if shard.buffer.dtype == target:
            return False
        shard.buffer = np.array(shard.buffer, dtype=target, order="C")
        shard.shared = False  # fresh allocation, provably private
        self.version += 1
        if self._topk is not None:
            self._topk.invalidate_all()
        return True

    def set_dtype(self, dtype) -> int:
        """Convert every shard (and the store default) to ``dtype``.

        Returns the number of shards converted.
        """
        target = resolve_dtype(dtype)
        self._dtype = target
        return sum(
            1
            for index in range(len(self._shards))
            if self.set_shard_dtype(index, target)
        )

    def shared_shard_count(self) -> int:
        """Shards currently marked copy-on-write (pinned by snapshots)."""
        return sum(1 for shard in self._shards if shard.shared)

    def __repr__(self) -> str:
        return (
            f"ScoreStore(n={self._n}, shards={len(self._shards)}, "
            f"shard_rows={self._shard_rows}, version={self.version})"
        )
