"""Shard-local incremental top-k maintenance over the sharded score store.

``top_k()`` used to materialize the full ``S`` matrix and scan all
O(n²) upper-triangle entries on every call — exactly the dense pass the
low-rank :class:`~repro.incremental.plan.UpdatePlan` machinery exists to
avoid.  This module keeps the ranking *incremental* and *shard-local*:

* Each :class:`~repro.executor.score_store.ScoreStore` row-block shard
  owns the canonical pairs ``(a, b)`` with ``a < b`` whose row ``a``
  falls in the shard.  :class:`ShardTopK` keeps, per shard, a small
  candidate set (a dict plus a lazy-deletion heap) of the shard's best
  ``capacity`` pairs under the same deterministic order as
  :func:`~repro.metrics.topk.top_k_pairs` — descending score, ties by
  ``(a, b)``.
* When the executor applies an :class:`~repro.incremental.plan.UpdatePlan`,
  only the pairs inside the plan's affected supports
  (``rows_union × cols_union`` and its transpose) can have moved, so the
  index patches exactly those pairs in the overlapping shards.  A shard
  pays a lazy re-scan only when its **heap floor is invalidated** — a
  tracked candidate falls to or below the score floor beneath which
  entries were previously discarded, so untracked pairs could now
  outrank it.  Dirty shards are re-scanned at the next query, not
  eagerly.
* A query merges the per-shard candidate sets k-way —
  O(shards · capacity) candidates through a size-k heap instead of an
  O(n²) dense scan — and :class:`TopKStats` records the ``heap_hit_rate``
  (queries answered purely from the maintained heaps).

:func:`top_k_from_blocks` is the scan-based sibling used by frozen
:class:`~repro.executor.score_store.ScoreSnapshot` views: it selects
candidates one row block at a time (never concatenating the shards into
a dense ``n × n`` matrix) and merges them with the same deterministic
order, so snapshot and incremental rankings are bit-identical to the
brute-force reference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import DimensionError

Pair = Tuple[int, int]
#: Total-order key — ascending key = better pair (score desc, then pair
#: order), matching :func:`repro.metrics.topk.top_k_pairs` exactly.
PairKey = Tuple[float, int, int]
ScoredPair = Tuple[int, int, float]


def _key(a: int, b: int, score: float) -> PairKey:
    return (-score, a, b)


def _block_candidates(
    block: np.ndarray, base: int, limit: int, include_self: bool = False
) -> Tuple[List[ScoredPair], bool]:
    """Deterministic top-``limit`` upper-triangle entries of one row block.

    ``block`` covers global rows ``base .. base + rows``; only entries
    with ``col > row`` (``>=`` when ``include_self``) participate.
    Returns ``(candidates, truncated)`` where ``truncated`` is True when
    valid entries were discarded — i.e. the block held more than
    ``limit`` of them.  Tie handling matches ``top_k_pairs``: entries
    equal to the cut-off score are kept in ``(row, col)`` order, which is
    exactly the row-major order ``np.nonzero`` yields.
    """
    rows, n = block.shape
    if rows == 0 or n == 0 or limit <= 0:
        return [], False
    offset = 0 if include_self else 1
    row_ids = np.arange(base, base + rows, dtype=np.int64)
    invalid = np.arange(n, dtype=np.int64)[None, :] < (
        row_ids[:, None] + offset
    )
    valid_count = rows * n - int(invalid.sum())
    if valid_count <= 0:
        return [], False
    work = np.array(block, dtype=np.float64)
    work[invalid] = -np.inf
    if valid_count <= limit:
        r, c = np.nonzero(~invalid)
        return (
            [
                (int(base + i), int(j), float(work[i, j]))
                for i, j in zip(r, c)
            ],
            False,
        )
    flat = work.ravel()
    threshold = float(np.partition(flat, flat.size - limit)[flat.size - limit])
    above = work > threshold
    r, c = np.nonzero(above)
    out = [
        (int(base + i), int(j), float(work[i, j])) for i, j in zip(r, c)
    ]
    need = limit - len(out)
    if need > 0:
        tr, tc = np.nonzero(work == threshold)
        for i, j in zip(tr[:need], tc[:need]):
            out.append((int(base + i), int(j), threshold))
    return out, True


def top_k_from_blocks(
    blocks: Iterable[Tuple[int, np.ndarray]],
    k: int,
    include_self: bool = False,
) -> List[ScoredPair]:
    """Global top-``k`` pairs from ``(base, row_block)`` views.

    The shard-merge sibling of
    :func:`~repro.metrics.topk.top_k_pairs`: identical output (same
    deterministic tie order), but the selection runs one row block at a
    time — at most ``k`` candidates survive per block, and the final
    k-way merge touches ``O(blocks · k)`` candidates — so the full
    ``n × n`` matrix is never materialized.
    """
    if k < 0:
        raise DimensionError(f"k must be >= 0, got {k}")
    if k == 0:
        return []
    candidates: List[ScoredPair] = []
    for base, view in blocks:
        candidates.extend(_block_candidates(view, base, k, include_self)[0])
    best = heapq.nsmallest(k, candidates, key=lambda t: _key(t[0], t[1], t[2]))
    return [(a, b, float(s)) for a, b, s in best]


@dataclass
class TopKStats:
    """Lifetime counters of one :class:`ShardTopK` index."""

    queries: int = 0
    heap_hits: int = 0
    shard_queries: int = 0
    shard_rescans: int = 0
    patched_entries: int = 0
    floor_invalidations: int = 0
    full_invalidations: int = 0

    def heap_hit_rate(self) -> float:
        """Fraction of per-query shard reads served from the heaps.

        Each query consults every shard; a shard counts as a hit when
        its candidate heap was still valid (no re-scan needed).  1.0
        means pure incremental maintenance; the complement is the
        fraction of shard visits that paid a lazy re-scan.
        """
        if self.shard_queries == 0:
            return 0.0
        return 1.0 - self.shard_rescans / self.shard_queries

    def clean_query_rate(self) -> float:
        """Fraction of queries that re-scanned no shard at all."""
        if self.queries == 0:
            return 0.0
        return self.heap_hits / self.queries


class _ShardHeap:
    """One shard's candidate set: tracked pairs + lazy-deletion heap.

    ``entries`` maps each tracked canonical pair to its current score.
    ``heap`` holds ``(score, -a, -b)`` records (min-heap top = worst
    tracked pair under the ranking order); records go stale when a pair
    is re-scored, and are dropped lazily when their score no longer
    matches ``entries``.  ``floor`` is the key of the best pair ever
    *discarded* from this shard — every untracked pair's key is ``>=``
    ``floor`` — or ``None`` while nothing has been discarded (every pair
    of the shard is tracked).
    """

    __slots__ = ("entries", "heap", "floor", "dirty")

    def __init__(self) -> None:
        self.entries: Dict[Pair, float] = {}
        self.heap: List[Tuple[float, int, int]] = []
        self.floor: Optional[PairKey] = None
        self.dirty = True

    # __slots__ classes have no __dict__, so pickling the per-shard
    # heap state (shipped to/from cluster workers) needs explicit
    # state methods.
    def __getstate__(self) -> dict:
        return {
            "entries": self.entries,
            "heap": self.heap,
            "floor": self.floor,
            "dirty": self.dirty,
        }

    def __setstate__(self, state: dict) -> None:
        self.entries = state["entries"]
        self.heap = state["heap"]
        self.floor = (
            tuple(state["floor"]) if state["floor"] is not None else None
        )
        self.dirty = state["dirty"]


class ShardTopK:
    """Incrementally maintained top-k pairs over a live :class:`ScoreStore`.

    Parameters
    ----------
    store:
        The live sharded score store; the index attaches itself as the
        store's top-k observer and is patched on every mutation.
    k:
        Largest ranking size the index serves.
    capacity:
        Candidates kept per shard (default ``max(2k, 16)``) — the slack
        above ``k`` is what lets score *decreases* usually stay local
        instead of forcing a shard re-scan.
    shard_range:
        Optional ``(lo, hi)`` *global* shard-id range this index owns.
        The default (None) tracks every shard of the store; a cluster
        worker passes its contiguous shard slice so the index maintains
        exactly the worker's heaps and ignores foreign shards in
        :meth:`on_plan`/:meth:`on_entry`.
    track_changes:
        When True the index records which shards' candidate sets moved
        (see :meth:`collect_changes`) so a worker can ship per-shard
        candidate deltas back to the pool after each applied plan.
    """

    def __init__(
        self,
        store,
        k: int,
        capacity: Optional[int] = None,
        shard_range: Optional[Tuple[int, int]] = None,
        track_changes: bool = False,
    ) -> None:
        if k < 1:
            raise DimensionError(f"k must be >= 1, got {k}")
        self._store = store
        self.k = int(k)
        self.capacity = (
            int(capacity) if capacity is not None else max(2 * self.k, 16)
        )
        if self.capacity < self.k:
            raise DimensionError(
                f"capacity {self.capacity} must be >= k {self.k}"
            )
        if shard_range is not None:
            lo, hi = int(shard_range[0]), int(shard_range[1])
            if lo < 0 or hi < lo:
                raise DimensionError(
                    f"invalid shard_range ({lo}, {hi})"
                )
            self._range: Optional[Tuple[int, int]] = (lo, hi)
        else:
            self._range = None
        self._track_changes = bool(track_changes)
        self._changed: set = set()
        self._all_changed = False
        #: Monotone counter bumped whenever the candidate state moves —
        #: the cheap "did any ranking possibly change since I last
        #: looked?" signal the front door's top-k subscriptions poll
        #: after each drain.  Read it *before* a query, and again after,
        #: to absorb the bumps the query's own lazy re-scans produce.
        self.revision = 0
        #: None means "everything dirty" (initial state / after a dense
        #: mutation); rebuilt lazily at the next query.
        self._shards: Optional[List[_ShardHeap]] = None
        self.stats = TopKStats()
        store.attach_topk(self)

    # -------------------------------------------------------------- #
    # Shard-range bookkeeping
    # -------------------------------------------------------------- #

    def _bounds(self) -> Tuple[int, int]:
        """The global ``[lo, hi)`` shard-id range this index maintains."""
        if self._range is not None:
            return self._range
        return 0, self._store.num_shards

    @property
    def shard_range(self) -> Optional[Tuple[int, int]]:
        """The fixed global shard slice, or None when tracking all shards."""
        return self._range

    def set_shard_range(self, lo: int, hi: int) -> None:
        """Re-point the owned shard slice (cluster rebalance/growth).

        Heap state is discarded — the next query re-scans lazily, which
        keeps results exact without reasoning about partial overlap.
        """
        if lo < 0 or hi < lo:
            raise DimensionError(f"invalid shard_range ({lo}, {hi})")
        self._range = (int(lo), int(hi))
        self.invalidate_all()

    # -------------------------------------------------------------- #
    # Change tracking (cluster workers ship per-shard deltas)
    # -------------------------------------------------------------- #

    def _mark_changed(self, shard_id: int) -> None:
        self.revision += 1
        if self._track_changes:
            self._changed.add(int(shard_id))

    def collect_changes(self):
        """Drain the per-shard change set since the last collection.

        Returns ``None`` when change tracking is off or nothing moved.
        Otherwise returns either the string ``"all"`` (a dense mutation
        invalidated everything) or a dict mapping each changed global
        shard id to its *full* replacement candidate list
        ``[(a, b, score), ...]``, or to ``None`` when the shard went
        dirty (its candidates are unknown until the next re-scan).
        Shipping the full (capacity-bounded) list per changed shard is
        what lets a pool-side mirror stay bit-identical to the worker
        state without replaying eviction/floor events.
        """
        if not self._track_changes:
            return None
        if self._all_changed or self._shards is None:
            self._all_changed = False
            self._changed.clear()
            return "all"
        if not self._changed:
            return None
        lo, _hi = self._bounds()
        out = {}
        for shard_id in sorted(self._changed):
            state = self._shards[shard_id - lo]
            if state.dirty:
                out[shard_id] = None
            else:
                out[shard_id] = [
                    (a, b, score) for (a, b), score in state.entries.items()
                ]
        self._changed.clear()
        return out

    # -------------------------------------------------------------- #
    # Store notifications (called by ScoreStore on every mutation)
    # -------------------------------------------------------------- #

    def invalidate_all(self) -> None:
        """Dense mutation / node arrival: every shard re-scans lazily."""
        self._shards = None
        self.revision += 1
        self.stats.full_invalidations += 1
        if self._track_changes:
            self._all_changed = True
            self._changed.clear()

    def on_add_node(self) -> None:
        """Node arrival adds a zero column pair to every shard."""
        self.invalidate_all()

    def on_entry(self, row: int, col: int) -> None:
        """One score was overwritten; patch its canonical pair."""
        if self._shards is None or row == col:
            return
        a, b = (row, col) if row < col else (col, row)
        shard_id = a // self._store.shard_rows
        lo, hi = self._bounds()
        if shard_id < lo or shard_id >= hi:
            return
        if shard_id - lo >= len(self._shards):
            self.invalidate_all()
            return
        state = self._shards[shard_id - lo]
        if state.dirty:
            return
        value = self._store.entry(a, b)
        pair = (a, b)
        before = self.stats.patched_entries + self.stats.floor_invalidations
        if pair in state.entries:
            self._update_tracked(state, pair, value)
        else:
            self._insert(state, pair, value)
        if before != self.stats.patched_entries + self.stats.floor_invalidations:
            self._mark_changed(shard_id)

    def on_plan(self, plan) -> None:
        """An :class:`UpdatePlan` was applied; patch its affected pairs.

        The plan touched ``rows_union × cols_union`` and the transpose,
        so the canonical pairs that may have moved are exactly
        ``{(min(i, j), max(i, j)) : i ∈ rows_union, j ∈ cols_union}``.
        Each overlapping, non-dirty shard refreshes its tracked pairs in
        the affected set and promotes untracked affected pairs that now
        beat its floor.
        """
        if self._shards is None:
            return
        rows = plan.rows_union
        cols = plan.cols_union
        if rows.size == 0 or cols.size == 0:
            return
        shard_rows = self._store.shard_rows
        row_set = set(int(i) for i in rows)
        col_set = set(int(j) for j in cols)
        lo, hi = self._bounds()
        first = max(int(min(rows[0], cols[0])) // shard_rows, lo)
        last = min(
            int(max(rows[-1], cols[-1])) // shard_rows,
            hi - 1,
            lo + len(self._shards) - 1,
        )
        for shard_id in range(first, last + 1):
            state = self._shards[shard_id - lo]
            if state.dirty:
                continue
            before = (
                self.stats.patched_entries + self.stats.floor_invalidations
            )
            self._patch_shard(state, shard_id, rows, cols, row_set, col_set)
            after = (
                self.stats.patched_entries + self.stats.floor_invalidations
            )
            if before != after:
                self._mark_changed(shard_id)

    # -------------------------------------------------------------- #
    # Patching internals
    # -------------------------------------------------------------- #

    def _patch_shard(
        self,
        state: _ShardHeap,
        shard_id: int,
        rows: np.ndarray,
        cols: np.ndarray,
        row_set: set,
        col_set: set,
    ) -> None:
        base, block = self._store.shard_block(shard_id)
        # 1) Tracked pairs inside the affected set: refresh from the
        #    (already updated) store.  A pair falling to/under the floor
        #    invalidates the shard — stop, the re-scan covers the rest.
        for pair in list(state.entries):
            a, b = pair
            if (a in row_set and b in col_set) or (
                a in col_set and b in row_set
            ):
                self._update_tracked(state, pair, float(block[a - base, b]))
                if state.dirty:
                    return
        # 2) Untracked affected pairs now above the floor: promote them.
        #    Two passes cover the scatter block and its transpose; pairs
        #    hit by both are deduplicated by the tracked check.
        span = block.shape[0]
        floor_score = -state.floor[0] if state.floor is not None else None
        for a_all, b_all in ((rows, cols), (cols, rows)):
            lo = int(np.searchsorted(a_all, base))
            hi = int(np.searchsorted(a_all, base + span))
            a_part = a_all[lo:hi]
            if a_part.size == 0 or b_all.size == 0:
                continue
            values = block[np.ix_(a_part - base, b_all)]
            mask = b_all[None, :] > a_part[:, None]
            if floor_score is not None:
                mask &= values >= floor_score
            for i, j in zip(*np.nonzero(mask)):
                pair = (int(a_part[i]), int(b_all[j]))
                if pair in state.entries:
                    continue
                self._insert(state, pair, float(values[i, j]))

    def _update_tracked(
        self, state: _ShardHeap, pair: Pair, value: float
    ) -> None:
        if state.entries[pair] == value:
            return
        key = _key(pair[0], pair[1], value)
        if state.floor is not None and key >= state.floor:
            # The pair sank into the discarded region: untracked pairs
            # may now outrank it, so the shard must re-scan.
            state.dirty = True
            self.stats.floor_invalidations += 1
            return
        state.entries[pair] = value
        heapq.heappush(state.heap, (value, -pair[0], -pair[1]))
        self.stats.patched_entries += 1
        self._maybe_compact(state)

    def _insert(self, state: _ShardHeap, pair: Pair, value: float) -> None:
        key = _key(pair[0], pair[1], value)
        if state.floor is not None and key >= state.floor:
            return  # not better than what was already discarded
        state.entries[pair] = value
        heapq.heappush(state.heap, (value, -pair[0], -pair[1]))
        self.stats.patched_entries += 1
        if len(state.entries) > self.capacity:
            self._evict_worst(state)
        self._maybe_compact(state)

    def _evict_worst(self, state: _ShardHeap) -> None:
        while True:
            score, neg_a, neg_b = state.heap[0]
            pair = (-neg_a, -neg_b)
            if state.entries.get(pair) != score:
                heapq.heappop(state.heap)  # stale record
                continue
            heapq.heappop(state.heap)
            del state.entries[pair]
            state.floor = _key(pair[0], pair[1], score)
            return

    def _maybe_compact(self, state: _ShardHeap) -> None:
        if len(state.heap) > 4 * max(len(state.entries), 16):
            state.heap = [
                (score, -a, -b) for (a, b), score in state.entries.items()
            ]
            heapq.heapify(state.heap)

    def _rescan(self, state: _ShardHeap, shard_id: int) -> None:
        base, block = self._store.shard_block(shard_id)
        candidates, truncated = _block_candidates(
            block, base, self.capacity, include_self=False
        )
        state.entries = {(a, b): score for a, b, score in candidates}
        state.heap = [(score, -a, -b) for a, b, score in candidates]
        heapq.heapify(state.heap)
        state.floor = (
            max(_key(a, b, score) for a, b, score in candidates)
            if truncated
            else None
        )
        state.dirty = False
        self.stats.shard_rescans += 1
        self._mark_changed(shard_id)

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #

    def dirty_shards(self) -> int:
        """Shards whose heaps need a re-scan at the next query."""
        lo, hi = self._bounds()
        if self._shards is None:
            return hi - lo
        return sum(1 for state in self._shards if state.dirty)

    def _materialize(self) -> None:
        """Ensure the per-shard heap list matches the owned shard slice."""
        lo, hi = self._bounds()
        if self._shards is None or len(self._shards) != hi - lo:
            self._shards = [_ShardHeap() for _ in range(hi - lo)]

    def rescan_shards(self, shard_ids: Iterable[int]) -> Dict[int, List[ScoredPair]]:
        """Force a re-scan of specific global shards; return their candidates.

        The cluster pool calls this on a worker when its parent-side
        mirror has dirty shards: the reply re-synchronizes the mirror
        with the worker's exact candidate sets.
        """
        self._materialize()
        lo, _hi = self._bounds()
        out: Dict[int, List[ScoredPair]] = {}
        for shard_id in shard_ids:
            state = self._shards[int(shard_id) - lo]
            if state.dirty:
                self._rescan(state, int(shard_id))
            out[int(shard_id)] = [
                (a, b, score) for (a, b), score in state.entries.items()
            ]
        return out

    def top_k(self, k: Optional[int] = None) -> List[ScoredPair]:
        """The global top-``k`` pairs, k-way merged across shard heaps.

        Bit-identical to ``top_k_pairs(store.to_array(), k)`` — same
        scores, same deterministic tie order — without materializing
        ``S``.  Dirty shards are re-scanned first; a query that needed
        no re-scan counts as a heap hit.
        """
        k = self.k if k is None else int(k)
        if k < 0:
            raise DimensionError(f"k must be >= 0, got {k}")
        if k > self.capacity:
            raise DimensionError(
                f"k={k} exceeds the index capacity {self.capacity}; "
                f"build a larger ShardTopK"
            )
        self.stats.queries += 1
        if k == 0:
            self.stats.heap_hits += 1
            return []
        self._materialize()
        lo, _hi = self._bounds()
        self.stats.shard_queries += len(self._shards)
        hit = True
        for offset, state in enumerate(self._shards):
            if state.dirty:
                self._rescan(state, lo + offset)
                hit = False
        if hit:
            self.stats.heap_hits += 1
        candidates = [
            (a, b, score)
            for state in self._shards
            for (a, b), score in state.entries.items()
        ]
        best = heapq.nsmallest(
            k, candidates, key=lambda t: _key(t[0], t[1], t[2])
        )
        return [(a, b, float(score)) for a, b, score in best]

    # -------------------------------------------------------------- #
    # Pickling (shipping heap state across process boundaries)
    # -------------------------------------------------------------- #

    def __getstate__(self) -> dict:
        """Picklable state: everything except the (unpicklable) store.

        The store reference is dropped; the unpickled index is inert
        until :meth:`attach_store` re-binds it to a store holding the
        *same scores* (any store — in-process or a worker's shard view —
        as long as the owned shards' contents match).
        """
        state = dict(self.__dict__)
        state["_store"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def attach_store(self, store) -> "ShardTopK":
        """Re-bind an unpickled index to a live score store."""
        self._store = store
        store.attach_topk(self)
        return self

    def __repr__(self) -> str:
        lo, hi = self._bounds() if self._store is not None else (0, 0)
        return (
            f"ShardTopK(k={self.k}, capacity={self.capacity}, "
            f"dirty={self.dirty_shards() if self._store else '?'}/{hi - lo})"
        )
