"""Executor layer — score storage that applies kernel update plans.

The kernel layer (:mod:`repro.incremental.plan`) turns edge updates into
explicit :class:`~repro.incremental.plan.UpdatePlan` objects; this
package owns the similarity matrix ``S`` and knows how to apply them:

* :mod:`repro.executor.score_store` — :class:`ScoreStore`, ``S`` held in
  independently growable row-block shards with per-shard plan
  application and copy-on-write :class:`ScoreSnapshot` views for the
  serving layer.
* :mod:`repro.executor.topk_index` — :class:`ShardTopK`, shard-local
  incremental top-k candidate heaps patched from each plan's affected
  supports (lazy re-scan only on floor invalidation), plus
  :func:`top_k_from_blocks`, the block-at-a-time merge used by frozen
  snapshots — ``top_k()`` never materializes the dense ``n × n`` matrix.
"""

from .score_store import DEFAULT_SHARD_ROWS, ScoreSnapshot, ScoreStore
from .topk_index import ShardTopK, TopKStats, top_k_from_blocks

__all__ = [
    "ScoreStore",
    "ScoreSnapshot",
    "DEFAULT_SHARD_ROWS",
    "ShardTopK",
    "TopKStats",
    "top_k_from_blocks",
]
