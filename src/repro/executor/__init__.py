"""Executor layer — score storage that applies kernel update plans.

The kernel layer (:mod:`repro.incremental.plan`) turns edge updates into
explicit :class:`~repro.incremental.plan.UpdatePlan` objects; this
package owns the similarity matrix ``S`` and knows how to apply them:

* :mod:`repro.executor.score_store` — :class:`ScoreStore`, ``S`` held in
  independently growable row-block shards with per-shard plan
  application and copy-on-write :class:`ScoreSnapshot` views for the
  serving layer.
"""

from .score_store import DEFAULT_SHARD_ROWS, ScoreSnapshot, ScoreStore

__all__ = ["ScoreStore", "ScoreSnapshot", "DEFAULT_SHARD_ROWS"]
