"""Cluster scaling benchmark: per-update latency vs worker count.

Runs the same fig2a-style mid-evolution citation workload as the perf
gate through ``SimRankService`` once per requested worker count —
``0`` meaning the in-process executor baseline, ``N >= 1`` meaning a
:mod:`repro.cluster` pool with N shard-worker processes — and records
the drain latency curve plus the executor gauges that attribute time to
worker-side application versus IPC (per-worker apply seconds and the
pool's measured round-trip overhead).

Every run is also an equivalence gate: the final score matrix of each
worker count must be **bit-identical** to the in-process baseline
(identical drain boundaries are used, so this is exact, not
approximate), and the benchmark exits non-zero if any run diverges.

Usage::

    python -m repro.bench.cluster --out BENCH_cluster.json
    python -m repro.bench.cluster --nodes 1200 --workers 0,1,2,4
    python -m repro.bench.cluster --merge-into BENCH_pr4.json

``--merge-into`` folds the report into an existing perf-gate JSON under
a ``cluster_scaling`` key, so one committed artifact carries both the
PR-over-PR latency trajectory and the worker-count scaling curve.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..serving import SimRankService
from .perf_gate import _workload


def _drain_chunks(service: SimRankService, updates, chunk: int) -> float:
    """Drain the stream in fixed chunks; return total drain seconds.

    Fixed chunk boundaries make every executor apply the *same*
    sequence of consolidated row groups, which is what makes the
    cross-executor comparison bit-exact.
    """
    total = 0.0
    for begin in range(0, len(updates), chunk):
        service.submit_many(updates[begin : begin + chunk])
        started = time.perf_counter()
        service.drain()
        total += time.perf_counter() - started
    return total


def run_cluster_bench(
    num_nodes: int = 800,
    num_updates: int = 120,
    worker_counts: Optional[List[int]] = None,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    shard_rows: int = 128,
    chunk: int = 10,
    top_k: int = 10,
) -> Dict:
    """Run the scaling curve; returns the JSON-ready report."""
    worker_counts = list(worker_counts) if worker_counts else [0, 1, 2]
    # The in-process run is the bit-equivalence oracle, so it always
    # runs first — even when 0 was not requested (it is then kept out
    # of the reported curve).
    baseline_requested = worker_counts and worker_counts[0] == 0
    run_counts = worker_counts if baseline_requested else [0] + worker_counts
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    report: Dict = {
        "benchmark": "cluster-scaling",
        "workload": {
            "graph": "cith-like citation snapshot (fig2a protocol)",
            "num_nodes": num_nodes,
            "num_edges": graph.num_edges,
            "num_updates": len(updates),
            "drain_chunk": chunk,
            "shard_rows": shard_rows,
            "damping": config.damping,
            "iterations": config.iterations,
            "seed": seed,
        },
        "curve": [],
        "bit_identical": True,
    }
    baseline_matrix: Optional[np.ndarray] = None
    baseline_seconds: Optional[float] = None
    for workers in run_counts:
        kwargs = (
            {"executor": "process", "workers": workers} if workers else {}
        )
        service = SimRankService(
            graph.copy(),
            config,
            initial_scores=initial,
            shard_rows=shard_rows,
            **kwargs,
        )
        try:
            drain_seconds = _drain_chunks(service, updates, chunk)
            topk_started = time.perf_counter()
            service.top_k(top_k)
            topk_seconds = time.perf_counter() - topk_started
            final = service.engine.similarities()
            executor = service.metrics_report()["executor"]
        finally:
            service.close()
        if baseline_matrix is None:
            baseline_matrix = final
            baseline_seconds = drain_seconds
        identical = bool(np.array_equal(final, baseline_matrix))
        report["bit_identical"] = report["bit_identical"] and identical
        point = {
            "workers": workers,
            "executor": "process" if workers else "inproc",
            "drain_seconds": drain_seconds,
            "mean_update_ms": drain_seconds / len(updates) * 1e3,
            "speedup_vs_inproc": (
                baseline_seconds / drain_seconds if drain_seconds else 0.0
            ),
            "topk_query_seconds": topk_seconds,
            "bit_identical_to_inproc": identical,
            "apply_seconds": executor.get("apply_seconds", 0.0),
            "ipc_seconds": executor.get("ipc_seconds", 0.0),
            "per_worker_seconds": executor.get("per_worker_seconds", {}),
            "crashes": executor.get("crashes", 0),
        }
        if workers == 0 and not baseline_requested:
            point["baseline_only"] = True
        else:
            report["curve"].append(point)
        print(
            f"workers={workers}: {point['mean_update_ms']:.2f} ms/update "
            f"({point['speedup_vs_inproc']:.2f}x vs inproc, "
            f"ipc {point['ipc_seconds'] * 1e3:.0f} ms, "
            f"identical={identical})",
            file=sys.stderr,
        )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cluster",
        description="Per-update latency vs shard-worker count "
        "(bit-identical equivalence enforced).",
    )
    parser.add_argument("--nodes", type=int, default=800)
    parser.add_argument("--updates", type=int, default=120)
    parser.add_argument(
        "--workers",
        default="0,1,2",
        help="comma-separated worker counts (0 = in-process baseline)",
    )
    parser.add_argument("--shard-rows", type=int, default=128)
    parser.add_argument("--chunk", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--merge-into",
        default=None,
        help="existing JSON report to fold this run into "
        "(under the 'cluster_scaling' key)",
    )
    args = parser.parse_args(argv)

    worker_counts = [int(part) for part in str(args.workers).split(",")]
    report = run_cluster_bench(
        num_nodes=args.nodes,
        num_updates=args.updates,
        worker_counts=worker_counts,
        seed=args.seed,
        shard_rows=args.shard_rows,
        chunk=args.chunk,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.merge_into:
        merged = {}
        if os.path.exists(args.merge_into):
            with open(args.merge_into, "r", encoding="utf-8") as handle:
                merged = json.load(handle)
        merged["cluster_scaling"] = report
        with open(args.merge_into, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"merged cluster_scaling into {args.merge_into}", file=sys.stderr)
    if not report["bit_identical"]:
        print(
            "CLUSTER GATE FAIL: process executor diverged from the "
            "in-process baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
