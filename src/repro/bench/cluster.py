"""Cluster scaling benchmark: per-update latency vs worker count.

Runs the same fig2a-style mid-evolution citation workload as the perf
gate through ``SimRankService`` once per requested worker count —
``0`` meaning the in-process executor baseline, ``N >= 1`` meaning a
:mod:`repro.cluster` pool with N shard-worker processes — and records
the drain latency curve plus the executor gauges that attribute time to
worker-side application versus IPC (per-worker apply seconds and the
pool's measured round-trip overhead).

The ``--batch`` axis compares the two wire paths on the pool: the
batched drain (default on; one staged, pipelined command per drain) and
the per-plan path (one round trip per row group).  ``--batch both``
records both curves in the same report so the IPC amortization is a
single committed artifact.

The ``--supervision`` axis measures the cost of the robustness layer
(adaptive reply deadlines, per-section payload checksums, worker health
tracking): ``--supervision both`` runs every pool configuration twice
and records the supervised/unsupervised drain-latency ratio, which
``--max-supervision-ratio`` can turn into a hard gate.

Every run is also an equivalence gate: the final score matrix of every
worker count **and both wire paths** must be bit-identical to the
in-process baseline (identical drain boundaries are used, so this is
exact, not approximate), and the benchmark exits non-zero if any run
diverges.

Usage::

    python -m repro.bench.cluster --out BENCH_cluster.json
    python -m repro.bench.cluster --nodes 1200 --workers 0,1,2,4
    python -m repro.bench.cluster --batch both --merge-into BENCH_pr5.json

``--merge-into`` folds the report into an existing perf-gate JSON under
a ``cluster_scaling`` key, so one committed artifact carries both the
PR-over-PR latency trajectory and the worker-count scaling curve.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..serving import SimRankService
from .perf_gate import _workload


def _drain_chunks(service: SimRankService, updates, chunk: int) -> float:
    """Drain the stream in fixed chunks; return total drain seconds.

    Fixed chunk boundaries make every executor apply the *same*
    sequence of consolidated row groups, which is what makes the
    cross-executor comparison bit-exact.  The batched wire path
    pipelines dispatch, so ``drain()`` can return with up to
    ``max_inflight_batches`` batches still applying in the workers —
    the final settle below keeps that tail inside the timed region
    instead of leaking it into the top-k query timing.
    """
    total = 0.0
    for begin in range(0, len(updates), chunk):
        service.submit_many(updates[begin : begin + chunk])
        started = time.perf_counter()
        service.drain()
        total += time.perf_counter() - started
    pool = getattr(service.engine.score_store, "pool", None)
    if pool is not None:
        started = time.perf_counter()
        pool.sync_batches()
        total += time.perf_counter() - started
    return total


def run_cluster_bench(
    num_nodes: int = 800,
    num_updates: int = 120,
    worker_counts: Optional[List[int]] = None,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    shard_rows: int = 128,
    chunk: int = 10,
    top_k: int = 10,
    batch: str = "both",
    supervision: str = "on",
    repeats: int = 1,
    precision: str = "float64",
) -> Dict:
    """Run the scaling curve; returns the JSON-ready report.

    ``batch`` selects the pool's wire path(s): ``"on"`` (batched
    drains), ``"off"`` (one round trip per plan), or ``"both"`` to
    record the two curves side by side.  The in-process baseline is
    unaffected (batching is a wire concern; the engine path is
    identical).

    ``supervision`` controls the pool's worker supervision (adaptive
    deadlines, payload checksums, health tracking): ``"on"``
    (default), ``"off"``, or ``"both"`` to measure the supervision
    overhead — the report then carries a ``supervision`` block with
    the supervised/unsupervised drain-latency ratio.

    ``repeats`` runs every point that many times and keeps the run
    with the minimum drain time.  Scheduling noise on a busy box is
    one-sided (contention only ever adds latency), so min-of-N makes
    tight ratio gates like ``--max-supervision-ratio`` stable where a
    single shot is a coin flip.

    ``precision`` sets the score-store storage dtype for *every* run
    in the curve, including the in-process oracle — scatter-time
    casting is identical across executors, so the bit-equivalence gate
    stays exact per dtype (a float32 pool run must equal the float32
    in-process run bit for bit).
    """
    worker_counts = list(worker_counts) if worker_counts else [0, 1, 2]
    if batch not in ("both", "on", "off"):
        raise ValueError(f"--batch must be both/on/off, got {batch!r}")
    if supervision not in ("both", "on", "off"):
        raise ValueError(
            f"--supervision must be both/on/off, got {supervision!r}"
        )
    # The in-process run is the bit-equivalence oracle, so it always
    # runs first — even when 0 was not requested (it is then kept out
    # of the reported curve).
    baseline_requested = worker_counts and worker_counts[0] == 0
    run_counts = worker_counts if baseline_requested else [0] + worker_counts
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    report: Dict = {
        "benchmark": "cluster-scaling",
        "workload": {
            "graph": "cith-like citation snapshot (fig2a protocol)",
            "num_nodes": num_nodes,
            "num_edges": graph.num_edges,
            "num_updates": len(updates),
            "drain_chunk": chunk,
            "shard_rows": shard_rows,
            "damping": config.damping,
            "iterations": config.iterations,
            "seed": seed,
            "batch_axis": batch,
            "supervision_axis": supervision,
            "precision": precision,
        },
        "curve": [],
        "bit_identical": True,
    }
    baseline_matrix: Optional[np.ndarray] = None
    baseline_seconds: Optional[float] = None
    for workers in run_counts:
        if workers == 0:
            modes = [True]
        elif batch == "both":
            modes = [True, False]
        else:
            modes = [batch == "on"]
        if workers == 0:
            sup_modes = [True]
        elif supervision == "both":
            sup_modes = [True, False]
        else:
            sup_modes = [supervision == "on"]
        combos = [(b, s) for b in modes for s in sup_modes]
        # Repeats interleave the combos (A, B, A, B, ...) rather than
        # running each combo's repeats back to back: box-load drift is
        # time-correlated, so adjacent runs keep ratio comparisons
        # (supervised vs unsupervised) honest where consecutive blocks
        # would bias whole configurations.
        best: Dict = {combo: None for combo in combos}
        for _ in range(max(1, repeats)):
            for combo in combos:
                batching, supervised = combo
                kwargs = (
                    {
                        "executor": "process",
                        "workers": workers,
                        "plan_batching": batching,
                        "executor_options": {"supervise": supervised},
                    }
                    if workers
                    else {}
                )
                service = SimRankService(
                    graph.copy(),
                    config,
                    initial_scores=initial,
                    shard_rows=shard_rows,
                    precision=precision,
                    **kwargs,
                )
                try:
                    run_seconds = _drain_chunks(service, updates, chunk)
                    topk_started = time.perf_counter()
                    service.top_k(top_k)
                    run_topk = time.perf_counter() - topk_started
                    run_final = service.engine.similarities()
                    run_executor = service.metrics_report()["executor"]
                    run_store_bytes = service.engine.score_store.nbytes()
                finally:
                    service.close()
                if best[combo] is None or run_seconds < best[combo][0]:
                    best[combo] = (
                        run_seconds, run_topk, run_final, run_executor,
                        run_store_bytes,
                    )
        for batching, supervised in combos:
            drain_seconds, topk_seconds, final, executor, store_bytes = best[
                (batching, supervised)
            ]
            if baseline_matrix is None:
                baseline_matrix = final
                baseline_seconds = drain_seconds
            identical = bool(np.array_equal(final, baseline_matrix))
            report["bit_identical"] = report["bit_identical"] and identical
            point = {
                "workers": workers,
                "executor": "process" if workers else "inproc",
                "plan_batching": bool(batching) if workers else None,
                "supervised": bool(supervised) if workers else None,
                "drain_seconds": drain_seconds,
                "mean_update_ms": drain_seconds / len(updates) * 1e3,
                "speedup_vs_inproc": (
                    baseline_seconds / drain_seconds if drain_seconds else 0.0
                ),
                "topk_query_seconds": topk_seconds,
                "bit_identical_to_inproc": identical,
                "apply_seconds": executor.get("apply_seconds", 0.0),
                "ipc_seconds": executor.get("ipc_seconds", 0.0),
                "ipc_per_plan_ms": executor.get("ipc_per_plan_ms", 0.0),
                "ipc_bytes": executor.get("ipc_bytes", 0),
                "staged_bytes": executor.get("staged_bytes", 0),
                "score_dtype": executor.get(
                    "score_dtype", final.dtype.name
                ),
                "score_store_bytes": store_bytes,
                "wire_bytes_per_update": (
                    executor.get("ipc_bytes", 0) / len(updates)
                ),
                "plan_batches": executor.get("plan_batches", 0),
                "batch_size": executor.get("batch_size", 0.0),
                "per_worker_seconds": executor.get("per_worker_seconds", {}),
                "crashes": executor.get("crashes", 0),
            }
            if workers == 0 and not baseline_requested:
                point["baseline_only"] = True
            else:
                report["curve"].append(point)
            wire = (
                "batched" if batching else "per-plan"
            ) if workers else "inproc"
            guard = "" if not workers else (
                ", supervised" if supervised else ", unsupervised"
            )
            print(
                f"workers={workers} ({wire}{guard}): "
                f"{point['mean_update_ms']:.2f} ms/update "
                f"({point['speedup_vs_inproc']:.2f}x vs inproc, "
                f"ipc {point['ipc_seconds'] * 1e3:.0f} ms, "
                f"identical={identical})",
                file=sys.stderr,
            )
    supervised_points = [
        p for p in report["curve"] if p.get("supervised") is True
    ]
    unsupervised_points = [
        p for p in report["curve"] if p.get("supervised") is False
    ]
    if supervised_points and unsupervised_points:
        supervised_seconds = sum(
            p["drain_seconds"] for p in supervised_points
        )
        unsupervised_seconds = sum(
            p["drain_seconds"] for p in unsupervised_points
        )
        report["supervision"] = {
            "supervised_drain_seconds": supervised_seconds,
            "unsupervised_drain_seconds": unsupervised_seconds,
            "overhead_ratio": (
                supervised_seconds / unsupervised_seconds
                if unsupervised_seconds
                else 0.0
            ),
        }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cluster",
        description="Per-update latency vs shard-worker count "
        "(bit-identical equivalence enforced).",
    )
    parser.add_argument("--nodes", type=int, default=800)
    parser.add_argument("--updates", type=int, default=120)
    parser.add_argument(
        "--workers",
        default="0,1,2",
        help="comma-separated worker counts (0 = in-process baseline)",
    )
    parser.add_argument("--shard-rows", type=int, default=128)
    parser.add_argument("--chunk", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--batch",
        choices=("both", "on", "off"),
        default="both",
        help="wire path on the pool: batched drains, per-plan round "
        "trips, or both curves in one report (default)",
    )
    parser.add_argument(
        "--supervision",
        choices=("both", "on", "off"),
        default="on",
        help="worker supervision (adaptive deadlines, checksums): "
        "'both' measures the supervised/unsupervised overhead ratio",
    )
    parser.add_argument(
        "--max-supervision-ratio",
        type=float,
        default=None,
        help="fail if supervised drains are more than this ratio of "
        "unsupervised (requires --supervision both)",
    )
    parser.add_argument(
        "--precision",
        choices=("float64", "float32"),
        default="float64",
        help="score-store storage dtype for every run in the curve; "
        "the bit-equivalence gate compares executors at the same dtype",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="run each point N times and keep the fastest drain "
        "(min-of-N; stabilizes tight ratio gates on noisy boxes)",
    )
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--merge-into",
        default=None,
        help="existing JSON report to fold this run into "
        "(under the 'cluster_scaling' key)",
    )
    args = parser.parse_args(argv)

    worker_counts = [int(part) for part in str(args.workers).split(",")]
    report = run_cluster_bench(
        num_nodes=args.nodes,
        num_updates=args.updates,
        worker_counts=worker_counts,
        seed=args.seed,
        shard_rows=args.shard_rows,
        chunk=args.chunk,
        batch=args.batch,
        supervision=args.supervision,
        repeats=args.repeats,
        precision=args.precision,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.merge_into:
        merged = {}
        if os.path.exists(args.merge_into):
            with open(args.merge_into, "r", encoding="utf-8") as handle:
                merged = json.load(handle)
        merged["cluster_scaling"] = report
        with open(args.merge_into, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"merged cluster_scaling into {args.merge_into}", file=sys.stderr)
    if not report["bit_identical"]:
        print(
            "CLUSTER GATE FAIL: process executor diverged from the "
            "in-process baseline",
            file=sys.stderr,
        )
        return 1
    if args.max_supervision_ratio is not None:
        ratio = report.get("supervision", {}).get("overhead_ratio")
        if ratio is None:
            print(
                "CLUSTER GATE FAIL: --max-supervision-ratio needs "
                "--supervision both",
                file=sys.stderr,
            )
            return 1
        if ratio > args.max_supervision_ratio:
            print(
                f"CLUSTER GATE FAIL: supervision overhead {ratio:.3f}x "
                f"exceeds {args.max_supervision_ratio}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
