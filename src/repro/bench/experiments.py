"""One function per paper artifact: the per-figure experiment harness.

Each ``fig*`` function builds its workload from :mod:`repro.datasets`,
runs the algorithms, and returns a :class:`~repro.bench.harness.Table`
whose rows mirror the series the paper plots.  ``scale`` selects
``"tiny"`` (seconds; used by tests and pytest-benchmark) or ``"bench"``
(the EXPERIMENTS.md numbers).

See DESIGN.md §3 for the experiment index and §4 for workload
substitutions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..config import SimRankConfig
from ..datasets.example import (
    TABLE_PAIRS,
    example_graph,
    example_update,
    label_to_index,
)
from ..datasets.registry import get_dataset
from ..exceptions import ConfigError
from ..graph.digraph import DynamicDiGraph
from ..graph.generators import linkage_model_digraph, random_deletions, random_insertions
from ..graph.transition import backward_transition_matrix
from ..graph.updates import UpdateBatch
from ..incremental.engine import DynamicSimRank
from ..incremental.inc_svd import IncSVDSimRank
from ..linalg.svd_tools import lossless_rank, truncated_svd
from ..metrics.memory import (
    format_bytes,
    inc_sr_intermediate_bytes,
    inc_svd_intermediate_bytes,
    inc_usr_intermediate_bytes,
)
from ..metrics.ndcg import ndcg_at_k
from ..simrank.matrix import matrix_simrank
from .harness import Table, timed

_TINY = "tiny"
_BENCH = "bench"


def _dataset_names(scale: str) -> List[str]:
    suffix = "-tiny" if scale == _TINY else ""
    return [f"dblp{suffix}", f"cith{suffix}", f"youtu{suffix}"]


def _check_scale(scale: str) -> None:
    if scale not in (_TINY, _BENCH):
        raise ConfigError(f"scale must be 'tiny' or 'bench', got {scale!r}")


def _snapshot_workload(
    name: str, delta_edges: int, seed: int = 11
) -> Tuple[DynamicDiGraph, UpdateBatch, SimRankConfig]:
    """A mid-evolution snapshot plus the next ``delta_edges`` arrivals.

    Mirrors the paper's protocol: fix |V|, take the snapshot at time
    ``t``, and use the edge difference towards time ``t+1`` (truncated to
    ``delta_edges`` unit updates) as the update stream.
    """
    spec = get_dataset(name)
    timestamped = spec.build()
    times = timestamped.timestamps()
    middle = times[len(times) // 2]
    base = timestamped.snapshot_at(middle)
    later = times[min(len(times) - 1, len(times) // 2 + 1)]
    delta = timestamped.delta_between(middle, later)
    updates = list(delta)[:delta_edges]
    if len(updates) < delta_edges:
        extra = random_insertions(
            UpdateBatch(updates).applied(base),
            delta_edges - len(updates),
            seed=seed,
        )
        updates.extend(extra)
    return base, UpdateBatch(updates), spec.config


def _run_incremental(
    base: DynamicDiGraph,
    batch: UpdateBatch,
    config: SimRankConfig,
    algorithm: str,
    initial_scores: np.ndarray,
) -> Tuple[DynamicSimRank, float]:
    engine = DynamicSimRank(
        base, config, algorithm=algorithm, initial_scores=initial_scores
    )
    _, seconds = timed(lambda: engine.apply(batch))
    return engine, seconds


def _run_inc_svd(
    base: DynamicDiGraph,
    batch: UpdateBatch,
    config: SimRankConfig,
    rank: int,
) -> Tuple[IncSVDSimRank, float]:
    """Time Inc-SVD charging it for a full re-scoring after every unit
    update — the paper's protocol: each link update must yield all-pairs
    similarities (Inc-SVD has no cheaper per-pair path)."""
    session = IncSVDSimRank(base, rank=rank, config=config)

    def run() -> None:
        for update in batch:
            session.apply(update)
            session.scores()

    _, seconds = timed(run)
    return session, seconds


# ---------------------------------------------------------------------- #
# Fig. 1 — the motivating-example table
# ---------------------------------------------------------------------- #


def fig1(scale: str = _TINY) -> Table:
    """Fig. 1 table: old scores, true new scores, Inc-SVD vs Inc-SR.

    Scale is ignored (the example graph is fixed at 15 nodes); kept for
    interface uniformity.
    """
    _check_scale(scale)
    # C = 0.8 as in the paper's example; K = 40 so the truncated series
    # agrees with the exact fixed point to ~1e-4 in every displayed digit.
    config = SimRankConfig(damping=0.8, iterations=40)
    graph = example_graph()
    update = example_update()
    mapping = label_to_index()

    old_scores = matrix_simrank(graph, config)
    new_graph = graph.copy()
    update.apply_to(new_graph)
    true_scores = matrix_simrank(new_graph, config)

    engine = DynamicSimRank(
        graph, config, algorithm="inc-sr", initial_scores=old_scores
    )
    engine.apply(update)
    inc_sr_scores = engine.similarities()

    rank = lossless_rank(backward_transition_matrix(graph))
    svd_session = IncSVDSimRank(graph, rank=rank, config=config)
    svd_session.apply(update)
    inc_svd_scores = svd_session.scores()

    table = Table(
        title="Fig. 1 — incremental SimRank as edge (i, j) is inserted "
        f"(C={config.damping}, K={config.iterations}, lossless r={rank})",
        headers=["pair", "sim (old G)", "sim_true", "sim_IncSR", "sim_IncSVD"],
    )
    for label_a, label_b in TABLE_PAIRS:
        a, b = mapping[label_a], mapping[label_b]
        table.add_row(
            f"({label_a}, {label_b})",
            float(old_scores[a, b]),
            float(true_scores[a, b]),
            float(inc_sr_scores[a, b]),
            float(inc_svd_scores[a, b]),
        )
    table.add_note(
        "Inc-SR reproduces sim_true exactly; Inc-SVD deviates even with a "
        "lossless SVD because rank(Q) < n (Sec. IV)."
    )
    table.add_note(
        "The 15-node graph is a reconstruction; see repro.datasets.example."
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 2a — time efficiency on real-like data
# ---------------------------------------------------------------------- #


def fig2a(scale: str = _TINY) -> Table:
    """Fig. 2a: wall-clock per algorithm as |ΔE| grows, on 3 datasets."""
    _check_scale(scale)
    delta_sizes = [4, 8, 16] if scale == _TINY else [16, 32, 64]
    svd_rank = 5
    table = Table(
        title="Fig. 2a — incremental vs batch wall-clock (seconds)",
        headers=[
            "dataset",
            "|dE|",
            "Inc-SR",
            "Inc-uSR",
            "Inc-SVD(r=5)",
            "Batch",
        ],
    )
    for name in _dataset_names(scale):
        for delta_edges in delta_sizes:
            base, batch, config = _snapshot_workload(name, delta_edges)
            initial = matrix_simrank(base, config)
            _, sr_seconds = _run_incremental(base, batch, config, "inc-sr", initial)
            _, usr_seconds = _run_incremental(base, batch, config, "inc-usr", initial)
            _, svd_seconds = _run_inc_svd(base, batch, config, rank=svd_rank)
            final_graph = batch.applied(base)
            _, batch_seconds = timed(lambda g=final_graph, c=config: matrix_simrank(g, c))
            table.add_row(
                name,
                delta_edges,
                sr_seconds,
                usr_seconds,
                svd_seconds,
                batch_seconds,
            )
    table.add_note(
        "Every incremental method is charged for fresh all-pairs scores "
        "after each unit update; Batch = one full matrix-form "
        "recomputation on the final graph (BLAS-backed; see "
        "EXPERIMENTS.md for the comparison caveat)."
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 2b — % of lossless SVD rank of the auxiliary matrix
# ---------------------------------------------------------------------- #


def fig2b(scale: str = _TINY) -> Table:
    """Fig. 2b: rank(C̄)/n for growing |ΔE| on DBLP/CITH-like graphs."""
    _check_scale(scale)
    fractions = [0.05, 0.10, 0.20]
    table = Table(
        title="Fig. 2b — lossless SVD rank of the auxiliary matrix "
        "C̄ = Σ + Uᵀ·ΔQ·V, as % of n",
        headers=["dataset", "|dE| (% of |E|)", "rank(C̄)", "n", "% of n"],
    )
    names = _dataset_names(scale)[:2]  # paper: DBLP and CITH only
    for name in names:
        spec = get_dataset(name)
        timestamped = spec.build()
        times = timestamped.timestamps()
        base = timestamped.snapshot_at(times[len(times) // 2])
        q_old = backward_transition_matrix(base)
        rank_q = lossless_rank(q_old)
        factors = truncated_svd(q_old, rank_q)
        for fraction in fractions:
            delta_edges = max(1, int(fraction * base.num_edges))
            batch = random_insertions(base, delta_edges, seed=23)
            new_graph = batch.applied(base)
            q_new = backward_transition_matrix(new_graph)
            delta_q = (q_new - q_old).toarray()
            c_aux = np.diag(factors.sigma) + factors.u.T @ delta_q @ factors.v
            rank_c = lossless_rank(c_aux)
            n = base.num_nodes
            table.add_row(
                name,
                f"{int(fraction * 100)}%",
                rank_c,
                n,
                100.0 * rank_c / n,
            )
    table.add_note(
        "The paper reports ~95% (DBLP) and ~80% (CITH): r is not "
        "negligibly smaller than n, so Inc-SVD's O(r^4 n^2) is costly."
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 2c — synthetic insertion/deletion sweeps
# ---------------------------------------------------------------------- #


def fig2c(scale: str = _TINY) -> Table:
    """Fig. 2c: times on linkage-model synthetic graphs, ± edges."""
    _check_scale(scale)
    num_nodes = 150 if scale == _TINY else 400
    out_degree = 4
    delta_sizes = [4, 8] if scale == _TINY else [15, 30, 45]
    graph = linkage_model_digraph(num_nodes, out_degree, seed=31)
    config = SimRankConfig(damping=0.6, iterations=15)
    initial = matrix_simrank(graph, config)
    table = Table(
        title="Fig. 2c — synthetic (linkage model) insertion/deletion "
        "wall-clock (seconds)",
        headers=["direction", "|dE|", "Inc-SR", "Inc-uSR", "Inc-SVD(r=5)", "Batch"],
    )
    for direction in ("insert", "delete"):
        for delta_edges in delta_sizes:
            if direction == "insert":
                batch = random_insertions(graph, delta_edges, seed=37)
            else:
                batch = random_deletions(graph, delta_edges, seed=41)
            _, sr_seconds = _run_incremental(graph, batch, config, "inc-sr", initial)
            _, usr_seconds = _run_incremental(graph, batch, config, "inc-usr", initial)
            _, svd_seconds = _run_inc_svd(graph, batch, config, rank=5)
            final_graph = batch.applied(graph)
            _, batch_seconds = timed(lambda g=final_graph: matrix_simrank(g, config))
            table.add_row(
                direction,
                delta_edges,
                sr_seconds,
                usr_seconds,
                svd_seconds,
                batch_seconds,
            )
    return table


# ---------------------------------------------------------------------- #
# Fig. 2d — effect of pruning
# ---------------------------------------------------------------------- #


def fig2d(scale: str = _TINY) -> Table:
    """Fig. 2d: Inc-SR vs Inc-uSR time and % of pruned node-pairs."""
    _check_scale(scale)
    delta_edges = 6 if scale == _TINY else 24
    table = Table(
        title="Fig. 2d — effect of pruning (Inc-SR vs Inc-uSR)",
        headers=["dataset", "Inc-SR (s)", "Inc-uSR (s)", "speedup", "% pruned pairs"],
    )
    for name in _dataset_names(scale):
        base, batch, config = _snapshot_workload(name, delta_edges)
        initial = matrix_simrank(base, config)
        sr_engine, sr_seconds = _run_incremental(
            base, batch, config, "inc-sr", initial
        )
        _, usr_seconds = _run_incremental(base, batch, config, "inc-usr", initial)
        affected = sr_engine.aggregate_affected()
        pruned = 100.0 * affected.pruned_fraction() if affected else float("nan")
        table.add_row(
            name,
            sr_seconds,
            usr_seconds,
            usr_seconds / sr_seconds if sr_seconds > 0 else float("inf"),
            pruned,
        )
    table.add_note(
        "The paper prunes 76.3% (DBLP), 82.1% (CITH), 79.4% (YOUTU) of "
        "node-pairs with ~0.5 order-of-magnitude speedups."
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 2e — % of affected areas vs |ΔE|
# ---------------------------------------------------------------------- #


def fig2e(scale: str = _TINY) -> Table:
    """Fig. 2e: |AFF|/n² for growing update sizes, per dataset."""
    _check_scale(scale)
    delta_sizes = [3, 6, 9] if scale == _TINY else [12, 24, 36]
    table = Table(
        title="Fig. 2e — % of affected areas |AFF|/n² w.r.t. |dE|",
        headers=["dataset", "|dE|", "% affected"],
    )
    for name in _dataset_names(scale):
        for delta_edges in delta_sizes:
            base, batch, config = _snapshot_workload(name, delta_edges)
            initial = matrix_simrank(base, config)
            engine, _ = _run_incremental(base, batch, config, "inc-sr", initial)
            affected = engine.aggregate_affected()
            table.add_row(
                name,
                delta_edges,
                100.0 * affected.affected_fraction() if affected else float("nan"),
            )
    table.add_note(
        "Paper: ~19-28% affected at |dE|=6K..18K, growing mildly with |dE|."
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 3 — memory space
# ---------------------------------------------------------------------- #


def fig3(scale: str = _TINY) -> Table:
    """Fig. 3: intermediate memory of Inc-SR / Inc-uSR / Inc-SVD(r)."""
    _check_scale(scale)
    delta_edges = 4 if scale == _TINY else 16
    ranks = (5, 15, 25)
    table = Table(
        title="Fig. 3 — intermediate memory space",
        headers=["dataset", "Inc-SR", "Inc-uSR"]
        + [f"Inc-SVD(r={r})" for r in ranks],
    )
    for name in _dataset_names(scale):
        base, batch, config = _snapshot_workload(name, delta_edges)
        initial = matrix_simrank(base, config)
        engine, _ = _run_incremental(base, batch, config, "inc-sr", initial)
        affected = engine.aggregate_affected()
        n, m = base.num_nodes, base.num_edges
        avg_area = affected.average_area() if affected else 0.0
        avg_rows = (
            float(np.mean(affected.row_sizes)) if affected and affected.row_sizes else 0.0
        )
        sr_bytes = inc_sr_intermediate_bytes(
            n, m, config.iterations, avg_area, avg_rows
        )
        usr_bytes = inc_usr_intermediate_bytes(n, m, config.iterations)
        svd_bytes = [inc_svd_intermediate_bytes(n, r) for r in ranks]
        table.add_row(
            name,
            format_bytes(sr_bytes),
            format_bytes(usr_bytes),
            *[format_bytes(b) for b in svd_bytes],
        )
    table.add_note(
        "Analytic working-set sizes of this implementation's structures; "
        "the n² score output is excluded, as in the paper."
    )
    return table


# ---------------------------------------------------------------------- #
# Fig. 4 — NDCG30 exactness
# ---------------------------------------------------------------------- #


def fig4(scale: str = _TINY) -> Table:
    """Fig. 4: NDCG₃₀ of each algorithm against a K=35 Batch oracle."""
    _check_scale(scale)
    delta_edges = 5 if scale == _TINY else 20
    iteration_grid = (5, 15)
    rank_grid = (5, 15)
    table = Table(
        title="Fig. 4 — NDCG30 exactness vs K=35 Batch baseline",
        headers=["dataset"]
        + [f"Inc-SR(K={k})" for k in iteration_grid]
        + [f"Inc-uSR(K={k})" for k in iteration_grid]
        + [f"Inc-SVD(r={r})" for r in rank_grid],
    )
    for name in _dataset_names(scale):
        base, batch, config = _snapshot_workload(name, delta_edges)
        final_graph = batch.applied(base)
        oracle = matrix_simrank(final_graph, config.with_iterations(35))
        row: List[object] = [name]
        for algorithm in ("inc-sr", "inc-usr"):
            for k in iteration_grid:
                run_config = config.with_iterations(k)
                initial = matrix_simrank(base, run_config)
                engine, _ = _run_incremental(
                    base, batch, run_config, algorithm, initial
                )
                row.append(ndcg_at_k(engine.similarities(), oracle, k=30))
        for rank in rank_grid:
            session = IncSVDSimRank(base, rank=rank, config=config)
            session.apply_batch(batch)
            row.append(ndcg_at_k(session.scores(), oracle, k=30))
        table.add_row(*row)
    table.add_note(
        "Paper: Inc-SR/Inc-uSR reach NDCG30 = 1 by K=10-15 and agree at "
        "every K (lossless pruning); Inc-SVD stays well below 1."
    )
    return table


def _ablation(name: str) -> Callable[[str], Table]:
    from . import ablations

    return getattr(ablations, name)


EXPERIMENTS: Dict[str, Callable[[str], Table]] = {
    "fig1": fig1,
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig2c": fig2c,
    "fig2d": fig2d,
    "fig2e": fig2e,
    "fig3": fig3,
    "fig4": fig4,
    "abl-tolerance": lambda scale="tiny": _ablation("ablation_tolerance")(scale),
    "abl-order": lambda scale="tiny": _ablation("ablation_update_order")(scale),
    "abl-iterations": lambda scale="tiny": _ablation("ablation_iterations")(scale),
    "abl-consolidation": lambda scale="tiny": _ablation("ablation_consolidation")(scale),
}


def run_experiment(name: str, scale: str = _TINY) -> Table:
    """Run one experiment by id (``fig1`` … ``fig4``)."""
    try:
        function = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigError(f"unknown experiment {name!r}; known: {known}") from None
    return function(scale)
