"""Ablation studies for the design choices called out in DESIGN.md §5.

Not figures of the paper, but the knobs a downstream adopter will ask
about:

* :func:`ablation_tolerance` — Inc-SR's support threshold: ``0.0`` is
  the paper's lossless setting; raising it trades exactness for smaller
  affected areas.  Quantifies that trade-off (time, |AFF|, max error).
* :func:`ablation_update_order` — whether the final similarity matrix
  depends on how a mixed insert/delete batch is ordered (it must not,
  beyond iteration-truncation noise).
* :func:`ablation_iterations` — accuracy/cost of the shared knob ``K``
  against the exact fixed point.
"""

from __future__ import annotations

import numpy as np

from ..config import SimRankConfig
from ..graph.generators import (
    linkage_model_digraph,
    random_deletions,
    random_insertions,
)
from ..graph.updates import UpdateBatch
from ..incremental.inc_sr import inc_sr_update
from ..incremental.engine import DynamicSimRank
from ..incremental.workspace import UpdateWorkspace
from ..linalg.qstore import TransitionStore
from ..metrics.error import max_abs_error
from ..simrank.exact import exact_simrank
from ..simrank.matrix import matrix_simrank
from .harness import Table, timed


def _workload(num_nodes: int = 120, updates: int = 10):
    graph = linkage_model_digraph(num_nodes, 3, seed=71)
    config = SimRankConfig(damping=0.6, iterations=15)
    batch = UpdateBatch(
        list(random_deletions(graph, updates // 2, seed=72))
        + list(random_insertions(graph, updates - updates // 2, seed=73))
    )
    return graph, config, batch


def ablation_tolerance(scale: str = "tiny") -> Table:
    """Sweep the Inc-SR support tolerance; report speed vs exactness."""
    num_nodes = 120 if scale == "tiny" else 400
    graph, config, batch = _workload(num_nodes=num_nodes)
    initial = matrix_simrank(graph, config)
    table = Table(
        title="Ablation — Inc-SR support tolerance (0.0 = lossless, paper setting)",
        headers=["tolerance", "seconds", "avg |AFF| (% of n^2)", "max error vs lossless"],
    )
    baseline = None
    for tolerance in (0.0, 1e-10, 1e-6, 1e-4, 1e-3):
        # Same hot path as the engine: a live store plus pooled scratch,
        # maintained with row-granular surgery between updates.
        store = TransitionStore.from_graph(graph)
        workspace = UpdateWorkspace(graph.num_nodes)
        scores = initial.copy()
        live = graph.copy()
        areas = []

        def run():
            nonlocal scores
            for update in batch:
                result = inc_sr_update(
                    live,
                    store,
                    scores,
                    update,
                    config,
                    tolerance=tolerance,
                    workspace=workspace,
                )
                scores = result.new_s
                areas.append(result.affected.affected_fraction())
                update.apply_to(live)
                store.apply_update(update)

        _, seconds = timed(run)
        if baseline is None:
            baseline = scores
        table.add_row(
            tolerance,
            seconds,
            100.0 * float(np.mean(areas)),
            max_abs_error(scores, baseline),
        )
    table.add_note(
        "Errors grow smoothly with tolerance while affected areas shrink; "
        "0.0 reproduces Inc-uSR exactly (Theorem 4)."
    )
    return table


def ablation_update_order(scale: str = "tiny") -> Table:
    """Apply the same mixed batch in three orders; results must agree."""
    num_nodes = 120 if scale == "tiny" else 400
    graph, config, batch = _workload(num_nodes=num_nodes, updates=12)
    orders = {
        "deletes-first": UpdateBatch(
            sorted(batch, key=lambda u: u.is_insert)
        ),
        "inserts-first": UpdateBatch(
            sorted(batch, key=lambda u: not u.is_insert)
        ),
        "interleaved": batch,
    }
    results = {}
    table = Table(
        title="Ablation — batch decomposition order invariance",
        headers=["order", "seconds", "max gap vs deletes-first"],
    )
    reference = None
    for name, ordered in orders.items():
        ordered.validate_against(graph)
        engine = DynamicSimRank(
            graph, config, algorithm="inc-sr",
            initial_scores=matrix_simrank(graph, config),
        )
        _, seconds = timed(lambda e=engine, o=ordered: e.apply(o))
        results[name] = engine.similarities()
        if reference is None:
            reference = results[name]
        table.add_row(name, seconds, max_abs_error(results[name], reference))
    table.add_note(
        "Gaps are at iteration-truncation level: unit-update decomposition "
        "is order-insensitive, as Sec. V assumes."
    )
    return table


def ablation_consolidation(scale: str = "tiny") -> Table:
    """Unit-update stream vs consolidated row updates on skewed batches.

    Workload: batches whose insertions concentrate on few target nodes
    (a paper gaining many citations at once) — the case the generalized
    rank-one row update (repro.incremental.row_update) is built for.
    """
    num_nodes = 120 if scale == "tiny" else 400
    graph = linkage_model_digraph(num_nodes, 3, seed=81)
    config = SimRankConfig(damping=0.6, iterations=15)
    initial = matrix_simrank(graph, config)
    table = Table(
        title="Ablation — unit updates vs consolidated row updates",
        headers=[
            "batch size",
            "distinct targets",
            "unit (s)",
            "consolidated (s)",
            "speedup",
            "max score gap",
        ],
    )
    import numpy as _np

    rng = _np.random.default_rng(83)
    for batch_size, num_targets in ((6, 2), (12, 3), (24, 4)):
        # Build a batch of insertions concentrated on num_targets rows.
        targets = rng.choice(num_nodes, size=num_targets, replace=False)
        updates = []
        taken = set(graph.edge_set())
        while len(updates) < batch_size:
            target = int(targets[len(updates) % num_targets])
            source = int(rng.integers(num_nodes))
            if source == target or (source, target) in taken:
                continue
            taken.add((source, target))
            from ..graph.updates import EdgeUpdate

            updates.append(EdgeUpdate.insert(source, target))
        batch = UpdateBatch(updates)

        unit_engine = DynamicSimRank(
            graph, config, algorithm="inc-sr", initial_scores=initial
        )
        _, unit_seconds = timed(lambda e=unit_engine, b=batch: e.apply(b))

        cons_engine = DynamicSimRank(
            graph, config, algorithm="inc-sr", initial_scores=initial
        )
        _, cons_seconds = timed(
            lambda e=cons_engine, b=batch: e.apply_consolidated(b)
        )
        gap = max_abs_error(
            unit_engine.similarities(), cons_engine.similarities()
        )
        table.add_row(
            batch_size,
            num_targets,
            unit_seconds,
            cons_seconds,
            unit_seconds / cons_seconds if cons_seconds > 0 else float("inf"),
            gap,
        )
    table.add_note(
        "Both paths converge to the same fixed point; gaps are at "
        "iteration-truncation level while the consolidated path runs one "
        "Sylvester series per distinct target row."
    )
    return table


def ablation_iterations(scale: str = "tiny") -> Table:
    """Accuracy/cost of K against the exact fixed point."""
    num_nodes = 80 if scale == "tiny" else 200
    graph = linkage_model_digraph(num_nodes, 3, seed=77)
    table = Table(
        title="Ablation — iteration count K (C = 0.6)",
        headers=["K", "seconds", "max error vs exact", "bound C^(K+1)/(1-C)"],
    )
    exact = exact_simrank(graph, SimRankConfig(damping=0.6, iterations=1))
    for iterations in (3, 5, 10, 15, 20):
        config = SimRankConfig(damping=0.6, iterations=iterations)
        scores, seconds = timed(lambda c=config: matrix_simrank(graph, c))
        bound = config.damping ** (iterations + 1) / (1 - config.damping)
        table.add_row(
            iterations, seconds, max_abs_error(scores, exact), bound
        )
    table.add_note("Observed error stays below the analytic bound.")
    return table
