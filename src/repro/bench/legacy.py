"""Frozen PR-1 baseline: the *seed* Inc-SR unit-update hot path.

This module is a faithful copy of the update pipeline as it existed
before the :class:`~repro.linalg.qstore.TransitionStore` rework, kept so
the perf gate (:mod:`repro.bench.perf_gate`) can measure the speedup of
the live engine against a fixed reference on the same machine and the
same workload — trajectory numbers in ``BENCH_pr*.json`` stay
comparable across future PRs.

Baseline characteristics being measured (all removed from the live
engine):

* ``Q.tocsc()`` scipy conversion **per update** before the pruned core;
* a full-array ``np.concatenate`` CSR rebuild **per update** to splice
  one row;
* the duplicated ``w = Q·[S]_{:,i}`` mat-vec and λ computation in the
  Theorem 2–3 precomputation;
* two dense ``n``-vectors materialized per pruned iteration (plus the
  O(n) support re-extraction scans), and fresh scratch vectors on every
  update.

Do **not** modernize this module; it is intentionally frozen.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import transition_row
from ..graph.updates import EdgeUpdate
from ..incremental.rank_one import validate_update


def _legacy_old_row_dense(graph: DynamicDiGraph, node: int) -> np.ndarray:
    """Seed's dense ``[Q]_{node,:}`` (python loop over in-neighbors)."""
    n = graph.num_nodes
    row = np.zeros(n)
    in_list = graph.in_neighbors(node)
    if in_list:
        weight = 1.0 / len(in_list)
        for neighbor in in_list:
            row[neighbor] = weight
    return row


def _legacy_rank_one_decomposition(graph, update):
    """Seed's Theorem-1 factors, frozen (pre-vectorization copy)."""
    validate_update(graph, update)
    n = graph.num_nodes
    source, target = update.edge
    degree = graph.in_degree(target)
    u_vector = np.zeros(n)
    v_vector = np.zeros(n)
    if update.is_insert:
        if degree == 0:
            u_vector[target] = 1.0
            v_vector[source] = 1.0
        else:
            u_vector[target] = 1.0 / (degree + 1)
            v_vector = -_legacy_old_row_dense(graph, target)
            v_vector[source] += 1.0
    else:
        if degree == 1:
            u_vector[target] = 1.0
            v_vector[source] = -1.0
        else:
            u_vector[target] = 1.0 / (degree - 1)
            v_vector = _legacy_old_row_dense(graph, target)
            v_vector[source] -= 1.0
    return u_vector, v_vector


def _legacy_compute_gamma(q_matrix, s_matrix, update, target_degree, config):
    """Seed's γ of Eqs. (27)–(28), frozen (own mat-vec, fresh arrays)."""
    damping = config.damping
    n = q_matrix.shape[0]
    source, target = update.edge
    w_vector = q_matrix @ s_matrix[:, source]
    lam = (
        s_matrix[source, source]
        + s_matrix[target, target] / damping
        - 2.0 * w_vector[target]
        - 1.0 / damping
        + 1.0
    )
    e_target = np.zeros(n)
    e_target[target] = 1.0
    if update.is_insert:
        if target_degree == 0:
            return w_vector + 0.5 * s_matrix[source, source] * e_target
        scale = 1.0 / (target_degree + 1)
        coefficient = lam * scale / 2.0 + 1.0 / damping - 1.0
        return scale * (
            w_vector
            - s_matrix[:, target] / damping
            + coefficient * e_target
        )
    if target_degree == 1:
        return 0.5 * s_matrix[source, source] * e_target - w_vector
    scale = 1.0 / (target_degree - 1)
    coefficient = lam * scale / 2.0 - 1.0 / damping + 1.0
    return scale * (
        s_matrix[:, target] / damping - w_vector + coefficient * e_target
    )


def _legacy_gather_matvec(
    csc: sp.csc_matrix,
    indices: np.ndarray,
    values: np.ndarray,
    num_rows: int,
) -> np.ndarray:
    """Seed's dense ``Q @ x`` for sparse ``x`` (bincount scatter-add)."""
    if indices.size == 0:
        return np.zeros(num_rows)
    starts = csc.indptr[indices]
    ends = csc.indptr[indices + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(num_rows)
    head = np.repeat(
        starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    positions = head + np.arange(total)
    rows = csc.indices[positions]
    contributions = csc.data[positions] * np.repeat(values, counts)
    return np.bincount(rows, weights=contributions, minlength=num_rows)


def _legacy_to_support(dense: np.ndarray, tolerance: float):
    indices = np.nonzero(np.abs(dense) > tolerance)[0]
    return indices, dense[indices]


def legacy_inc_sr_unit_update(
    graph: DynamicDiGraph,
    q_matrix: sp.csr_matrix,
    s_matrix: np.ndarray,
    update: EdgeUpdate,
    config: SimRankConfig,
) -> sp.csr_matrix:
    """One seed-style Inc-SR unit update, mutating ``graph``/``s_matrix``.

    Returns the rebuilt ``Q`` (the seed reconstructed the CSR arrays
    wholesale per update); the caller threads it into the next call.
    """
    damping = config.damping
    n = q_matrix.shape[0]
    source, target = update.edge

    # Seed precompute: γ via one mat-vec inside the frozen compute_gamma
    # copy, then λ recomputed with a second, identical mat-vec (the
    # duplication the live code removed).
    degree = graph.in_degree(update.target)
    u_vector, v_vector = _legacy_rank_one_decomposition(graph, update)
    gamma = _legacy_compute_gamma(q_matrix, s_matrix, update, degree, config)
    w_vector = q_matrix @ s_matrix[:, source]
    _lam = (
        s_matrix[source, source]
        + s_matrix[target, target] / damping
        - 2.0 * w_vector[target]
        - 1.0 / damping
        + 1.0
    )

    update.apply_to(graph)

    # Seed core: per-update CSC conversion + dense-vector iteration.
    csc = q_matrix.tocsc()
    u_scale = float(u_vector[target])
    xi_idx = np.asarray([target], dtype=np.int64)
    xi_val = np.asarray([damping])
    eta_idx, eta_val = _legacy_to_support(gamma, 0.0)

    def accumulate(rows, row_vals, cols, col_vals):
        if rows.size == 0 or cols.size == 0:
            return
        block = np.outer(row_vals, col_vals)
        s_matrix[np.ix_(rows, cols)] += block
        s_matrix[np.ix_(cols, rows)] += block.T

    accumulate(xi_idx, xi_val, eta_idx, eta_val)
    for _ in range(config.iterations):
        if xi_idx.size == 0 or eta_idx.size == 0:
            break
        delta_xi = float(v_vector[xi_idx] @ xi_val) * u_scale
        delta_eta = float(v_vector[eta_idx] @ eta_val) * u_scale
        xi_dense = _legacy_gather_matvec(csc, xi_idx, xi_val, n)
        xi_dense[target] += delta_xi
        xi_dense *= damping
        eta_dense = _legacy_gather_matvec(csc, eta_idx, eta_val, n)
        eta_dense[target] += delta_eta
        xi_idx, xi_val = _legacy_to_support(xi_dense, 0.0)
        eta_idx, eta_val = _legacy_to_support(eta_dense, 0.0)
        accumulate(xi_idx, xi_val, eta_idx, eta_val)

    # Seed maintenance: full-array CSR rebuild to splice one row.
    new_row = transition_row(graph, target)
    start, end = int(q_matrix.indptr[target]), int(q_matrix.indptr[target + 1])
    data = np.concatenate(
        (q_matrix.data[:start], new_row.data, q_matrix.data[end:])
    )
    indices = np.concatenate(
        (q_matrix.indices[:start], new_row.indices, q_matrix.indices[end:])
    )
    indptr = q_matrix.indptr.copy()
    indptr[target + 1 :] += new_row.nnz - (end - start)
    return sp.csr_matrix((data, indices, indptr), shape=(n, n))
