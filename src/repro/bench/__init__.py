"""Benchmark harness regenerating the paper's tables and figures.

* :mod:`repro.bench.harness` — timing helpers and tabular result types.
* :mod:`repro.bench.experiments` — one function per paper artifact
  (``fig1`` … ``fig4``); each returns a :class:`~repro.bench.harness.Table`.
* :mod:`repro.bench.reporting` — ASCII rendering of tables.
* :mod:`repro.bench.cli` — ``python -m repro.bench <experiment>``.

Every experiment accepts ``scale`` (``"tiny"`` for CI-speed runs,
``"bench"`` for the numbers recorded in EXPERIMENTS.md).
"""

from .harness import Table, timed
from .experiments import EXPERIMENTS, run_experiment

__all__ = ["Table", "timed", "EXPERIMENTS", "run_experiment"]
