"""ASCII rendering of :class:`~repro.bench.harness.Table` results."""

from __future__ import annotations

from typing import Any

from .harness import Table


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a table with aligned columns, title rule, and footnotes."""
    headers = [str(h) for h in table.headers]
    body = [[_render_cell(cell) for cell in row] for row in table.rows]
    widths = [len(h) for h in headers]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    parts = [table.title, "=" * len(table.title), line(headers), rule]
    parts.extend(line(row) for row in body)
    for note in table.notes:
        parts.append(f"* {note}")
    return "\n".join(parts)


def print_table(table: Table) -> None:
    """Print a rendered table followed by a blank line."""
    print(format_table(table))
    print()
