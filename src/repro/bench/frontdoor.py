"""Closed-loop many-client load generator for the network front door.

Measures what the front door actually promises — wire-level p50/p99
under concurrent clients **while background drains land** — and gates
the correctness claims at the same time:

* ``--clients N`` closed-loop HTTP clients issue a similarity /
  single-source mix as fast as their own round trips allow (closed
  loop: no open-loop arrival process hiding queueing);
* an **update driver** posts validated edge toggles throughout the
  run, so every latency sample rides over live drain traffic;
* a **pinned-session probe** pins one session up front and keeps
  re-reading the same pairs through it — any deviation from the first
  answers fails the run (bit-stability over the wire), while its
  paired *fresh* reads must see monotonically non-decreasing versions;
* a **WebSocket subscriber** maintains the top-k ranking purely from
  pushed deltas, digest-checking every step, and at the end the
  reconstructed ranking must equal a full recompute;
* any protocol error anywhere fails the run.

Two modes: self-hosted (default — builds a seeded random graph, a
background-writer service, and an in-process front door) or
``--connect HOST:PORT`` against an already-running ``serve --http``
instance (the CI smoke leg).

Usage::

    python -m repro.bench.frontdoor --clients 8 --duration 5
    python -m repro.bench.frontdoor --connect 127.0.0.1:8731 \
        --clients 8 --duration 5
    python -m repro.bench.frontdoor --merge-into BENCH_pr8.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import List, Optional

import numpy as np

from ..frontdoor.protocol import HTTPClient, ws_connect, ws_recv_json
from ..frontdoor.subscriptions import apply_delta, ranking_digest
from ..telemetry import MetricRegistry, validate_scrape


def _latency_ms(histogram) -> dict:
    """Wire the histogram digest into the report's historical shape."""
    digest = histogram.summary()
    return {
        "count": int(digest["count"]),
        "p50_ms": digest["p50"] * 1e3,
        "p99_ms": digest["p99"] * 1e3,
        "mean_ms": digest["mean"] * 1e3,
    }


class _Run:
    """Shared mutable state of one benchmark run.

    Latency samples land in client-side registry histograms (the same
    fixed-bucket instruments the server exposes), so the report's
    p50/p99 come from the telemetry digest path rather than a bespoke
    percentile helper — the benchmark eats the same math it gates.
    """

    def __init__(self) -> None:
        self.registry = MetricRegistry()
        self.latencies = {
            kind: self.registry.histogram(
                f"bench_{kind}_seconds",
                help=f"Client-observed {kind} round-trip seconds",
            )
            for kind in ("similarity", "single_source")
        }
        self.overall = self.registry.histogram(
            "bench_query_seconds",
            help="Client-observed query round-trip seconds (all kinds)",
        )
        self.failures: List[str] = []
        self.requests = 0
        self.updates_accepted = 0
        self.updates_posted = 0
        self.deltas = 0
        self.digest_failures = 0
        self.session_checks = 0
        self.session_stable = True
        self.versions_monotone = True
        self.batched_max = 1

    def fail(self, message: str) -> None:
        self.failures.append(message)


async def _query_client(
    host: str,
    port: int,
    num_nodes: int,
    run: _Run,
    end_time: float,
    seed: int,
) -> None:
    rng = np.random.default_rng(seed)
    client = HTTPClient(host, port)
    try:
        await client.connect()
        while time.monotonic() < end_time:
            if rng.random() < 0.7:
                payload = {
                    "kind": "similarity",
                    "node_a": int(rng.integers(num_nodes)),
                    "node_b": int(rng.integers(num_nodes)),
                }
            else:
                payload = {
                    "kind": "single_source",
                    "node": int(rng.integers(num_nodes)),
                }
            started = time.perf_counter()
            status, body = await client.request("POST", "/query", payload)
            elapsed = time.perf_counter() - started
            if status != 200:
                run.fail(f"query returned {status}: {body}")
                return
            run.requests += 1
            run.latencies[payload["kind"]].observe(elapsed)
            run.overall.observe(elapsed)
            size = int(body.get("batch_size", 1))
            if size > run.batched_max:
                run.batched_max = size
    except Exception as exc:  # protocol failures are gate failures
        run.fail(f"query client died: {type(exc).__name__}: {exc}")
    finally:
        await client.close()


async def _update_driver(
    host: str,
    port: int,
    num_nodes: int,
    run: _Run,
    end_time: float,
    seed: int,
    interval: float,
    batch_size: int,
) -> None:
    """Toggle random edges with server-side validation.

    Keeps a local belief of each touched edge's state, corrected from
    the server's per-update verdicts, so the stream stays almost
    entirely valid while still exercising the rejection path.
    """
    rng = np.random.default_rng(seed)
    belief: dict = {}
    client = HTTPClient(host, port)
    try:
        await client.connect()
        while time.monotonic() < end_time:
            updates = []
            for _ in range(batch_size):
                source = int(rng.integers(num_nodes))
                target = int(rng.integers(num_nodes))
                if source == target:
                    continue
                key = (source, target)
                insert = not belief.get(key, False)
                updates.append(
                    ["insert" if insert else "delete", source, target]
                )
                belief[key] = insert
            if not updates:
                continue
            status, body = await client.request(
                "POST",
                "/updates",
                {"updates": updates, "validate": True},
            )
            if status != 200:
                run.fail(f"updates returned {status}: {body}")
                return
            run.updates_posted += len(updates)
            run.updates_accepted += int(body["accepted"])
            for op, source, target, _reason in body["rejected"]:
                # Server knew better (edge pre-existed or vanished);
                # adopt its view so the next toggle is valid.
                belief[(source, target)] = op == "delete"
            await asyncio.sleep(interval)
    except Exception as exc:
        run.fail(f"update driver died: {type(exc).__name__}: {exc}")
    finally:
        await client.close()


async def _session_probe(
    host: str,
    port: int,
    num_nodes: int,
    run: _Run,
    end_time: float,
    seed: int,
) -> None:
    """Bit-stability of one pinned session + fresh-read monotonicity."""
    rng = np.random.default_rng(seed)
    pairs = [
        (int(rng.integers(num_nodes)), int(rng.integers(num_nodes)))
        for _ in range(16)
    ]
    client = HTTPClient(host, port)
    try:
        await client.connect()
        status, body = await client.request(
            "POST", "/session", {"ttl": 120}
        )
        if status != 201:
            run.fail(f"session create returned {status}: {body}")
            return
        session = body["session"]
        reference = {}
        for a, b in pairs:
            status, body = await client.request(
                "POST",
                "/query",
                {
                    "kind": "similarity",
                    "node_a": a,
                    "node_b": b,
                    "session": session,
                },
            )
            if status != 200:
                run.fail(f"session query returned {status}: {body}")
                return
            reference[(a, b)] = body["value"]
        last_fresh_version = -1
        while time.monotonic() < end_time:
            a, b = pairs[int(rng.integers(len(pairs)))]
            status, body = await client.request(
                "POST",
                "/query",
                {
                    "kind": "similarity",
                    "node_a": a,
                    "node_b": b,
                    "session": session,
                },
            )
            if status != 200:
                run.fail(f"session query returned {status}: {body}")
                return
            run.session_checks += 1
            if body["value"] != reference[(a, b)]:
                run.session_stable = False
                run.fail(
                    f"pinned session drifted on pair ({a}, {b}): "
                    f"{reference[(a, b)]!r} -> {body['value']!r}"
                )
                return
            status, fresh = await client.request(
                "POST",
                "/query",
                {"kind": "similarity", "node_a": a, "node_b": b},
            )
            if status != 200:
                run.fail(f"fresh query returned {status}: {fresh}")
                return
            if fresh["version"] < last_fresh_version:
                run.versions_monotone = False
                run.fail(
                    f"fresh read version went backwards: "
                    f"{last_fresh_version} -> {fresh['version']}"
                )
                return
            last_fresh_version = fresh["version"]
            await asyncio.sleep(0.01)
        await client.request("DELETE", f"/session/{session}")
    except Exception as exc:
        run.fail(f"session probe died: {type(exc).__name__}: {exc}")
    finally:
        await client.close()


async def _subscriber(
    host: str,
    port: int,
    k: int,
    run: _Run,
    stop: asyncio.Event,
    state: dict,
) -> None:
    """Maintain the top-k ranking purely from pushed deltas.

    Runs until ``stop`` is set — it must outlive the load phase so the
    deltas from the final flush still arrive before the end-of-run
    equality check.
    """
    try:
        reader, writer = await ws_connect(host, port, f"/ws/topk?k={k}")
        state["writer"] = writer
        message = await ws_recv_json(reader)
        if message is None or message.get("type") != "snapshot":
            run.fail(f"subscription did not open with a snapshot: {message}")
            return
        ranking = [(a, b, score) for a, b, score in message["ranking"]]
        if ranking_digest(ranking) != message["digest"]:
            run.digest_failures += 1
            run.fail("initial subscription snapshot digest mismatch")
            return
        state["ranking"] = ranking
        while not stop.is_set():
            try:
                message = await asyncio.wait_for(
                    ws_recv_json(reader), timeout=0.25
                )
            except asyncio.TimeoutError:
                continue
            if message is None or message.get("type") == "closed":
                break
            if message.get("type") != "delta":
                continue
            ranking = apply_delta(
                ranking, message["size"], message["changed"]
            )
            run.deltas += 1
            if ranking_digest(ranking) != message["digest"]:
                run.digest_failures += 1
                run.fail(
                    f"delta digest mismatch at version "
                    f"{message.get('version')}"
                )
                return
            state["ranking"] = ranking
    except Exception as exc:
        run.fail(f"subscriber died: {type(exc).__name__}: {exc}")


async def _final_equality(
    host: str,
    port: int,
    k: int,
    run: _Run,
    state: dict,
    timeout: float = 5.0,
) -> bool:
    """After quiescence: the delta-built ranking == a full recompute."""
    client = HTTPClient(host, port)
    try:
        await client.connect()
        await client.request("POST", "/flush", {})
        deadline = time.monotonic() + timeout
        while True:
            status, body = await client.request(
                "POST", "/query", {"kind": "top_k", "k": k}
            )
            if status != 200:
                run.fail(f"final top_k returned {status}: {body}")
                return False
            recomputed = [(a, b, score) for a, b, score in body["value"]]
            if state.get("ranking") == recomputed:
                return True
            if time.monotonic() >= deadline:
                run.fail(
                    "subscription ranking does not match the full "
                    f"recompute after {timeout}s of quiescence"
                )
                return False
            await asyncio.sleep(0.1)
    finally:
        await client.close()


async def _run_clients(
    host: str,
    port: int,
    args: argparse.Namespace,
    run: _Run,
) -> dict:
    async with HTTPClient(host, port) as client:
        status, health = await client.request("GET", "/health")
        if status != 200:
            raise RuntimeError(f"health probe failed: {status} {health}")
        num_nodes = int(health["num_nodes"])

    end_time = time.monotonic() + args.duration
    sub_state: dict = {}
    sub_stop = asyncio.Event()
    sub_task = asyncio.create_task(
        _subscriber(host, port, args.k, run, sub_stop, sub_state)
    )
    tasks = [
        _query_client(host, port, num_nodes, run, end_time, 1000 + i)
        for i in range(args.clients)
    ]
    tasks.append(
        _update_driver(
            host,
            port,
            num_nodes,
            run,
            end_time,
            seed=77,
            interval=args.update_interval,
            batch_size=args.update_batch,
        )
    )
    tasks.append(
        _session_probe(host, port, num_nodes, run, end_time, seed=55)
    )
    await asyncio.gather(*tasks)

    # Scrape while the server is still hot (subscriber attached, load
    # counters populated) so the validated exposition reflects a live
    # process, not an idle one.
    scrape = None
    if getattr(args, "scrape_prometheus", False):
        async with HTTPClient(host, port) as client:
            status, text = await client.request(
                "GET", "/metrics?format=prometheus", raw=True
            )
        if status != 200:
            run.fail(f"prometheus scrape returned {status}")
        else:
            try:
                scrape = validate_scrape(text)
            except ValueError as exc:
                run.fail(f"prometheus scrape invalid: {exc}")

    # The subscriber stays live through the final flush so the deltas
    # it triggers land before the equality check reads sub_state.
    final_match = False
    if not run.failures:
        final_match = await _final_equality(
            host, port, args.k, run, sub_state
        )
    sub_stop.set()
    await sub_task

    async with HTTPClient(host, port) as client:
        status, metrics = await client.request("GET", "/metrics")
        frontdoor = metrics.get("frontdoor", {}) if status == 200 else {}
    ws_writer = sub_state.get("writer")
    if ws_writer is not None:
        ws_writer.close()
    return {
        "final_match": final_match,
        "frontdoor": frontdoor,
        "prometheus_scrape": scrape,
    }


async def _bench(args: argparse.Namespace, run: _Run) -> dict:
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        host = host or "127.0.0.1"
        outcome = await _run_clients(host, int(port_text), args, run)
        mode = {"mode": "connect", "target": args.connect}
    else:
        from ..graph.digraph import DynamicDiGraph
        from ..frontdoor import FrontDoor
        from ..serving import FrontDoorConfig, ServiceConfig, SimRankService

        rng = np.random.default_rng(args.seed)
        graph = DynamicDiGraph(num_nodes=args.nodes)
        target_edges = args.nodes * args.degree
        seen = set()
        while len(seen) < target_edges:
            source = int(rng.integers(args.nodes))
            target = int(rng.integers(args.nodes))
            if source != target and (source, target) not in seen:
                seen.add((source, target))
                graph.add_edge(source, target)
        service = SimRankService(
            graph,
            config=ServiceConfig(
                writer="background",
                drain_interval=0.002,
                frontdoor=FrontDoorConfig(
                    admission_window=args.admission_window
                ),
            ),
        )
        door = await FrontDoor(service).start()
        try:
            outcome = await _run_clients(door.host, door.port, args, run)
        finally:
            await door.stop()
            service.close()
        mode = {
            "mode": "self-hosted",
            "nodes": args.nodes,
            "edges": len(seen),
        }

    report = {
        **mode,
        "clients": args.clients,
        "duration_seconds": args.duration,
        "admission_window_seconds": args.admission_window,
        "requests": run.requests,
        "throughput_rps": run.requests / args.duration,
        "latency": {
            "overall": _latency_ms(run.overall),
            "similarity": _latency_ms(run.latencies["similarity"]),
            "single_source": _latency_ms(run.latencies["single_source"]),
        },
        "max_wire_batch": run.batched_max,
        "updates": {
            "posted": run.updates_posted,
            "accepted": run.updates_accepted,
        },
        "subscription": {
            "k": args.k,
            "deltas": run.deltas,
            "digest_failures": run.digest_failures,
            "final_match": outcome["final_match"],
        },
        "session_probe": {
            "checks": run.session_checks,
            "stable": run.session_stable,
            "versions_monotone": run.versions_monotone,
        },
        "frontdoor_metrics": outcome["frontdoor"],
        "protocol_errors": len(run.failures),
        "failures": run.failures,
    }
    if outcome.get("prometheus_scrape") is not None:
        report["prometheus_scrape"] = outcome["prometheus_scrape"]
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.frontdoor",
        description="Closed-loop latency + correctness gate for the "
        "network front door.",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--degree", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--admission-window", type=float, default=0.002)
    parser.add_argument(
        "--update-interval",
        type=float,
        default=0.02,
        help="seconds between update-driver batches",
    )
    parser.add_argument("--update-batch", type=int, default=8)
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="run against an already-listening serve --http instance "
        "instead of self-hosting",
    )
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--scrape-prometheus",
        action="store_true",
        help="fetch /metrics?format=prometheus from the live server "
        "mid-run and validate the exposition (scrape failures fail "
        "the gate)",
    )
    parser.add_argument(
        "--merge-into",
        default=None,
        help="existing JSON report to fold this run into "
        "(under the 'frontdoor' key)",
    )
    args = parser.parse_args(argv)

    run = _Run()
    report = asyncio.run(_bench(args, run))
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.merge_into:
        merged = {}
        if os.path.exists(args.merge_into):
            with open(args.merge_into, "r", encoding="utf-8") as handle:
                merged = json.load(handle)
        merged["frontdoor"] = report
        with open(args.merge_into, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(merged, indent=2, sort_keys=True) + "\n"
            )
        print(
            f"merged frontdoor into {args.merge_into}", file=sys.stderr
        )

    failed = (
        bool(run.failures)
        or run.digest_failures
        or not run.session_stable
        or not run.versions_monotone
        or not report["subscription"]["final_match"]
        or run.requests == 0
    )
    if failed:
        print("FRONTDOOR GATE FAIL:", file=sys.stderr)
        for failure in run.failures or ["no requests completed"]:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"frontdoor gate OK: {run.requests} requests, "
        f"p99 {report['latency']['overall']['p99_ms']:.2f} ms, "
        f"{run.deltas} verified deltas, "
        f"{run.session_checks} stable session reads",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
