"""Timing helpers and result containers for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def timed(function: Callable[[], T]) -> Tuple[T, float]:
    """Run ``function`` once; return ``(result, wall_seconds)``."""
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


@dataclass
class Table:
    """A titled table of experiment results.

    ``rows`` holds raw values (numbers or strings); rendering to text is
    the job of :mod:`repro.bench.reporting` so results stay assertable in
    tests.
    """

    title: str
    headers: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the header count."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text footnote."""
        self.notes.append(note)

    def column(self, header: str) -> List[Any]:
        """Extract a column by header name."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]


def format_seconds(seconds: float) -> str:
    """Render a duration compactly (``12.3 ms`` / ``4.56 s``)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def speedup(baseline_seconds: float, candidate_seconds: float) -> Optional[float]:
    """``baseline / candidate`` or ``None`` when the candidate took ~0 time."""
    if candidate_seconds <= 0.0:
        return None
    return baseline_seconds / candidate_seconds
