"""Smoke perf gate: per-update latency of the live engine vs the seed.

A Fig. 2a-style microbenchmark following the paper's protocol: a
CITH-like citation network (one of the Fig. 2a dataset families) is
snapshot mid-evolution, ``S`` is precomputed once, and the next edge
arrivals are applied as unit updates (a) through the live
:class:`~repro.incremental.engine.DynamicSimRank` zero-rebuild pipeline
and (b) through the frozen seed hot path in :mod:`repro.bench.legacy`.
Both pipelines start from identical state and apply the identical
update sequence, and their final scores are asserted equal, so the
wall-clock ratio isolates the update-pipeline rework.  Each pipeline is
timed over two alternating rounds and the faster round is kept,
suppressing cold-cache/ordering bias.

Writes a JSON report whose name (and CI artifact name) derive from
``--out`` — each PR records its own trajectory point (``BENCH_pr1.json``,
``BENCH_pr2.json``, …) at the repo root::

    python -m repro.bench.perf_gate --out BENCH_pr2.json --baseline BENCH_pr1.json
    python -m repro.bench.perf_gate --nodes 500 --updates 20 --min-speedup 1.5

``--baseline`` points at a previous report: the gate then also records
the per-update latency trajectory (baseline → current live mean) and,
with ``--max-baseline-ratio``, fails when the live mean regresses past
that factor of the baseline's live mean.  The gate always exits
non-zero when the measured mean speedup vs the frozen seed pipeline
falls below ``--min-speedup`` (default 3.0; CI's smoke run uses a
smaller graph and a softer bar to stay noise-tolerant).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..config import SimRankConfig
from ..datasets.citation import citation_network
from ..graph.transition import backward_transition_matrix
from ..graph.updates import UpdateBatch
from ..incremental.engine import DynamicSimRank
from ..simrank.matrix import matrix_simrank
from .legacy import legacy_inc_sr_unit_update


def _workload(
    num_nodes: int,
    num_updates: int,
    references: int,
    recency: float,
    seed: int,
):
    """Fig. 2a protocol: mid-evolution citation snapshot + next arrivals.

    A citation network (CITH-like by default: ~12 refs/paper, strong
    recency bias — see :func:`repro.datasets.citation.cith_like`) is
    evolved over yearly cohorts; the graph is snapshot mid-evolution,
    SimRank is precomputed once, and the next ``num_updates`` edge
    arrivals (the delta toward the following snapshots) form the
    unit-update stream — exactly how the paper feeds its link-evolving
    experiments.
    """
    timestamped = citation_network(
        num_nodes,
        num_years=10,
        references_per_paper=references,
        recency_bias=recency,
        seed=seed,
    )
    times = timestamped.timestamps()
    middle = times[len(times) // 2]
    base = timestamped.snapshot_at(middle)
    delta = timestamped.delta_between(middle, times[-1])
    updates = list(delta)[:num_updates]
    config = SimRankConfig(damping=0.6, iterations=15)
    initial = matrix_simrank(base, config)
    return base, config, initial, updates


def _time_live(graph, config, initial, updates):
    engine = DynamicSimRank(
        graph, config, algorithm="inc-sr", initial_scores=initial
    )
    engine.apply(UpdateBatch(updates))
    return [stats.seconds for stats in engine.history], engine.similarities()


def _time_legacy(graph, config, initial, updates):
    live_graph = graph.copy()
    q_matrix = backward_transition_matrix(live_graph)
    scores = initial.copy()
    seconds: List[float] = []
    for update in updates:
        started = time.perf_counter()
        q_matrix = legacy_inc_sr_unit_update(
            live_graph, q_matrix, scores, update, config
        )
        seconds.append(time.perf_counter() - started)
    return seconds, scores


def run_perf_gate(
    num_nodes: int = 2000,
    num_updates: int = 100,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    check_equivalence: bool = True,
) -> Dict:
    """Run both pipelines; return the JSON-serializable report dict."""
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )

    # Two alternating rounds per pipeline; keep each pipeline's faster
    # round so neither side is charged for cold caches or run order.
    legacy_seconds, legacy_scores = _time_legacy(graph, config, initial, updates)
    live_seconds, live_scores = _time_live(graph, config, initial, updates)
    legacy_again, _ = _time_legacy(graph, config, initial, updates)
    live_again, _ = _time_live(graph, config, initial, updates)
    legacy_seconds = min(legacy_seconds, legacy_again, key=sum)
    live_seconds = min(live_seconds, live_again, key=sum)

    report = {
        "benchmark": "unit-update-latency",
        "workload": {
            "graph": "cith-like citation snapshot (fig2a protocol)",
            "num_nodes": num_nodes,
            "num_edges": graph.num_edges,
            "references_per_paper": references,
            "recency_bias": recency,
            "num_updates": len(updates),
            "damping": config.damping,
            "iterations": config.iterations,
            "seed": seed,
        },
        "live": _summary(live_seconds),
        "legacy_seed": _summary(legacy_seconds),
        "mean_speedup": statistics.fmean(legacy_seconds)
        / statistics.fmean(live_seconds),
        "median_speedup": statistics.median(legacy_seconds)
        / statistics.median(live_seconds),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    if check_equivalence:
        # The two pipelines must produce the same scores (sanity guard
        # that the speedup is not bought with a wrong answer).
        drift = float(np.max(np.abs(live_scores - legacy_scores)))
        report["max_score_drift_vs_seed"] = drift
        if drift > 1e-9:
            raise AssertionError(
                f"live pipeline drifted from seed scores by {drift:.3e}"
            )
    return report


def _summary(seconds: List[float]) -> Dict[str, float]:
    return {
        "mean_seconds": statistics.fmean(seconds),
        "median_seconds": statistics.median(seconds),
        "p95_seconds": sorted(seconds)[max(0, int(0.95 * len(seconds)) - 1)],
        "total_seconds": sum(seconds),
    }


def attach_baseline(report: Dict, baseline_path: str) -> Dict:
    """Record the latency trajectory from a previous gate report.

    Adds a ``baseline`` section (who we compared against, its live
    mean) and ``latency_ratio_vs_baseline`` — current live mean divided
    by baseline live mean, so 1.0 means "as fast as the previous PR"
    and values below 1.0 are improvements.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_mean = baseline["live"]["mean_seconds"]
    report["baseline"] = {
        "report": os.path.basename(baseline_path),
        "mean_seconds": baseline_mean,
        "mean_speedup_vs_seed": baseline.get("mean_speedup"),
    }
    report["latency_ratio_vs_baseline"] = (
        report["live"]["mean_seconds"] / baseline_mean
    )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf_gate",
        description="Per-update latency gate vs the frozen seed pipeline.",
    )
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--updates", type=int, default=100)
    parser.add_argument("--references", type=int, default=12)
    parser.add_argument("--recency", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous gate report to record a latency trajectory against",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail when mean speedup vs seed drops below this",
    )
    parser.add_argument(
        "--max-baseline-ratio",
        type=float,
        default=None,
        help="fail when live mean latency exceeds baseline mean times this",
    )
    args = parser.parse_args(argv)

    report = run_perf_gate(
        num_nodes=args.nodes,
        num_updates=args.updates,
        references=args.references,
        recency=args.recency,
        seed=args.seed,
    )
    if args.out:
        # The artifact/report identity is derived from --out, not
        # hardcoded per PR.
        report["report"] = os.path.basename(args.out)
    if args.baseline:
        if os.path.exists(args.baseline):
            attach_baseline(report, args.baseline)
        else:
            # A requested-but-missing baseline must not silently disable
            # the regression gate.
            print(
                f"PERF GATE FAIL: baseline report {args.baseline!r} not found",
                file=sys.stderr,
            )
            return 1
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

    if report["mean_speedup"] < args.min_speedup:
        print(
            f"PERF GATE FAIL: mean speedup {report['mean_speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    ratio = report.get("latency_ratio_vs_baseline")
    if ratio is not None:
        trajectory = (
            f"{report['baseline']['report']} -> "
            f"{report.get('report', 'current')}: "
            f"{report['baseline']['mean_seconds'] * 1e3:.2f} ms -> "
            f"{report['live']['mean_seconds'] * 1e3:.2f} ms per update "
            f"({ratio:.2f}x)"
        )
        print(f"latency trajectory: {trajectory}")
        if args.max_baseline_ratio is not None and ratio > args.max_baseline_ratio:
            print(
                f"PERF GATE FAIL: live mean latency is {ratio:.2f}x the "
                f"baseline (max {args.max_baseline_ratio:.2f}x)",
                file=sys.stderr,
            )
            return 1
    print(
        f"perf gate ok: {report['mean_speedup']:.2f}x mean per-update "
        f"speedup vs seed (gate {args.min_speedup:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
