"""Smoke perf gate: per-update latency of the live engine vs the seed.

A Fig. 2a-style microbenchmark following the paper's protocol: a
CITH-like citation network (one of the Fig. 2a dataset families) is
snapshot mid-evolution, ``S`` is precomputed once, and the next edge
arrivals are applied as unit updates (a) through the live
:class:`~repro.incremental.engine.DynamicSimRank` zero-rebuild pipeline
and (b) through the frozen seed hot path in :mod:`repro.bench.legacy`.
Both pipelines start from identical state and apply the identical
update sequence, and their final scores are asserted equal, so the
wall-clock ratio isolates the update-pipeline rework.  Each pipeline is
timed over two alternating rounds and the faster round is kept,
suppressing cold-cache/ordering bias.

Writes a JSON report whose name (and CI artifact name) derive from
``--out`` — each PR records its own trajectory point (``BENCH_pr1.json``,
``BENCH_pr2.json``, …) at the repo root::

    python -m repro.bench.perf_gate --out BENCH_pr2.json --baseline BENCH_pr1.json
    python -m repro.bench.perf_gate --nodes 500 --updates 20 --min-speedup 1.5

``--baseline`` points at a previous report: the gate then also records
the per-update latency trajectory (baseline → current live mean) and,
with ``--max-baseline-ratio``, fails when the live mean regresses past
that factor of the baseline's live mean.  The gate always exits
non-zero when the measured mean speedup vs the frozen seed pipeline
falls below ``--min-speedup`` (default 3.0; CI's smoke run uses a
smaller graph and a softer bar to stay noise-tolerant).

``--precision float32`` runs the live pipeline with float32 score
storage; the bit-drift assertion against the seed is then replaced by
accuracy gates (NDCG@100 / top-100 overlap vs the seed's float64
scores, ``--min-ndcg`` / ``--min-topk-overlap``).  ``--precision-curve``
additionally records a three-leg precision comparison — float64
reference, uniform float32, and the autotuner's accepted plan — with
per-leg latency, score-store bytes, scatter bytes-per-update, and
accuracy, gated on accuracy plus a float32 win condition (≥
``--min-f32-throughput``x per-update throughput OR ≥
``--min-f32-memory-saving`` score-store memory saved).

``--max-telemetry-ratio`` adds a telemetry-overhead section: the live
pipeline is additionally timed with :mod:`repro.telemetry` enabled at
default sampling and with the shared null instance, both legs recorded
in the report, and the gate fails when the on/off mean-latency ratio
exceeds the given factor (CI uses 1.05).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..config import SimRankConfig
from ..datasets.citation import citation_network
from ..graph.transition import backward_transition_matrix
from ..graph.updates import UpdateBatch
from ..incremental.engine import DynamicSimRank
from ..metrics.ndcg import ndcg_at_k
from ..metrics.topk import top_k_overlap
from ..simrank.matrix import matrix_simrank
from .legacy import legacy_inc_sr_unit_update


def _workload(
    num_nodes: int,
    num_updates: int,
    references: int,
    recency: float,
    seed: int,
):
    """Fig. 2a protocol: mid-evolution citation snapshot + next arrivals.

    A citation network (CITH-like by default: ~12 refs/paper, strong
    recency bias — see :func:`repro.datasets.citation.cith_like`) is
    evolved over yearly cohorts; the graph is snapshot mid-evolution,
    SimRank is precomputed once, and the next ``num_updates`` edge
    arrivals (the delta toward the following snapshots) form the
    unit-update stream — exactly how the paper feeds its link-evolving
    experiments.
    """
    timestamped = citation_network(
        num_nodes,
        num_years=10,
        references_per_paper=references,
        recency_bias=recency,
        seed=seed,
    )
    times = timestamped.timestamps()
    middle = times[len(times) // 2]
    base = timestamped.snapshot_at(middle)
    delta = timestamped.delta_between(middle, times[-1])
    updates = list(delta)[:num_updates]
    config = SimRankConfig(damping=0.6, iterations=15)
    initial = matrix_simrank(base, config)
    return base, config, initial, updates


def _time_live(graph, config, initial, updates, score_dtype=None, telemetry=None):
    engine = DynamicSimRank(
        graph,
        config,
        algorithm="inc-sr",
        initial_scores=initial,
        score_dtype=score_dtype,
        telemetry=telemetry,
    )
    engine.apply(UpdateBatch(updates))
    return [stats.seconds for stats in engine.history], engine.similarities()


def _time_legacy(graph, config, initial, updates):
    live_graph = graph.copy()
    q_matrix = backward_transition_matrix(live_graph)
    scores = initial.copy()
    seconds: List[float] = []
    for update in updates:
        started = time.perf_counter()
        q_matrix = legacy_inc_sr_unit_update(
            live_graph, q_matrix, scores, update, config
        )
        seconds.append(time.perf_counter() - started)
    return seconds, scores


def run_perf_gate(
    num_nodes: int = 2000,
    num_updates: int = 100,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    check_equivalence: bool = True,
    precision: str = "float64",
) -> Dict:
    """Run both pipelines; return the JSON-serializable report dict.

    At ``precision="float64"`` (default) the live pipeline must match
    the seed bit-for-bit (within 1e-9).  At ``"float32"`` the seed
    stays float64 and the report instead records ranking accuracy
    (``accuracy_vs_seed``) for the caller to gate on.
    """
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    score_dtype = None if precision == "float64" else precision

    # Two alternating rounds per pipeline; keep each pipeline's faster
    # round so neither side is charged for cold caches or run order.
    legacy_seconds, legacy_scores = _time_legacy(graph, config, initial, updates)
    live_seconds, live_scores = _time_live(
        graph, config, initial, updates, score_dtype
    )
    legacy_again, _ = _time_legacy(graph, config, initial, updates)
    live_again, _ = _time_live(graph, config, initial, updates, score_dtype)
    legacy_seconds = min(legacy_seconds, legacy_again, key=sum)
    live_seconds = min(live_seconds, live_again, key=sum)

    report = {
        "benchmark": "unit-update-latency",
        "workload": {
            "graph": "cith-like citation snapshot (fig2a protocol)",
            "num_nodes": num_nodes,
            "num_edges": graph.num_edges,
            "references_per_paper": references,
            "recency_bias": recency,
            "num_updates": len(updates),
            "damping": config.damping,
            "iterations": config.iterations,
            "seed": seed,
            "precision": precision,
        },
        "live": _summary(live_seconds),
        "legacy_seed": _summary(legacy_seconds),
        "mean_speedup": statistics.fmean(legacy_seconds)
        / statistics.fmean(live_seconds),
        "median_speedup": statistics.median(legacy_seconds)
        / statistics.median(live_seconds),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    if check_equivalence:
        if precision == "float64":
            # The two pipelines must produce the same scores (sanity
            # guard that the speedup is not bought with a wrong answer).
            drift = float(np.max(np.abs(live_scores - legacy_scores)))
            report["max_score_drift_vs_seed"] = drift
            if drift > 1e-9:
                raise AssertionError(
                    f"live pipeline drifted from seed scores by {drift:.3e}"
                )
        else:
            # Reduced precision cannot be bit-identical to the float64
            # seed; gate on ranking accuracy instead (the caller
            # enforces the thresholds).
            report["accuracy_vs_seed"] = {
                "ndcg_at_100": float(
                    ndcg_at_k(live_scores, legacy_scores, k=100)
                ),
                "topk100_overlap": float(
                    top_k_overlap(live_scores, legacy_scores, k=100)
                ),
            }
    return report


def _precision_leg(graph, config, initial, updates, score_dtype, shard_dtypes):
    """One live-pipeline run at a precision configuration."""
    engine = DynamicSimRank(
        graph,
        config,
        algorithm="inc-sr",
        initial_scores=initial,
        score_dtype=score_dtype,
    )
    for index, name in sorted((shard_dtypes or {}).items()):
        engine.score_store.set_shard_dtype(index, name)
    engine.apply(UpdateBatch(updates))
    seconds = [stats.seconds for stats in engine.history]
    itemsize = engine.score_store.dtype.itemsize
    scatter_entries = [
        sum(stats.affected.area_sizes())
        for stats in engine.history
        if stats.affected is not None
    ]
    total = sum(seconds)
    return {
        "seconds": seconds,
        "final": engine.similarities(),
        "mean_update_ms": statistics.fmean(seconds) * 1e3,
        "updates_per_second": len(updates) / total if total else 0.0,
        "score_store_bytes": engine.score_store.nbytes(),
        "score_dtype": engine.score_store.dtype.name,
        "shard_dtypes": engine.score_store.shard_dtypes(),
        # Score bytes scattered per update (affected-area entries at the
        # store's itemsize) — the bytes-per-update companion to
        # ms-per-update.
        "scatter_bytes_per_update": (
            statistics.fmean(scatter_entries) * itemsize
            if scatter_entries
            else 0.0
        ),
    }


def run_precision_curve(
    num_nodes: int = 2000,
    num_updates: int = 100,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    min_ndcg: float = 0.99,
    min_topk_overlap: float = 0.98,
    min_f32_throughput: float = 1.25,
    min_f32_memory_saving: float = 0.40,
) -> Dict:
    """Three-leg precision comparison: float64 ref, float32, autotuned.

    All legs replay the identical update stream from identical initial
    state.  Accuracy of the reduced-precision legs is measured against
    the float64 reference leg's final matrix (NDCG@100 + top-100
    overlap), and the gate section records whether the float32 leg
    clears the accuracy floors *and* the win condition (throughput OR
    memory saving).
    """
    from ..tuning.precision import PrecisionAutotuner, PrecisionGates

    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    reference = _precision_leg(graph, config, initial, updates, None, None)
    float32 = _precision_leg(graph, config, initial, updates, "float32", None)
    tuner = PrecisionAutotuner(
        graph,
        config=config,
        initial_scores=initial,
        gates=PrecisionGates(
            min_ndcg=min_ndcg, min_topk_overlap=min_topk_overlap
        ),
        seed=seed,
    )
    plan = tuner.run()
    autotuned = _precision_leg(
        graph, config, initial, updates, plan.store_dtype, plan.shard_dtypes
    )

    def _leg_report(leg, accuracy: bool) -> Dict:
        entry = {
            key: leg[key]
            for key in (
                "mean_update_ms",
                "updates_per_second",
                "score_store_bytes",
                "score_dtype",
                "shard_dtypes",
                "scatter_bytes_per_update",
            )
        }
        if accuracy:
            entry["ndcg_at_100"] = float(
                ndcg_at_k(leg["final"], reference["final"], k=100)
            )
            entry["topk100_overlap"] = float(
                top_k_overlap(leg["final"], reference["final"], k=100)
            )
        return entry

    curve = {
        "float64_reference": _leg_report(reference, accuracy=False),
        "float32": _leg_report(float32, accuracy=True),
        "autotuned": _leg_report(autotuned, accuracy=True),
    }
    curve["autotuned"]["plan"] = plan.to_dict()

    throughput_ratio = (
        curve["float32"]["updates_per_second"]
        / curve["float64_reference"]["updates_per_second"]
        if curve["float64_reference"]["updates_per_second"]
        else 0.0
    )
    memory_saving = 1.0 - (
        curve["float32"]["score_store_bytes"]
        / curve["float64_reference"]["score_store_bytes"]
    )
    accuracy_ok = (
        curve["float32"]["ndcg_at_100"] >= min_ndcg
        and curve["float32"]["topk100_overlap"] >= min_topk_overlap
        and curve["autotuned"]["ndcg_at_100"] >= min_ndcg
        and curve["autotuned"]["topk100_overlap"] >= min_topk_overlap
    )
    win_ok = (
        throughput_ratio >= min_f32_throughput
        or memory_saving >= min_f32_memory_saving
    )
    curve["gates"] = {
        "min_ndcg": min_ndcg,
        "min_topk_overlap": min_topk_overlap,
        "min_f32_throughput": min_f32_throughput,
        "min_f32_memory_saving": min_f32_memory_saving,
        "f32_throughput_ratio": throughput_ratio,
        "f32_memory_saving": memory_saving,
        "accuracy_ok": accuracy_ok,
        "win_ok": win_ok,
        "passed": accuracy_ok and win_ok,
    }
    return curve


def run_telemetry_overhead(
    num_nodes: int = 2000,
    num_updates: int = 100,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
) -> Dict:
    """Live pipeline with telemetry on (default sampling) vs off.

    Both legs replay the identical update stream from identical state;
    each is timed over two alternating rounds keeping the faster round
    (same bias suppression as the main gate).  ``overhead_ratio`` is
    on-mean / off-mean — the factor the instrumented hot path costs —
    and the caller gates it with ``--max-telemetry-ratio``.
    """
    from ..telemetry import NULL_TELEMETRY, Telemetry

    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    on_seconds, _ = _time_live(
        graph, config, initial, updates, telemetry=Telemetry()
    )
    off_seconds, _ = _time_live(
        graph, config, initial, updates, telemetry=NULL_TELEMETRY
    )
    on_again, _ = _time_live(
        graph, config, initial, updates, telemetry=Telemetry()
    )
    off_again, _ = _time_live(
        graph, config, initial, updates, telemetry=NULL_TELEMETRY
    )
    on = min(on_seconds, on_again, key=sum)
    off = min(off_seconds, off_again, key=sum)
    return {
        "telemetry_on": _summary(on),
        "telemetry_off": _summary(off),
        "overhead_ratio": statistics.fmean(on) / statistics.fmean(off),
    }


def run_durability_overhead(
    num_nodes: int = 2000,
    num_updates: int = 100,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    fsync: str = "interval",
) -> Dict:
    """Serving drain loop WAL-on (``fsync`` policy) vs WAL-off.

    Both legs drain the identical update stream one update per drain
    through :class:`~repro.serving.SimRankService` — the WAL-on leg
    appends every acked drain before publishing it (the ack-after-
    append seam the durability layer adds).  Alternating rounds keep
    the faster of two runs per leg (same bias suppression as the other
    overhead sections).  ``overhead_ratio`` is on-mean / off-mean and
    the caller gates it with ``--max-durability-ratio``.

    The on-leg also times a time-travel pass — ``top_k_at`` against
    every retained checkpoint version — reported as
    ``time_travel.mean_seconds`` (not gated; checkpoint-load plus
    WAL-replay cost is the measurement, regressions show in trend).
    """
    import shutil
    import tempfile

    from ..serving import DurabilityConfig, SimRankService

    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )

    def _drain_leg(durability):
        service = SimRankService(
            graph.copy(),
            config,
            initial_scores=initial.copy(),
            durability=durability,
        )
        seconds: List[float] = []
        try:
            for update in updates:
                service.submit(update)
                started = time.perf_counter()
                service.drain()
                seconds.append(time.perf_counter() - started)
            travel = []
            if durability is not None:
                for version in service.durability.retained_versions():
                    started = time.perf_counter()
                    service.top_k_at(100, version)
                    travel.append(time.perf_counter() - started)
            return seconds, travel
        finally:
            service.close()

    def _on_leg():
        data_dir = tempfile.mkdtemp(prefix="repro-durability-gate-")
        try:
            # Default checkpoint cadence: the gate measures the
            # per-drain WAL tax, not checkpoint cost (that shows up
            # in the ungated time-travel section instead).
            return _drain_leg(
                DurabilityConfig(data_dir=data_dir, fsync=fsync)
            )
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)

    on_seconds, travel = _on_leg()
    off_seconds, _ = _drain_leg(None)
    on_again, travel_again = _on_leg()
    off_again, _ = _drain_leg(None)
    if sum(on_again) < sum(on_seconds):
        on_seconds, travel = on_again, travel_again
    off = min(off_seconds, off_again, key=sum)
    report = {
        "fsync": fsync,
        "wal_on": _summary(on_seconds),
        "wal_off": _summary(off),
        "overhead_ratio": (
            statistics.fmean(on_seconds) / statistics.fmean(off)
        ),
    }
    if travel:
        report["time_travel"] = _summary(travel)
        report["time_travel"]["versions"] = len(travel)
    return report


def _summary(seconds: List[float]) -> Dict[str, float]:
    return {
        "mean_seconds": statistics.fmean(seconds),
        "median_seconds": statistics.median(seconds),
        "p95_seconds": sorted(seconds)[max(0, int(0.95 * len(seconds)) - 1)],
        "total_seconds": sum(seconds),
    }


def attach_baseline(report: Dict, baseline_path: str) -> Dict:
    """Record the latency trajectory from a previous gate report.

    Adds a ``baseline`` section (who we compared against, its live
    mean) and ``latency_ratio_vs_baseline`` — current live mean divided
    by baseline live mean, so 1.0 means "as fast as the previous PR"
    and values below 1.0 are improvements.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_mean = baseline["live"]["mean_seconds"]
    report["baseline"] = {
        "report": os.path.basename(baseline_path),
        "mean_seconds": baseline_mean,
        "mean_speedup_vs_seed": baseline.get("mean_speedup"),
    }
    report["latency_ratio_vs_baseline"] = (
        report["live"]["mean_seconds"] / baseline_mean
    )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf_gate",
        description="Per-update latency gate vs the frozen seed pipeline.",
    )
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--updates", type=int, default=100)
    parser.add_argument("--references", type=int, default=12)
    parser.add_argument("--recency", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous gate report to record a latency trajectory against",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail when mean speedup vs seed drops below this",
    )
    parser.add_argument(
        "--max-baseline-ratio",
        type=float,
        default=None,
        help="fail when live mean latency exceeds baseline mean times this",
    )
    parser.add_argument(
        "--precision",
        choices=("float64", "float32"),
        default="float64",
        help="score-store storage dtype for the live pipeline; float32 "
        "replaces the bit-drift assertion with the accuracy gates below",
    )
    parser.add_argument(
        "--precision-curve",
        action="store_true",
        help="also record the float64/float32/autotuned precision "
        "comparison (and gate the float32 leg on accuracy + win "
        "condition)",
    )
    parser.add_argument(
        "--min-ndcg",
        type=float,
        default=0.99,
        help="minimum NDCG@100 vs the float64 reference for "
        "reduced-precision legs",
    )
    parser.add_argument(
        "--min-topk-overlap",
        type=float,
        default=0.98,
        help="minimum top-100 pair overlap vs the float64 reference "
        "for reduced-precision legs",
    )
    parser.add_argument(
        "--min-f32-throughput",
        type=float,
        default=1.25,
        help="float32 win condition: required per-update throughput "
        "ratio vs the float64 reference (OR'd with the memory saving)",
    )
    parser.add_argument(
        "--min-f32-memory-saving",
        type=float,
        default=0.40,
        help="float32 win condition: required fraction of score-store "
        "bytes saved vs float64 (OR'd with the throughput ratio)",
    )
    parser.add_argument(
        "--max-telemetry-ratio",
        type=float,
        default=None,
        help="also run the live pipeline telemetry-on vs telemetry-off "
        "and fail when the on/off mean-latency ratio exceeds this "
        "(the report records both legs)",
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help="also run the serving drain loop WAL-on vs WAL-off (plus "
        "a time-travel read pass) and gate the on/off mean-latency "
        "ratio with --max-durability-ratio",
    )
    parser.add_argument(
        "--max-durability-ratio",
        type=float,
        default=1.10,
        help="fail when the WAL-on mean drain latency exceeds WAL-off "
        "times this (--durability only)",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "interval", "off"),
        default="interval",
        help="WAL fsync policy for the --durability on-leg",
    )
    args = parser.parse_args(argv)

    report = run_perf_gate(
        num_nodes=args.nodes,
        num_updates=args.updates,
        references=args.references,
        recency=args.recency,
        seed=args.seed,
        precision=args.precision,
    )
    if args.max_telemetry_ratio is not None:
        report["telemetry_overhead"] = run_telemetry_overhead(
            num_nodes=args.nodes,
            num_updates=args.updates,
            references=args.references,
            recency=args.recency,
            seed=args.seed,
        )
    if args.durability:
        report["durability_overhead"] = run_durability_overhead(
            num_nodes=args.nodes,
            num_updates=args.updates,
            references=args.references,
            recency=args.recency,
            seed=args.seed,
            fsync=args.fsync,
        )
    if args.precision_curve:
        report["precision_curve"] = run_precision_curve(
            num_nodes=args.nodes,
            num_updates=args.updates,
            references=args.references,
            recency=args.recency,
            seed=args.seed,
            min_ndcg=args.min_ndcg,
            min_topk_overlap=args.min_topk_overlap,
            min_f32_throughput=args.min_f32_throughput,
            min_f32_memory_saving=args.min_f32_memory_saving,
        )
    if args.out:
        # The artifact/report identity is derived from --out, not
        # hardcoded per PR.
        report["report"] = os.path.basename(args.out)
    if args.baseline:
        if os.path.exists(args.baseline):
            attach_baseline(report, args.baseline)
        else:
            # A requested-but-missing baseline must not silently disable
            # the regression gate.
            print(
                f"PERF GATE FAIL: baseline report {args.baseline!r} not found",
                file=sys.stderr,
            )
            return 1
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

    if report["mean_speedup"] < args.min_speedup:
        print(
            f"PERF GATE FAIL: mean speedup {report['mean_speedup']:.2f}x "
            f"< required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    accuracy = report.get("accuracy_vs_seed")
    if accuracy is not None:
        if (
            accuracy["ndcg_at_100"] < args.min_ndcg
            or accuracy["topk100_overlap"] < args.min_topk_overlap
        ):
            print(
                f"PERF GATE FAIL: {args.precision} accuracy vs seed "
                f"(ndcg@100 {accuracy['ndcg_at_100']:.4f}, top-100 "
                f"overlap {accuracy['topk100_overlap']:.4f}) below gates "
                f"({args.min_ndcg}, {args.min_topk_overlap})",
                file=sys.stderr,
            )
            return 1
        print(
            f"precision {args.precision}: ndcg@100 "
            f"{accuracy['ndcg_at_100']:.4f}, top-100 overlap "
            f"{accuracy['topk100_overlap']:.4f} (gates ok)"
        )
    curve = report.get("precision_curve")
    if curve is not None:
        gates = curve["gates"]
        print(
            f"precision curve: float32 {gates['f32_throughput_ratio']:.2f}x "
            f"throughput, {100 * gates['f32_memory_saving']:.0f}% score "
            f"memory saved, ndcg@100 {curve['float32']['ndcg_at_100']:.4f}, "
            f"top-100 overlap {curve['float32']['topk100_overlap']:.4f}"
        )
        if not gates["passed"]:
            print(
                f"PERF GATE FAIL: precision curve gates failed "
                f"(accuracy_ok={gates['accuracy_ok']}, "
                f"win_ok={gates['win_ok']})",
                file=sys.stderr,
            )
            return 1
    overhead = report.get("telemetry_overhead")
    if overhead is not None:
        print(
            f"telemetry overhead: "
            f"{overhead['telemetry_on']['mean_seconds'] * 1e3:.2f} ms on vs "
            f"{overhead['telemetry_off']['mean_seconds'] * 1e3:.2f} ms off "
            f"per update ({overhead['overhead_ratio']:.3f}x)"
        )
        if overhead["overhead_ratio"] > args.max_telemetry_ratio:
            print(
                f"PERF GATE FAIL: telemetry-on mean latency is "
                f"{overhead['overhead_ratio']:.3f}x telemetry-off "
                f"(max {args.max_telemetry_ratio:.2f}x)",
                file=sys.stderr,
            )
            return 1
    durability = report.get("durability_overhead")
    if durability is not None:
        travel = durability.get("time_travel")
        travel_note = (
            f", time travel {travel['mean_seconds'] * 1e3:.1f} ms/version "
            f"over {travel['versions']} versions"
            if travel
            else ""
        )
        print(
            f"durability overhead (fsync={durability['fsync']}): "
            f"{durability['wal_on']['mean_seconds'] * 1e3:.2f} ms on vs "
            f"{durability['wal_off']['mean_seconds'] * 1e3:.2f} ms off "
            f"per drain ({durability['overhead_ratio']:.3f}x){travel_note}"
        )
        if durability["overhead_ratio"] > args.max_durability_ratio:
            print(
                f"PERF GATE FAIL: WAL-on mean drain latency is "
                f"{durability['overhead_ratio']:.3f}x WAL-off "
                f"(max {args.max_durability_ratio:.2f}x)",
                file=sys.stderr,
            )
            return 1
    ratio = report.get("latency_ratio_vs_baseline")
    if ratio is not None:
        trajectory = (
            f"{report['baseline']['report']} -> "
            f"{report.get('report', 'current')}: "
            f"{report['baseline']['mean_seconds'] * 1e3:.2f} ms -> "
            f"{report['live']['mean_seconds'] * 1e3:.2f} ms per update "
            f"({ratio:.2f}x)"
        )
        print(f"latency trajectory: {trajectory}")
        if args.max_baseline_ratio is not None and ratio > args.max_baseline_ratio:
            print(
                f"PERF GATE FAIL: live mean latency is {ratio:.2f}x the "
                f"baseline (max {args.max_baseline_ratio:.2f}x)",
                file=sys.stderr,
            )
            return 1
    print(
        f"perf gate ok: {report['mean_speedup']:.2f}x mean per-update "
        f"speedup vs seed (gate {args.min_speedup:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
