"""Command-line entry point: ``python -m repro.bench [experiment ...]``.

Runs the named experiments (default: all) at the requested scale and
prints their tables.  Example::

    python -m repro.bench fig1 fig2d --scale tiny
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .experiments import EXPERIMENTS, run_experiment
from .reporting import print_table


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=sorted(EXPERIMENTS) + [[]],
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--scale",
        choices=("tiny", "bench"),
        default="tiny",
        help="workload scale (tiny: seconds; bench: EXPERIMENTS.md numbers)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    names = args.experiments or sorted(EXPERIMENTS)
    for name in names:
        table = run_experiment(name, scale=args.scale)
        print_table(table)
    return 0
