"""Serving benchmark: pinned-snapshot reads under a live update stream.

The scenario the serving layer exists for: a reader pins a
:class:`~repro.serving.snapshot.SnapshotView`, then the single writer
drains ≥100 queued edge updates through the coalescing scheduler while
the reader keeps querying.  The benchmark measures both sides and —
crucially — *verifies* snapshot isolation: every reader query after the
drain must return the bit-identical frozen-version answer it returned
before the drain.

Two writer modes are benchmarked (``--writer sync|background|both``):

* **sync** — the original caller-driven single drain;
* **background** — the dedicated
  :class:`~repro.serving.writer.BackgroundWriter` thread drains the
  bounded queue on its own cadence while the main thread keeps
  submitting chunks and pinning snapshots.  The report's
  ``background_writer`` section records the reader-side pin latencies
  observed *while drains were running* — pins are one attribute read of
  the latest published view, so readers never block on a drain — plus
  queue-depth/backpressure counters and the shard-heap top-k
  ``heap_hit_rate`` (``top_k`` no longer performs an O(n²) dense scan).

Workload: the same fig2a-style mid-evolution citation snapshot as the
perf gate (precompute ``S`` once, stream the next edge arrivals)::

    python -m repro.bench.serving --out BENCH_serving.json
    python -m repro.bench.serving --nodes 800 --updates 150
    python -m repro.bench.serving --writer background

Exits non-zero if isolation is violated (in either mode) or fewer than
``--min-updates`` updates were applied.

With ``--workers N --faults [SEED]`` the run doubles as a recovery
smoke test: a deterministic, fully-recoverable fault schedule (worker
crashes, stalls, staging-allocation failures, payload corruption — no
poison batches) is armed on the pool, and the benchmark additionally
fails unless at least one seeded fault actually fired while every
serving gate still passed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..serving import SimRankService
from .perf_gate import _workload


def _time_queries(view, pairs, sources) -> Dict:
    """Run the read workload on a view; return answers and latencies."""
    pair_seconds: List[float] = []
    pair_answers: List[float] = []
    for a, b in pairs:
        started = time.perf_counter()
        pair_answers.append(view.similarity(a, b))
        pair_seconds.append(time.perf_counter() - started)
    source_seconds: List[float] = []
    source_answers: List[np.ndarray] = []
    for node in sources:
        started = time.perf_counter()
        source_answers.append(view.single_source(node))
        source_seconds.append(time.perf_counter() - started)
    return {
        "pair_answers": pair_answers,
        "source_answers": source_answers,
        "pair_mean_seconds": statistics.fmean(pair_seconds),
        "source_mean_seconds": statistics.fmean(source_seconds),
    }


def _executor_kwargs(
    workers: int, fault_seed: Optional[int] = None
) -> Dict:
    """Service kwargs for the requested executor (0 => in-process).

    A ``fault_seed`` arms a deterministic fault schedule on the pool
    (crashes, stalls, staging failures, payload corruption — never
    poison, so the run must complete) and enables the ``rebuild``
    degraded policy as a final safety net.  The bench's isolation and
    min-updates gates then double as a recovery smoke test.
    """
    if workers <= 0:
        return {}
    kwargs: Dict = {"executor": "process", "workers": workers}
    if fault_seed is not None:
        from ..cluster import FaultPlan

        kwargs["executor_options"] = {
            "fault_plan": FaultPlan.seeded(
                fault_seed,
                workers,
                horizon=6,
                kinds=("crash", "stall", "shm_fail", "corrupt"),
            )
        }
        kwargs["degraded_policy"] = "rebuild"
    return kwargs


def run_serving_bench(
    num_nodes: int = 1000,
    num_updates: int = 120,
    num_pair_queries: int = 200,
    num_source_queries: int = 20,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    shard_rows: int = 128,
    workers: int = 0,
    fault_seed: Optional[int] = None,
    precision: str = "float64",
) -> Dict:
    """Run the pinned-reader / draining-writer scenario; return a report."""
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    if len(updates) < num_updates:
        raise RuntimeError(
            f"workload produced only {len(updates)} updates; "
            f"lower --updates or raise --nodes"
        )
    service = SimRankService(
        graph,
        config,
        initial_scores=initial,
        shard_rows=shard_rows,
        precision=precision,
        **_executor_kwargs(workers, fault_seed),
    )

    rng = np.random.default_rng(seed)
    pairs = [
        (int(rng.integers(num_nodes)), int(rng.integers(num_nodes)))
        for _ in range(num_pair_queries)
    ]
    sources = [int(rng.integers(num_nodes)) for _ in range(num_source_queries)]

    try:
        return _sync_scenario(
            service, updates, pairs, sources, num_nodes, num_pair_queries,
            num_source_queries, config, shard_rows, seed, workers,
        )
    finally:
        service.close()


def _sync_scenario(
    service, updates, pairs, sources, num_nodes, num_pair_queries,
    num_source_queries, config, shard_rows, seed, workers,
) -> Dict:
    # Reader pins a view and runs its query mix at the frozen version.
    view = service.snapshot()
    frozen_matrix = view.similarities()
    before = _time_queries(view, pairs, sources)

    # Writer: queue everything, then one coalesced drain.
    service.submit_many(updates)
    queued = service.pending
    started = time.perf_counter()
    groups = service.drain()
    drain_seconds = time.perf_counter() - started

    # Reader again, same pinned view: answers must be bit-identical.
    after = _time_queries(view, pairs, sources)
    pairs_frozen = before["pair_answers"] == after["pair_answers"]
    sources_frozen = all(
        np.array_equal(a, b)
        for a, b in zip(before["source_answers"], after["source_answers"])
    )
    matrix_frozen = bool(np.array_equal(view.similarities(), frozen_matrix))

    # A fresh pin sees the post-drain world.
    fresh = service.snapshot()
    advanced = fresh.version > view.version and not np.array_equal(
        fresh.similarities(), view.similarities()
    )

    engine = service.engine
    memory = service.memory_report()
    metrics = service.metrics_report()
    report = {
        "benchmark": "serving-snapshot-isolation",
        "workload": {
            "graph": "cith-like citation snapshot (fig2a protocol)",
            "num_nodes": num_nodes,
            "num_edges": engine.graph.num_edges,
            "num_updates": len(updates),
            "num_pair_queries": num_pair_queries,
            "num_source_queries": num_source_queries,
            "damping": config.damping,
            "iterations": config.iterations,
            "shard_rows": shard_rows,
            "seed": seed,
            "executor": service.executor,
            "workers": workers,
            "precision": service.precision,
            "score_dtype": service.engine.score_store.dtype.name,
        },
        "writer": {
            "queued_updates": queued,
            "applied_updates": len(updates),
            "row_groups": groups,
            "coalescing_ratio": service.scheduler.stats.coalescing_ratio(),
            "drain_seconds": drain_seconds,
            "updates_per_second": len(updates) / drain_seconds,
        },
        "reader": {
            "pinned_version": view.version,
            "fresh_version": fresh.version,
            "pair_query_mean_seconds_before_drain": before["pair_mean_seconds"],
            "pair_query_mean_seconds_after_drain": after["pair_mean_seconds"],
            "single_source_mean_seconds_before_drain": before[
                "source_mean_seconds"
            ],
            "single_source_mean_seconds_after_drain": after[
                "source_mean_seconds"
            ],
        },
        "isolation": {
            "pair_queries_frozen": pairs_frozen,
            "single_source_frozen": sources_frozen,
            "matrix_read_stable": matrix_frozen,
            "fresh_snapshot_advanced": advanced,
        },
        "memory": {
            "score_buffer_bytes": memory["score_buffer_bytes"],
            "score_cow_copies": memory["score_cow_copies"],
            "snapshot_pinned_bytes": view.nbytes(),
            "transition_store_bytes": memory["transition_store_bytes"],
        },
        "executor": metrics["executor"],
        "degraded": metrics.get("degraded"),
    }
    return report


def run_background_bench(
    num_nodes: int = 1000,
    num_updates: int = 120,
    num_pair_queries: int = 200,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    shard_rows: int = 128,
    drain_interval: float = 0.002,
    max_pending: int = 4096,
    policy: str = "block",
    top_k: int = 10,
    workers: int = 0,
    fault_seed: Optional[int] = None,
    precision: str = "float64",
) -> Dict:
    """Readers pin published views while the background writer drains.

    The main thread plays the reader fleet: it submits the update
    stream in chunks and, between chunks, times ``snapshot()`` pins and
    point queries while the writer thread drains concurrently.  Because
    pins are a single attribute read of the last published view, their
    latency stays microseconds even while a drain is mid-flight — that
    is the "readers never block on drains" evidence this section
    records.  Top-k rankings run through the shard-heap path before and
    after the stream, and the index's ``heap_hit_rate`` is reported.
    """
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    if len(updates) < num_updates:
        raise RuntimeError(
            f"workload produced only {len(updates)} updates; "
            f"lower --updates or raise --nodes"
        )
    service = SimRankService(
        graph,
        config,
        initial_scores=initial,
        shard_rows=shard_rows,
        writer="background",
        drain_interval=drain_interval,
        max_pending=max_pending,
        backpressure=policy,
        precision=precision,
        **_executor_kwargs(workers, fault_seed),
    )
    try:
        return _background_scenario(
            service, updates, num_pair_queries, num_nodes, seed, top_k,
            drain_interval,
        )
    finally:
        # The writer thread must not outlive the bench, even when a
        # backpressure policy raises mid-stream.
        service.close()


def _background_scenario(
    service, updates, num_pair_queries, num_nodes, seed, top_k,
    drain_interval,
) -> Dict:
    writer = service.writer
    rng = np.random.default_rng(seed)
    pairs = [
        (int(rng.integers(num_nodes)), int(rng.integers(num_nodes)))
        for _ in range(num_pair_queries)
    ]

    # Warm the shard-heap index, then pin the frozen baseline view.
    top_before = service.top_k(top_k)
    pinned = service.snapshot()
    frozen_matrix = pinned.similarities()
    frozen_top = pinned.top_k(top_k)

    pin_seconds: List[float] = []
    pin_during_drain: List[float] = []
    pair_seconds: List[float] = []
    topk_poll_seconds: List[float] = []
    chunk = max(1, len(updates) // 12)
    started = time.perf_counter()
    for begin in range(0, len(updates), chunk):
        service.submit_many(updates[begin : begin + chunk])
        # Reader side: pin + query while the writer drains concurrently.
        for a, b in pairs[: max(1, num_pair_queries // 12)]:
            busy = writer.busy
            t0 = time.perf_counter()
            view = service.snapshot()
            pin_elapsed = time.perf_counter() - t0
            pin_seconds.append(pin_elapsed)
            if busy:
                pin_during_drain.append(pin_elapsed)
            t0 = time.perf_counter()
            view.similarity(a, b)
            pair_seconds.append(time.perf_counter() - t0)
        # A ranking maintainer polls top-k as the stream applies — this
        # is what exercises the incremental shard-heap patching.
        t0 = time.perf_counter()
        service.top_k(top_k)
        topk_poll_seconds.append(time.perf_counter() - t0)
        # Let the writer interleave drains with the submission chunks.
        time.sleep(drain_interval)
    flushed = service.flush(timeout=120.0)
    wall_seconds = time.perf_counter() - started

    # Isolation: the pre-stream pin must still serve the frozen version.
    matrix_frozen = bool(
        np.array_equal(pinned.similarities(), frozen_matrix)
    )
    top_frozen = pinned.top_k(top_k) == frozen_top
    fresh = service.snapshot()
    advanced = fresh.version > pinned.version and not np.array_equal(
        fresh.similarities(), frozen_matrix
    )

    # Shard-heap top-k after the stream (patched incrementally).
    t0 = time.perf_counter()
    top_after = service.top_k(top_k)
    topk_seconds = time.perf_counter() - t0
    stats = writer.stats
    max_pin = max(pin_seconds) if pin_seconds else 0.0
    mean_apply = stats.mean_apply_seconds()
    # Structural claim, measured: a pin is an attribute read, so even
    # the slowest pin must come in far under one drain application.
    never_blocked = stats.drains > 0 and (
        max_pin < 0.05 or max_pin < 0.5 * mean_apply
    )
    # The writer/topk gauges come straight from the service's own
    # observability surface so the bench never drifts from it; only the
    # bench-specific timings are added on top.
    metrics = service.metrics_report()
    topk_section = dict(metrics["topk"])
    topk_section.update(
        path="shard-heap",
        query_seconds=topk_seconds,
        poll_mean_seconds=(
            statistics.fmean(topk_poll_seconds) if topk_poll_seconds else 0.0
        ),
        changed_vs_prestream=top_after != top_before,
    )
    return {
        "flushed": bool(flushed),
        "wall_seconds": wall_seconds,
        "writer": metrics["writer"],
        "executor": metrics["executor"],
        "degraded": metrics.get("degraded"),
        "reader": {
            "snapshot_pins": len(pin_seconds),
            "pin_mean_seconds": statistics.fmean(pin_seconds),
            "pin_max_seconds": max_pin,
            "pins_while_writer_busy": len(pin_during_drain),
            "pin_while_busy_max_seconds": (
                max(pin_during_drain) if pin_during_drain else 0.0
            ),
            "pair_query_mean_seconds": statistics.fmean(pair_seconds),
        },
        "topk": topk_section,
        "isolation": {
            "pinned_matrix_frozen": matrix_frozen,
            "pinned_topk_frozen": top_frozen,
            "fresh_snapshot_advanced": advanced,
            "readers_never_blocked": never_blocked,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serving",
        description="Pinned-snapshot reads while the writer drains updates.",
    )
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--updates", type=int, default=120)
    parser.add_argument("--pair-queries", type=int, default=200)
    parser.add_argument("--source-queries", type=int, default=20)
    parser.add_argument("--shard-rows", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--writer",
        choices=("sync", "background", "both"),
        default="both",
        help="which writer scenario(s) to benchmark",
    )
    parser.add_argument(
        "--backpressure",
        choices=("block", "drop-coalesce", "error"),
        default="block",
        help="bounded-queue policy for the background scenario",
    )
    parser.add_argument(
        "--drain-interval",
        type=float,
        default=0.002,
        help="background writer cadence in seconds",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="bounded-queue capacity for the background scenario",
    )
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--min-updates",
        type=int,
        default=100,
        help="fail unless at least this many updates were applied",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run the scenarios on the process executor with N shard "
        "workers (0 keeps the in-process executor)",
    )
    parser.add_argument(
        "--precision",
        choices=("float64", "float32", "auto"),
        default="float64",
        help="score-store storage precision for both scenarios "
        "(float64 is the bit-identity reference; float32 halves the "
        "score memory; auto runs the precision autotuner first)",
    )
    parser.add_argument(
        "--faults",
        type=int,
        nargs="?",
        const=11,
        default=None,
        metavar="SEED",
        help="arm a seeded, recoverable fault schedule on the pool "
        "(crash/stall/shm_fail/corrupt) and require the run to survive "
        "it; needs --workers >= 1 (optional value overrides the seed)",
    )
    args = parser.parse_args(argv)
    if args.faults is not None and args.workers <= 0:
        parser.error("--faults requires --workers >= 1")

    violations: List[str] = []
    applied_counts: List[int] = []
    if args.writer in ("sync", "both"):
        report = run_serving_bench(
            num_nodes=args.nodes,
            num_updates=args.updates,
            num_pair_queries=args.pair_queries,
            num_source_queries=args.source_queries,
            seed=args.seed,
            shard_rows=args.shard_rows,
            workers=args.workers,
            fault_seed=args.faults,
            precision=args.precision,
        )
        violations.extend(
            key for key, ok in report["isolation"].items() if not ok
        )
        applied_counts.append(report["writer"]["applied_updates"])
    else:
        report = {
            "benchmark": "serving-snapshot-isolation",
            "workload": {
                "num_nodes": args.nodes,
                "num_updates": args.updates,
                "shard_rows": args.shard_rows,
                "seed": args.seed,
            },
        }
    if args.writer in ("background", "both"):
        background = run_background_bench(
            num_nodes=args.nodes,
            num_updates=args.updates,
            num_pair_queries=args.pair_queries,
            seed=args.seed,
            shard_rows=args.shard_rows,
            drain_interval=args.drain_interval,
            max_pending=args.max_pending,
            policy=args.backpressure,
            workers=args.workers,
            fault_seed=args.faults,
            precision=args.precision,
        )
        report["background_writer"] = background
        violations.extend(
            f"background:{key}"
            for key, ok in background["isolation"].items()
            if not ok
        )
        applied_counts.append(background["writer"]["drained_updates"])

    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

    if violations:
        print(f"SERVING GATE FAIL: {violations}", file=sys.stderr)
        return 1
    applied = min(applied_counts) if applied_counts else 0
    if applied < args.min_updates:
        print(
            f"SERVING GATE FAIL: only {applied} updates applied "
            f"(< {args.min_updates})",
            file=sys.stderr,
        )
        return 1
    if args.faults is not None:
        # The isolation/min-updates gates above already proved the run
        # completed correctly; here we prove it did so *under fire* —
        # the seeded schedule must actually have injected something.
        fired = 0
        for section in (
            report.get("executor"),
            report.get("background_writer", {}).get("executor"),
        ):
            if section:
                fired += len(section.get("faults", {}).get("fired", []))
        if fired == 0:
            print(
                "SERVING GATE FAIL: --faults was set but no fault from "
                "the seeded schedule fired (pool replaced, or schedule "
                "beyond the command horizon)",
                file=sys.stderr,
            )
            return 1
        print(
            f"fault smoke ok: {fired} seeded fault(s) fired and the "
            f"serving gates still passed",
            file=sys.stderr,
        )
    summary = []
    if "writer" in report:
        summary.append(
            f"sync: {report['writer']['applied_updates']} updates as "
            f"{report['writer']['row_groups']} row groups in "
            f"{report['writer']['drain_seconds'] * 1e3:.0f} ms"
        )
    if "background_writer" in report:
        bg = report["background_writer"]
        summary.append(
            f"background: {bg['writer']['drained_updates']} updates over "
            f"{bg['writer']['drains']} drains, max snapshot pin "
            f"{bg['reader']['pin_max_seconds'] * 1e6:.0f} µs, top-k heap "
            f"hit rate {bg['topk']['heap_hit_rate']:.2f}"
        )
    print(
        "serving gate ok (pinned snapshots stayed bit-identical): "
        + "; ".join(summary)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
