"""Serving benchmark: pinned-snapshot reads under a live update stream.

The scenario the serving layer exists for: a reader pins a
:class:`~repro.serving.snapshot.SnapshotView`, then the single writer
drains ≥100 queued edge updates through the coalescing scheduler while
the reader keeps querying.  The benchmark measures both sides and —
crucially — *verifies* snapshot isolation: every reader query after the
drain must return the bit-identical frozen-version answer it returned
before the drain.

Workload: the same fig2a-style mid-evolution citation snapshot as the
perf gate (precompute ``S`` once, stream the next edge arrivals)::

    python -m repro.bench.serving --out BENCH_serving.json
    python -m repro.bench.serving --nodes 800 --updates 150

Exits non-zero if isolation is violated or fewer than ``--min-updates``
updates were applied.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..serving import SimRankService
from .perf_gate import _workload


def _time_queries(view, pairs, sources) -> Dict:
    """Run the read workload on a view; return answers and latencies."""
    pair_seconds: List[float] = []
    pair_answers: List[float] = []
    for a, b in pairs:
        started = time.perf_counter()
        pair_answers.append(view.similarity(a, b))
        pair_seconds.append(time.perf_counter() - started)
    source_seconds: List[float] = []
    source_answers: List[np.ndarray] = []
    for node in sources:
        started = time.perf_counter()
        source_answers.append(view.single_source(node))
        source_seconds.append(time.perf_counter() - started)
    return {
        "pair_answers": pair_answers,
        "source_answers": source_answers,
        "pair_mean_seconds": statistics.fmean(pair_seconds),
        "source_mean_seconds": statistics.fmean(source_seconds),
    }


def run_serving_bench(
    num_nodes: int = 1000,
    num_updates: int = 120,
    num_pair_queries: int = 200,
    num_source_queries: int = 20,
    references: int = 12,
    recency: float = 0.7,
    seed: int = 7,
    shard_rows: int = 128,
) -> Dict:
    """Run the pinned-reader / draining-writer scenario; return a report."""
    graph, config, initial, updates = _workload(
        num_nodes, num_updates, references, recency, seed
    )
    if len(updates) < num_updates:
        raise RuntimeError(
            f"workload produced only {len(updates)} updates; "
            f"lower --updates or raise --nodes"
        )
    service = SimRankService(
        graph, config, initial_scores=initial, shard_rows=shard_rows
    )

    rng = np.random.default_rng(seed)
    pairs = [
        (int(rng.integers(num_nodes)), int(rng.integers(num_nodes)))
        for _ in range(num_pair_queries)
    ]
    sources = [int(rng.integers(num_nodes)) for _ in range(num_source_queries)]

    # Reader pins a view and runs its query mix at the frozen version.
    view = service.snapshot()
    frozen_matrix = view.similarities()
    before = _time_queries(view, pairs, sources)

    # Writer: queue everything, then one coalesced drain.
    service.submit_many(updates)
    queued = service.pending
    started = time.perf_counter()
    groups = service.drain()
    drain_seconds = time.perf_counter() - started

    # Reader again, same pinned view: answers must be bit-identical.
    after = _time_queries(view, pairs, sources)
    pairs_frozen = before["pair_answers"] == after["pair_answers"]
    sources_frozen = all(
        np.array_equal(a, b)
        for a, b in zip(before["source_answers"], after["source_answers"])
    )
    matrix_frozen = bool(np.array_equal(view.similarities(), frozen_matrix))

    # A fresh pin sees the post-drain world.
    fresh = service.snapshot()
    advanced = fresh.version > view.version and not np.array_equal(
        fresh.similarities(), view.similarities()
    )

    engine = service.engine
    memory = service.memory_report()
    report = {
        "benchmark": "serving-snapshot-isolation",
        "workload": {
            "graph": "cith-like citation snapshot (fig2a protocol)",
            "num_nodes": num_nodes,
            "num_edges": engine.graph.num_edges,
            "num_updates": len(updates),
            "num_pair_queries": num_pair_queries,
            "num_source_queries": num_source_queries,
            "damping": config.damping,
            "iterations": config.iterations,
            "shard_rows": shard_rows,
            "seed": seed,
        },
        "writer": {
            "queued_updates": queued,
            "applied_updates": len(updates),
            "row_groups": groups,
            "coalescing_ratio": service.scheduler.stats.coalescing_ratio(),
            "drain_seconds": drain_seconds,
            "updates_per_second": len(updates) / drain_seconds,
        },
        "reader": {
            "pinned_version": view.version,
            "fresh_version": fresh.version,
            "pair_query_mean_seconds_before_drain": before["pair_mean_seconds"],
            "pair_query_mean_seconds_after_drain": after["pair_mean_seconds"],
            "single_source_mean_seconds_before_drain": before[
                "source_mean_seconds"
            ],
            "single_source_mean_seconds_after_drain": after[
                "source_mean_seconds"
            ],
        },
        "isolation": {
            "pair_queries_frozen": pairs_frozen,
            "single_source_frozen": sources_frozen,
            "matrix_read_stable": matrix_frozen,
            "fresh_snapshot_advanced": advanced,
        },
        "memory": {
            "score_buffer_bytes": memory["score_buffer_bytes"],
            "score_cow_copies": memory["score_cow_copies"],
            "snapshot_pinned_bytes": view.nbytes(),
            "transition_store_bytes": memory["transition_store_bytes"],
        },
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serving",
        description="Pinned-snapshot reads while the writer drains updates.",
    )
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--updates", type=int, default=120)
    parser.add_argument("--pair-queries", type=int, default=200)
    parser.add_argument("--source-queries", type=int, default=20)
    parser.add_argument("--shard-rows", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument(
        "--min-updates",
        type=int,
        default=100,
        help="fail unless at least this many updates were applied",
    )
    args = parser.parse_args(argv)

    report = run_serving_bench(
        num_nodes=args.nodes,
        num_updates=args.updates,
        num_pair_queries=args.pair_queries,
        num_source_queries=args.source_queries,
        seed=args.seed,
        shard_rows=args.shard_rows,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

    isolation = report["isolation"]
    violations = [key for key, ok in isolation.items() if not ok]
    if violations:
        print(f"SERVING GATE FAIL: {violations}", file=sys.stderr)
        return 1
    if report["writer"]["applied_updates"] < args.min_updates:
        print(
            f"SERVING GATE FAIL: only {report['writer']['applied_updates']} "
            f"updates applied (< {args.min_updates})",
            file=sys.stderr,
        )
        return 1
    print(
        f"serving gate ok: {report['writer']['applied_updates']} updates "
        f"drained as {report['writer']['row_groups']} row groups in "
        f"{report['writer']['drain_seconds'] * 1e3:.0f} ms while a pinned "
        f"snapshot stayed bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
