"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The concrete
subclasses mirror the major subsystems: graph mutation errors, shape or
configuration errors in the numeric code, and convergence failures in the
iterative solvers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors raised by graph construction or mutation."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id referenced by an operation does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeExistsError(GraphError, ValueError):
    """Attempted to insert an edge that is already present."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) already exists")
        self.source = source
        self.target = target


class EdgeNotFoundError(GraphError, KeyError):
    """Attempted to delete or reference an edge that is not present."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) does not exist")
        self.source = source
        self.target = target


class ConfigError(ReproError, ValueError):
    """A configuration value is outside its legal domain."""


class BackpressureError(ReproError, RuntimeError):
    """A bounded update queue rejected a submit under the ``error`` policy.

    Raised by the serving layer's background writer when the pending
    queue is at capacity and the configured backpressure policy is
    ``"error"``; the caller decides whether to retry, shed load, or
    block on :meth:`~repro.serving.writer.BackgroundWriter.flush`.
    """


class ClusterError(ReproError, RuntimeError):
    """The multi-process shard-worker pool failed an operation.

    Raised by :mod:`repro.cluster` when a worker process reports an
    application error, when the pool is used after :meth:`close`, or
    when a command cannot be delivered.
    """


class PoolUnrecoverableError(ClusterError):
    """The shard-worker pool can no longer serve mutating commands.

    The pool stops respawning workers and refuses every further
    command, but it deliberately *retains* its crash-replay anchor (the
    frozen replay-base segments plus the command journal) so a caller
    can rebuild an in-process score store from them — see
    :func:`repro.cluster.recovery.rebuild_score_store` and the serving
    layer's degraded read-only mode.
    """


class WorkerCrashError(PoolUnrecoverableError):
    """A shard worker died and could not be respawned within the limit.

    A *single* crash is handled transparently (the pool respawns the
    worker and replays its shards from the last published snapshot);
    this error means the respawn token bucket ran dry, so the pool can
    no longer guarantee the shard state and the caller must rebuild.
    """


class PoisonBatchError(PoolUnrecoverableError):
    """A journaled command killed its worker twice and was quarantined.

    Replaying the same command into a fresh worker reproduces the
    crash, so respawning again would only burn the respawn budget on a
    deterministic failure.  The pool quarantines the command — packed
    payload, journal position, and crash count ride on the exception's
    ``quarantine`` attribute for forensics — and declares itself
    unrecoverable.  Readers pinned on snapshots are unaffected
    (bit-stable), and the drain that carried the batch fails cleanly.
    """

    def __init__(self, message: str, quarantine: object = None) -> None:
        super().__init__(message)
        self.quarantine = quarantine


class DegradedModeError(ReproError, RuntimeError):
    """The serving layer is in degraded read-only mode.

    Raised on mutation attempts after the shard-worker pool became
    unrecoverable and the service froze itself onto the last published
    snapshot (``degraded_policy="reject"``; the ``"queue"`` policy
    buffers mutations instead, and ``"rebuild"`` fails over to an
    in-process score store and keeps writing).
    """


class ServiceClosedError(ReproError, RuntimeError):
    """The serving session was closed and no longer accepts requests.

    :meth:`~repro.serving.service.SimRankService.close` is idempotent
    and safe to call while a network front door is still serving; any
    request that races the shutdown gets this error instead of touching
    a released executor.  The wire taxonomy maps it to HTTP 503.
    """


class SessionNotFoundError(ReproError, KeyError):
    """A pinned-snapshot session id is unknown (expired or released).

    Raised by the front door's session manager; the wire taxonomy maps
    it to HTTP 404.  TTL expiry and explicit release both end a session
    permanently — clients re-pin by opening a new session.
    """

    def __init__(self, session_id: object) -> None:
        super().__init__(f"unknown or expired session {session_id!r}")
        self.session_id = session_id


class ProtocolError(ReproError, ValueError):
    """A malformed HTTP request or WebSocket frame reached the front door.

    Covers unparsable request lines, oversized headers/bodies, invalid
    JSON payloads, and RFC 6455 framing violations.  The wire taxonomy
    maps it to HTTP 400 (or a WebSocket protocol-error close).
    """


class DimensionError(ReproError, ValueError):
    """A matrix or vector argument has an incompatible shape."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance."""

    def __init__(self, message: str, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class CorruptLogError(ReproError, RuntimeError):
    """The write-ahead log is damaged beyond safe automatic repair.

    A torn tail — a partial final frame left by a crash mid-append — is
    *expected* damage and is silently truncated on recovery.  This
    error covers everything else: a CRC mismatch, a bad magic, or an
    impossible length in the *middle* of the log (valid frames follow
    the damage), where truncating would silently discard drains the
    service already acknowledged.  Recovery refuses to guess; the
    operator decides whether to restore from an older checkpoint or
    accept the loss explicitly.
    """

    def __init__(self, message: str, path: str = "", offset: int = -1) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset


class HistoryUnavailableError(ReproError, KeyError):
    """A time-travel read asked for a version outside the retained window.

    Raised by ``score_at(version)`` / ``top_k_at(version)`` when the
    requested version predates the oldest retained checkpoint (pruned
    by the retention policy), lies beyond the current live version, or
    falls in a gap left by a durability failure.  The wire taxonomy
    maps it to HTTP 404.
    """

    def __init__(self, message: str) -> None:
        # KeyError repr()s its message; store it plainly for str().
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message
