"""Shared configuration objects for SimRank computations.

The paper fixes two knobs for every algorithm: the damping factor
``C`` (written :math:`C \\in (0, 1)` in the paper, empirically 0.6--0.8) and
the number of iterations ``K``.  :class:`SimRankConfig` bundles the two,
validates them once at construction, and carries the derived iterative
accuracy guarantee ``C**K`` (Lizorkin et al.; footnote 18 of the paper
bounds ``max |M_K - M|`` by ``C**(K+1)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .exceptions import ConfigError

#: Default damping factor used throughout the paper's evaluation (Sec. VI-A).
DEFAULT_DAMPING = 0.6

#: Default iteration count used throughout the paper's evaluation (Sec. VI-A).
DEFAULT_ITERATIONS = 15


@dataclass(frozen=True)
class SimRankConfig:
    """Validated (damping, iterations) pair shared by all algorithms.

    Parameters
    ----------
    damping:
        The SimRank decay factor ``C``; must lie strictly in ``(0, 1)``.
    iterations:
        The number of fixed-point iterations ``K``; must be positive.

    Examples
    --------
    >>> cfg = SimRankConfig(damping=0.8, iterations=10)
    >>> round(cfg.accuracy_bound, 6)
    0.107374
    """

    damping: float = DEFAULT_DAMPING
    iterations: int = DEFAULT_ITERATIONS

    def __post_init__(self) -> None:
        if not (0.0 < self.damping < 1.0):
            raise ConfigError(
                f"damping factor must be in (0, 1), got {self.damping!r}"
            )
        if int(self.iterations) != self.iterations or self.iterations < 1:
            raise ConfigError(
                f"iteration count must be a positive integer, got {self.iterations!r}"
            )

    @property
    def accuracy_bound(self) -> float:
        """Upper bound ``C**K`` on the iterative truncation error."""
        return self.damping ** self.iterations

    def with_iterations(self, iterations: int) -> "SimRankConfig":
        """Return a copy of this configuration with a new iteration count."""
        return SimRankConfig(damping=self.damping, iterations=iterations)

    def with_damping(self, damping: float) -> "SimRankConfig":
        """Return a copy of this configuration with a new damping factor."""
        return SimRankConfig(damping=damping, iterations=self.iterations)


def iterations_for_accuracy(damping: float, epsilon: float) -> int:
    """Smallest ``K`` with ``damping**K <= epsilon``.

    This mirrors how the paper picks ``K = 15`` for ``C = 0.6`` to reach
    accuracy ``C**K ~= 0.0005`` (Sec. VI-A).

    >>> iterations_for_accuracy(0.6, 0.0005)
    15
    """
    if not (0.0 < damping < 1.0):
        raise ConfigError(f"damping factor must be in (0, 1), got {damping!r}")
    if not (0.0 < epsilon < 1.0):
        raise ConfigError(f"epsilon must be in (0, 1), got {epsilon!r}")
    import math

    return max(1, math.ceil(math.log(epsilon) / math.log(damping)))
