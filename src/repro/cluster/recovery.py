"""In-process rebuild from a failed pool's frozen base + journal.

When the shard-worker pool declares itself unrecoverable it *retains*
its crash-replay anchor: the replay base's frozen segments (never
written after the last checkpoint, by the copy-on-write invariant) and
the journal of every mutating command since.  Those two artifacts are
exactly a recipe for the current score state, and nothing about the
recipe requires worker processes — the journal's commands carry their
payloads in-band (batches keep their packed plans; dense commands keep
their blocks), and the parent can replay them against a plain
in-process :class:`~repro.executor.score_store.ScoreStore`.

:func:`rebuild_score_store` performs that replay.  Applying a plan to
the full row range is bit-identical to the union of the workers' row
slices (rows outside a plan's support receive nothing), so the rebuilt
store matches what the pool would have held — which is what lets the
serving layer's ``degraded_policy="rebuild"`` fail over to in-process
execution and keep writing without the pool.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ClusterError
from ..executor.score_store import ScoreStore
from .messages import (
    AddNodeCmd,
    AddRowsCmd,
    ApplyBatchCmd,
    ApplyPlanCmd,
    ReplaceRowsCmd,
    SetEntryCmd,
    TopKConfigCmd,
)

__all__ = ["rebuild_score_store"]


def _dense_from_blocks(cmds: dict, n: int, shard_rows: int) -> np.ndarray:
    """Reassemble one dense matrix from per-worker shard blocks.

    A block's row base is implied by its shard id — shards are
    contiguous ``shard_rows`` row windows — so the union of every
    worker's blocks tiles the full matrix the dense command carried.
    """
    dense = np.zeros((n, n), dtype=np.float64)
    for cmd in cmds.values():
        for gid, block in cmd.blocks.items():
            block = np.asarray(block, dtype=np.float64)
            base = gid * shard_rows
            dense[base : base + block.shape[0], : block.shape[1]] = block
    return dense


def _apply_entry(store: ScoreStore, entry, shard_rows: int) -> None:
    """Replay one journal entry against the in-process store."""
    cmds = entry.cmds
    cmd = next(iter(cmds.values())) if isinstance(cmds, dict) else cmds
    if isinstance(cmd, ApplyBatchCmd):
        if cmd.packed is None:
            raise ClusterError(
                "journaled batch lost its packed payload (pool bug)"
            )
        for plan in cmd.packed.plans():
            store.apply_plan(plan)
    elif isinstance(cmd, ApplyPlanCmd):
        store.apply_plan(cmd.plan)
    elif isinstance(cmd, SetEntryCmd):
        store.set_entry(cmd.row, cmd.col, cmd.value)
    elif isinstance(cmd, AddRowsCmd):
        store.add_dense(_dense_from_blocks(cmds, store.num_nodes, shard_rows))
    elif isinstance(cmd, ReplaceRowsCmd):
        store.replace_dense(
            _dense_from_blocks(cmds, store.num_nodes, shard_rows)
        )
    elif isinstance(cmd, AddNodeCmd):
        store.add_node()
    elif isinstance(cmd, TopKConfigCmd):
        pass  # index state is derived; the caller rebuilds top-k lazily
    else:
        raise ClusterError(
            f"journal replay met an unexpected command {type(cmd).__name__}"
        )


def rebuild_score_store(pool) -> ScoreStore:
    """Assemble an in-process :class:`ScoreStore` from a failed pool.

    Reads the replay base's frozen segments into a private dense
    matrix, shards it at the pool's granularity, and replays the full
    journal parent-side.  Safe while the pool is failed-but-not-closed;
    raises :class:`ClusterError` on a closed pool (its segments are
    gone).
    """
    base, journal, shard_rows = pool.recovery_state()
    n = int(base.num_nodes)
    scores = np.zeros((n, n), dtype=np.float64)
    for gid in sorted(base.segments):
        spec = base.segments[gid]
        block = pool.base_segment_array(spec)
        scores[spec.base : spec.base + spec.rows] = block[:, :n]
    # Rebuild at the pool's storage dtype.  Staging the base through a
    # float64 dense is lossless for every supported dtype (float32 ->
    # float64 -> float32 round-trips exactly), and replaying plans into
    # the reduced-precision store casts at scatter time exactly like the
    # workers did — so the rebuilt store is bit-identical per dtype.
    store = ScoreStore(
        scores,
        shard_rows=shard_rows,
        dtype=getattr(pool, "score_dtype", None),
    )
    for entry in journal:
        _apply_entry(store, entry, shard_rows)
    return store
