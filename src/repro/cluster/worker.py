"""Shard-worker process: owns a contiguous slice of score shards.

A worker holds its row-block shards in named shared-memory segments
(mapped by the parent for zero-copy reads), applies the row slice of
each broadcast :class:`~repro.incremental.plan.UpdatePlan` locally —
the union-support GEMM runs here, outside the parent's GIL — and
maintains its slice of the shard-local top-k heaps.  The main loop is a
strict request/response dispatcher over one pipe; see
:mod:`repro.cluster.messages` for the protocol.

Copy-on-write discipline: every shard starts (and restarts) in the
``shared`` state, so the first write after a spawn, respawn, or
:class:`~repro.cluster.messages.MarkSharedCmd` always lands in a fresh
segment.  That invariant is what makes crash recovery exact — the
segments named by the parent's replay base are never written again, so
a respawned worker can reload them and replay the journal to the
bit-identical current state.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..executor.topk_index import ShardTopK
from ..incremental.plan import PackedPlanBatch
from .messages import (
    AddNodeCmd,
    AddRowsCmd,
    ApplyBatchCmd,
    ApplyPlanCmd,
    MarkSharedCmd,
    MetricsCmd,
    PingCmd,
    Reply,
    ReplaceRowsCmd,
    SegmentSpec,
    SetEntryCmd,
    ShutdownCmd,
    TopKConfigCmd,
    TopKRescanCmd,
    WorkerInit,
    word_checksums,
)
from .shm import attach_segment, create_segment, ndarray_view, segment_nbytes


class _StagingReader:
    """Cached attachments to the parent's batch-staging segments.

    The pool cycles batches through a tiny reusable slot ring, so a
    worker normally re-reads the same one or two segment names forever;
    a name changes only when the parent grew a slot.  Attachments are
    cached by name and the cache is bounded — anything beyond the last
    few names is a dead slot the parent already replaced.
    """

    _CACHE_LIMIT = 4

    def __init__(self) -> None:
        self._segments: Dict[str, object] = {}

    def words(self, name: str, count: int) -> np.ndarray:
        """An int64 view of the first ``count`` words of segment ``name``."""
        segment = self._segments.get(name)
        if segment is None:
            segment = attach_segment(name)
            self._segments[name] = segment
            while len(self._segments) > self._CACHE_LIMIT:
                for old in list(self._segments):
                    if old != name:
                        self._segments.pop(old).close()
                        break
        return np.ndarray((count,), dtype=np.int64, buffer=segment.buf)

    def close(self) -> None:
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()


class _WorkerShard:
    """One owned shard: shared-memory buffer + sharing state."""

    __slots__ = ("base", "rows", "segment", "buffer", "name", "shared")

    def __init__(self, spec: SegmentSpec, segment, buffer) -> None:
        self.base = spec.base
        self.rows = spec.rows
        self.segment = segment
        self.buffer = buffer
        self.name = spec.name
        # Every (re)loaded shard is treated as snapshot-pinned: the
        # parent's replay base references exactly these segments.
        self.shared = True


class WorkerShardStore:
    """The worker-local slice of the sharded score matrix.

    Speaks enough of the :class:`~repro.executor.score_store.ScoreStore`
    surface (``shard_rows``, ``num_shards``, ``shard_block``, ``entry``,
    ``attach_topk``) for :class:`~repro.executor.topk_index.ShardTopK`
    to maintain the worker's heap slice against it unchanged.
    """

    def __init__(self, init: WorkerInit) -> None:
        self.worker_id = init.worker_id
        self.prefix = init.prefix
        self._shard_rows = init.shard_rows
        self._n = init.num_nodes
        self.shard_lo = init.shard_lo
        self.shard_hi = init.shard_hi
        self._generation = init.generation
        self._topk = None
        self._shards: Dict[int, _WorkerShard] = {}
        #: Segment events (COW / growth) since the last reply.
        self.events: Dict[int, SegmentSpec] = {}
        #: Per-shard scatter seconds since the last reply.
        self.timing: Dict[int, float] = {}
        #: COW clones since the last reply.
        self.cow_copies = 0
        #: Segment names created since the last reply.  The parent has
        #: never seen these, so if one is replaced again before the
        #: reply ships (e.g. column growth followed by row growth in
        #: one ``add_node``), the worker must unlink it itself —
        #: otherwise nothing ever would.
        self._fresh_names: set = set()
        for spec in init.segments:
            segment = attach_segment(spec.name)
            buffer = ndarray_view(
                segment,
                (spec.rows_cap, spec.cols_cap),
                writable=True,
                dtype=spec.dtype,
            )
            self._shards[spec.shard_id] = _WorkerShard(spec, segment, buffer)

    # -------------------------------------------------------------- #
    # ScoreStore surface for ShardTopK
    # -------------------------------------------------------------- #

    @property
    def shard_rows(self) -> int:
        return self._shard_rows

    @property
    def num_shards(self) -> int:
        return self.shard_hi

    @property
    def num_nodes(self) -> int:
        return self._n

    def attach_topk(self, index) -> None:
        self._topk = index

    def shard_block(self, shard_id: int) -> Tuple[int, np.ndarray]:
        shard = self._shards[shard_id]
        return shard.base, shard.buffer[: shard.rows, : self._n]

    def entry(self, row: int, col: int) -> float:
        shard = self._shards[row // self._shard_rows]
        return float(shard.buffer[row - shard.base, col])

    # -------------------------------------------------------------- #
    # Copy-on-write segment management
    # -------------------------------------------------------------- #

    def _next_name(self) -> str:
        self._generation += 1
        return f"{self.prefix}w{self.worker_id}g{self._generation}"

    def _spec(self, shard_id: int) -> SegmentSpec:
        shard = self._shards[shard_id]
        return SegmentSpec(
            shard_id=shard_id,
            name=shard.name,
            base=shard.base,
            rows=shard.rows,
            rows_cap=shard.buffer.shape[0],
            cols_cap=shard.buffer.shape[1],
            dtype=shard.buffer.dtype.name,
        )

    def _replace_segment(
        self, shard_id: int, shape: Tuple[int, int]
    ) -> np.ndarray:
        """Move a shard into a fresh segment of ``shape`` (copying).

        The replacement keeps the shard's storage dtype — copy-on-write
        and growth never change precision.
        """
        shard = self._shards[shard_id]
        name = self._next_name()
        dtype = shard.buffer.dtype
        segment = create_segment(name, segment_nbytes(shape, dtype=dtype))
        buffer = ndarray_view(segment, shape, writable=True, dtype=dtype)
        old = shard.buffer
        copy_rows = min(old.shape[0], shape[0])
        copy_cols = min(old.shape[1], shape[1])
        buffer[:copy_rows, :copy_cols] = old[:copy_rows, :copy_cols]
        if shard.name in self._fresh_names:
            # The old segment was born after the last reply, so the
            # parent never mapped it: unlink it here or leak it.
            self._fresh_names.discard(shard.name)
            shard.segment.close()
            try:
                shard.segment.unlink()
            except OSError:
                pass
        else:
            # Close our mapping only; the parent owns the segment's
            # lifetime (a snapshot may still pin it).
            shard.segment.close()
        shard.segment = segment
        shard.buffer = buffer
        shard.name = name
        shard.shared = False
        self._fresh_names.add(name)
        self.events[shard_id] = self._spec(shard_id)
        return buffer

    def _writable(self, shard_id: int) -> np.ndarray:
        shard = self._shards[shard_id]
        if shard.shared:
            self.cow_copies += 1
            return self._replace_segment(shard_id, shard.buffer.shape)
        return shard.buffer

    def mark_shared(self) -> None:
        for shard in self._shards.values():
            shard.shared = True

    def drain_feed(self) -> Tuple[Dict[int, float], List[SegmentSpec], int]:
        """Pop (timing, segment events, cow count) for the next reply."""
        timing, self.timing = self.timing, {}
        events, self.events = list(self.events.values()), {}
        cow, self.cow_copies = self.cow_copies, 0
        self._fresh_names.clear()  # the reply hands ownership to the parent
        return timing, events, cow

    # -------------------------------------------------------------- #
    # Mutations (the worker's half of the executor)
    # -------------------------------------------------------------- #

    def apply_plan(self, plan) -> None:
        """Apply the worker's row slices of one update plan.

        Identical arithmetic to
        :meth:`repro.executor.score_store.ScoreStore.apply_plan`: the
        same densified panels, the same single GEMM, and the same
        per-shard row-slice scatter-adds, so the result is bit-identical
        to the in-process executor on the rows this worker owns.
        """
        if plan.is_noop:
            return
        left, right = plan.panels()
        block = left @ right.T
        self._scatter_add(plan.rows_union, plan.cols_union, block)
        self._scatter_add(plan.cols_union, plan.rows_union, block.T)
        if self._topk is not None:
            self._topk.on_plan(plan)

    def _scatter_add(self, rows, cols, block) -> None:
        if rows.size == 0 or cols.size == 0:
            return
        first = max(int(rows[0]) // self._shard_rows, self.shard_lo)
        last = min(int(rows[-1]) // self._shard_rows, self.shard_hi - 1)
        for shard_id in range(first, last + 1):
            shard = self._shards.get(shard_id)
            if shard is None:
                continue
            lo = int(np.searchsorted(rows, shard.base))
            hi = int(np.searchsorted(rows, shard.base + shard.rows))
            if lo == hi:
                continue
            started = time.perf_counter()
            buffer = self._writable(shard_id)
            buffer[np.ix_(rows[lo:hi] - shard.base, cols)] += block[lo:hi]
            self.timing[shard_id] = self.timing.get(shard_id, 0.0) + (
                time.perf_counter() - started
            )

    def set_entry(self, row: int, col: int, value: float) -> None:
        shard_id = row // self._shard_rows
        if shard_id not in self._shards:
            return
        started = time.perf_counter()
        buffer = self._writable(shard_id)
        buffer[row - self._shards[shard_id].base, col] = value
        self.timing[shard_id] = self.timing.get(shard_id, 0.0) + (
            time.perf_counter() - started
        )
        if self._topk is not None:
            self._topk.on_entry(row, col)

    def add_rows(self, blocks: Dict[int, np.ndarray]) -> None:
        for shard_id, delta in blocks.items():
            shard = self._shards[shard_id]
            started = time.perf_counter()
            buffer = self._writable(shard_id)
            buffer[: shard.rows, : self._n] += delta
            self.timing[shard_id] = self.timing.get(shard_id, 0.0) + (
                time.perf_counter() - started
            )
        if self._topk is not None:
            self._topk.invalidate_all()

    def replace_rows(self, blocks: Dict[int, np.ndarray]) -> None:
        for shard_id, scores in blocks.items():
            shard = self._shards[shard_id]
            started = time.perf_counter()
            buffer = self._writable(shard_id)
            buffer[: shard.rows, : self._n] = scores
            self.timing[shard_id] = self.timing.get(shard_id, 0.0) + (
                time.perf_counter() - started
            )
        if self._topk is not None:
            self._topk.invalidate_all()

    def add_node(
        self,
        num_nodes: int,
        own_tail: bool,
        shard_hi: int,
        dtype: str = "float64",
    ) -> None:
        """Grow to ``num_nodes``: column capacity everywhere, rows at tail.

        Mirrors :meth:`ScoreStore.add_node`'s doubling policy, except
        growth allocates a fresh segment (shared memory cannot be
        resized in place).  New cells read as zero because segments are
        created zero-filled and copies never exceed the old window.
        """
        self._n = num_nodes
        self.shard_hi = shard_hi
        for shard_id, shard in list(self._shards.items()):
            if self._n > shard.buffer.shape[1]:
                self._replace_segment(
                    shard_id,
                    (
                        shard.buffer.shape[0],
                        max(2 * shard.buffer.shape[1], self._n),
                    ),
                )
        if own_tail:
            tail_id = (num_nodes - 1) // self._shard_rows
            tail = self._shards.get(tail_id)
            if tail is not None:
                if tail.rows + 1 > tail.buffer.shape[0]:
                    self._replace_segment(
                        tail_id,
                        (
                            min(
                                self._shard_rows,
                                max(2 * tail.buffer.shape[0], 1),
                            ),
                            tail.buffer.shape[1],
                        ),
                    )
                tail.rows += 1
                self.events[tail_id] = self._spec(tail_id)
            else:
                name = self._next_name()
                shape = (1, max(self._n, 1))
                segment = create_segment(
                    name, segment_nbytes(shape, dtype=dtype)
                )
                buffer = ndarray_view(
                    segment, shape, writable=True, dtype=dtype
                )
                spec = SegmentSpec(
                    shard_id=tail_id,
                    name=name,
                    base=num_nodes - 1,
                    rows=1,
                    rows_cap=1,
                    cols_cap=shape[1],
                    dtype=buffer.dtype.name,
                )
                shard = _WorkerShard(spec, segment, buffer)
                shard.shared = False  # fresh allocation, provably private
                self._shards[tail_id] = shard
                self._fresh_names.add(name)
                self.events[tail_id] = spec
        if self._topk is not None:
            self._topk.on_add_node()
            self._topk.set_shard_range(self.shard_lo, self.shard_hi)

    def nbytes(self) -> int:
        return sum(shard.buffer.nbytes for shard in self._shards.values())

    def close(self) -> None:
        for shard in self._shards.values():
            shard.segment.close()
        self._shards.clear()


def worker_loop(conn, init: WorkerInit) -> None:
    """The worker process entry point: dispatch commands until shutdown."""
    store = WorkerShardStore(init)
    staging = _StagingReader()
    index: Optional[ShardTopK] = None
    transition_version: Optional[int] = None
    if init.topk is not None:
        k, capacity = init.topk
        index = ShardTopK(
            store,
            k=k,
            capacity=capacity,
            shard_range=(store.shard_lo, store.shard_hi),
            track_changes=True,
        )
    try:
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break
            started = time.perf_counter()
            reply = Reply(worker_id=store.worker_id, ok=True)
            try:
                if isinstance(cmd, ShutdownCmd):
                    conn.send(reply)
                    break
                elif isinstance(cmd, ApplyPlanCmd):
                    store.apply_plan(cmd.plan)
                elif isinstance(cmd, ApplyBatchCmd):
                    # One round trip per drain: rebuild the batch — from
                    # the shared-memory staging words (zero-copy views)
                    # on the live path, in-band on crash replay — and
                    # apply its plans strictly in order with the exact
                    # per-plan arithmetic of the unbatched path.
                    packed = cmd.packed
                    if packed is None:
                        words = staging.words(cmd.staging, cmd.words)
                        if cmd.checksums is not None:
                            observed = word_checksums(
                                words, cmd.count, cmd.sections
                            )
                            if observed != tuple(cmd.checksums):
                                # Corrupted staging slot: refuse to
                                # apply anything (a half-applied batch
                                # would be unrecoverable) and flag the
                                # parent to resend the intact journal
                                # copy in-band.
                                reply.ok = False
                                reply.corrupt = True
                                reply.error = (
                                    "staged batch checksum mismatch: "
                                    f"expected {tuple(cmd.checksums)}, "
                                    f"observed {observed}"
                                )
                                words = None
                        if words is not None:
                            packed = PackedPlanBatch.from_words(
                                words, cmd.count, cmd.sections
                            )
                    if packed is not None:
                        for plan in packed.plans():
                            store.apply_plan(plan)
                elif isinstance(cmd, SetEntryCmd):
                    store.set_entry(cmd.row, cmd.col, cmd.value)
                elif isinstance(cmd, AddRowsCmd):
                    store.add_rows(cmd.blocks)
                elif isinstance(cmd, ReplaceRowsCmd):
                    store.replace_rows(cmd.blocks)
                elif isinstance(cmd, AddNodeCmd):
                    store.add_node(
                        cmd.num_nodes, cmd.own_tail, cmd.shard_hi, cmd.dtype
                    )
                    if cmd.transitions is not None:
                        transition_version = int(cmd.transitions["version"])
                elif isinstance(cmd, MarkSharedCmd):
                    store.mark_shared()
                elif isinstance(cmd, TopKConfigCmd):
                    index = ShardTopK(
                        store,
                        k=cmd.k,
                        capacity=cmd.capacity,
                        shard_range=(store.shard_lo, store.shard_hi),
                        track_changes=True,
                    )
                elif isinstance(cmd, TopKRescanCmd):
                    if index is None:
                        raise RuntimeError("top-k index not configured")
                    reply.data = index.rescan_shards(cmd.shard_ids)
                elif isinstance(cmd, MetricsCmd):
                    reply.data = {
                        "worker_id": store.worker_id,
                        "num_shards": len(store._shards),
                        "shard_range": (store.shard_lo, store.shard_hi),
                        "buffer_bytes": store.nbytes(),
                        "transition_version": transition_version,
                        "topk_stats": (
                            vars(index.stats).copy() if index else None
                        ),
                    }
                elif isinstance(cmd, PingCmd):
                    pass
                else:
                    raise RuntimeError(f"unknown command {cmd!r}")
            except Exception:
                reply.ok = False
                reply.error = traceback.format_exc()
            timing, events, cow = store.drain_feed()
            reply.seconds = time.perf_counter() - started
            reply.per_shard_seconds = timing
            reply.segments = events
            reply.cow_copies = cow
            if index is not None:
                reply.topk_changes = index.collect_changes()
            conn.send(reply)
    finally:
        staging.close()
        store.close()
        conn.close()
