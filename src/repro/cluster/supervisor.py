"""Worker supervision: adaptive deadlines, respawn budgets, quarantine.

PR4 gave the pool exactly-once crash replay with two blunt knobs: a
fixed per-command reply timeout and a hard per-worker respawn counter.
This module replaces both with a supervision layer:

* :class:`AdaptiveDeadline` — per-worker reply deadlines derived from
  the observed per-unit apply-time distribution (p99 with a multiplier
  and a floor), so a slow box widens its own deadlines instead of
  false-tripping, and a genuinely hung worker is detected in a few
  multiples of its normal latency rather than after a 2-minute constant.
* :class:`RespawnBudget` — a token bucket over respawns with
  exponential backoff + deterministic jitter between attempts.  A burst
  of crashes drains the bucket and declares the pool unrecoverable; a
  long-running pool that crashes once an hour refills and keeps going.
* :class:`WorkerHealth` — a tiny per-worker state machine
  (``healthy -> suspect -> respawning -> healthy | dead``) surfaced in
  :meth:`ShardWorkerPool.apply_report` so operators can see which
  worker is misbehaving before it dies.
* :class:`QuarantinedBatch` — the poison-batch record: a journaled
  command that killed its worker twice is captured with its packed
  payload and journal position, and the pool fails cleanly instead of
  burning the rest of the budget replaying a deterministic crash.

Everything here is plain bookkeeping — no threads, no signals; the pool
drives it synchronously from its dispatch/receive path.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "AdaptiveDeadline",
    "QuarantinedBatch",
    "RespawnBudget",
    "WorkerHealth",
    "WorkerSupervisor",
    "DEFAULT_DEADLINE_FLOOR",
    "DEFAULT_DEADLINE_MULTIPLIER",
]

# Deadline = clamp(multiplier * p99(per-unit seconds) * units,
#                  floor, command_timeout * units).
# The floor absorbs 1-core CI boxes where a worker can be descheduled
# for whole seconds; the command_timeout ceiling preserves the old
# worst-case behaviour as an upper bound.
DEFAULT_DEADLINE_FLOOR = 5.0
DEFAULT_DEADLINE_MULTIPLIER = 8.0
DEFAULT_MIN_SAMPLES = 8
DEFAULT_SAMPLE_WINDOW = 128

DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0
DEFAULT_REFILL_SECONDS = 60.0

HEALTH_STATES = ("healthy", "suspect", "respawning", "dead")


class AdaptiveDeadline:
    """Per-worker reply deadlines from observed apply-time percentiles.

    Each completed command contributes one *per-unit* latency sample
    (elapsed seconds divided by the command's unit count — plans in a
    batch, 1 for control commands).  Once a worker has enough samples
    the deadline for a command of ``units`` units is::

        min(command_timeout * units,
            max(floor, multiplier * p99_per_unit * units))

    Below ``min_samples`` — and for the first command after a (re)spawn,
    where a cold interpreter is still importing numpy — the fallback
    ``command_timeout * units`` is used unchanged.
    """

    def __init__(
        self,
        command_timeout: float,
        floor: float = DEFAULT_DEADLINE_FLOOR,
        multiplier: float = DEFAULT_DEADLINE_MULTIPLIER,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        window: int = DEFAULT_SAMPLE_WINDOW,
    ) -> None:
        self.command_timeout = float(command_timeout)
        self.floor = float(floor)
        self.multiplier = float(multiplier)
        self.min_samples = int(min_samples)
        self._samples: Dict[int, Deque[float]] = {}
        self._window = int(window)
        self._cold: Dict[int, bool] = {}

    def observe(self, worker_id: int, seconds: float, units: int = 1) -> None:
        """Record one reply: ``seconds`` elapsed for ``units`` units."""
        per_unit = float(seconds) / max(1, int(units))
        bucket = self._samples.setdefault(
            worker_id, deque(maxlen=self._window)
        )
        bucket.append(per_unit)
        self._cold[worker_id] = False

    def mark_cold(self, worker_id: int) -> None:
        """The worker just (re)spawned: next deadline uses the fallback."""
        self._cold[worker_id] = True

    def deadline(self, worker_id: int, units: int = 1) -> float:
        """Reply deadline in seconds for a command of ``units`` units."""
        units = max(1, int(units))
        fallback = self.command_timeout * units
        bucket = self._samples.get(worker_id)
        if (
            self._cold.get(worker_id, True)
            or bucket is None
            or len(bucket) < self.min_samples
        ):
            return fallback
        ordered = sorted(bucket)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        return min(fallback, max(self.floor, self.multiplier * p99 * units))

    def samples(self, worker_id: int) -> int:
        bucket = self._samples.get(worker_id)
        return 0 if bucket is None else len(bucket)


class RespawnBudget:
    """Token bucket over respawns with exponential backoff + jitter.

    The bucket starts full at ``capacity`` tokens and refills one token
    per ``refill_seconds`` of wall clock.  Each respawn spends a token;
    an empty bucket means the crash rate has exceeded what replay can
    plausibly mask, and the pool gives up.  Between consecutive spends
    the backoff doubles from ``base`` up to ``cap`` seconds, with a
    deterministic seeded jitter so co-located pools don't thundering-herd
    their respawns.
    """

    def __init__(
        self,
        capacity: int,
        base: float = DEFAULT_BACKOFF_BASE,
        cap: float = DEFAULT_BACKOFF_CAP,
        refill_seconds: float = DEFAULT_REFILL_SECONDS,
        seed: int = 0,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.capacity = max(0, int(capacity))
        self.base = float(base)
        self.cap = float(cap)
        self.refill_seconds = float(refill_seconds)
        self._tokens = float(self.capacity)
        self._clock = clock
        self._sleep = sleep
        self._last = clock()
        self._attempt = 0
        self._spent = 0
        # xorshift-ish deterministic jitter stream; no global RNG state.
        self._jitter_state = (int(seed) * 2654435761 + 1) & 0xFFFFFFFF

    def _refill(self) -> None:
        now = self._clock()
        if self.refill_seconds > 0:
            self._tokens = min(
                float(self.capacity),
                self._tokens + (now - self._last) / self.refill_seconds,
            )
        self._last = now

    def _next_jitter(self) -> float:
        x = self._jitter_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._jitter_state = x
        return x / 0xFFFFFFFF

    def try_spend(self) -> bool:
        """Spend one token; ``False`` when the bucket is dry."""
        self._refill()
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        self._spent += 1
        return True

    def backoff(self) -> float:
        """Back off before the next respawn; returns the seconds slept."""
        delay = min(self.cap, self.base * (2.0**self._attempt))
        delay *= 1.0 + self._next_jitter()
        self._attempt += 1
        self._sleep(delay)
        return delay

    def reset_backoff(self) -> None:
        """A worker survived a full command: crashes are not cascading."""
        self._attempt = 0

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    @property
    def spent(self) -> int:
        return self._spent


@dataclass
class WorkerHealth:
    """One worker's supervision state and lifetime counters."""

    worker_id: int
    state: str = "healthy"
    respawns: int = 0
    suspect_events: int = 0
    last_reply_seconds: float = 0.0

    def mark(self, state: str) -> None:
        if state not in HEALTH_STATES:
            raise ValueError(f"unknown health state {state!r}")
        if state == "suspect" and self.state != "suspect":
            self.suspect_events += 1
        self.state = state


@dataclass(frozen=True)
class QuarantinedBatch:
    """A journaled command that deterministically kills its workers."""

    journal_index: int
    worker_ids: Tuple[int, ...]
    count: int
    crashes: int
    payload: object = field(repr=False, default=None)

    def describe(self) -> str:
        return (
            f"journal[{self.journal_index}] x{self.count} plans "
            f"(workers {list(self.worker_ids)}, {self.crashes} crashes)"
        )


class WorkerSupervisor:
    """Facade the pool drives: deadlines + budget + health + quarantine.

    ``enabled=False`` keeps the exact pre-supervision behaviour (fixed
    ``command_timeout * units`` deadlines, per-worker respawn counter
    semantics preserved by the budget's capacity) so the bench can
    measure the supervised/unsupervised overhead ratio honestly.
    """

    def __init__(
        self,
        num_workers: int,
        command_timeout: float,
        max_respawns: int,
        enabled: bool = True,
        deadline_floor: float = DEFAULT_DEADLINE_FLOOR,
        deadline_multiplier: float = DEFAULT_DEADLINE_MULTIPLIER,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        refill_seconds: float = DEFAULT_REFILL_SECONDS,
        seed: int = 0,
    ) -> None:
        self.enabled = bool(enabled)
        self._deadlines = AdaptiveDeadline(
            command_timeout,
            floor=deadline_floor,
            multiplier=deadline_multiplier,
        )
        # The budget is shared across workers: capacity scales with the
        # pool so one flaky worker can't starve the others' allowance.
        self.budget = RespawnBudget(
            capacity=max_respawns * max(1, num_workers),
            base=backoff_base,
            cap=backoff_cap,
            refill_seconds=refill_seconds,
            seed=seed,
        )
        self.health: Dict[int, WorkerHealth] = {
            wid: WorkerHealth(wid) for wid in range(num_workers)
        }
        self.quarantined: List[QuarantinedBatch] = []

    # ---------------------------------------------------------- #
    # Deadlines
    # ---------------------------------------------------------- #

    def deadline(self, worker_id: int, units: int = 1) -> float:
        if not self.enabled:
            return self._deadlines.command_timeout * max(1, int(units))
        return self._deadlines.deadline(worker_id, units)

    def observe_reply(
        self, worker_id: int, seconds: float, units: int = 1
    ) -> None:
        health = self._health(worker_id)
        health.last_reply_seconds = float(seconds)
        if health.state in ("suspect", "respawning"):
            health.mark("healthy")
        if self.enabled:
            self._deadlines.observe(worker_id, seconds, units)
        self.budget.reset_backoff()

    def mark_cold(self, worker_id: int) -> None:
        self._deadlines.mark_cold(worker_id)

    # ---------------------------------------------------------- #
    # Health transitions
    # ---------------------------------------------------------- #

    def _health(self, worker_id: int) -> WorkerHealth:
        return self.health.setdefault(worker_id, WorkerHealth(worker_id))

    def mark_suspect(self, worker_id: int) -> None:
        health = self._health(worker_id)
        if health.state == "healthy":
            health.mark("suspect")

    def begin_respawn(self, worker_id: int) -> bool:
        """Spend a token and back off; ``False`` when the budget is dry."""
        health = self._health(worker_id)
        if not self.budget.try_spend():
            health.mark("dead")
            return False
        health.mark("respawning")
        health.respawns += 1
        if self.enabled:
            self.budget.backoff()
        self._deadlines.mark_cold(worker_id)
        return True

    def finish_respawn(self, worker_id: int) -> None:
        self._health(worker_id).mark("healthy")

    def mark_dead(self, worker_id: int) -> None:
        self._health(worker_id).mark("dead")

    # ---------------------------------------------------------- #
    # Quarantine
    # ---------------------------------------------------------- #

    def quarantine(self, record: QuarantinedBatch) -> None:
        self.quarantined.append(record)

    # ---------------------------------------------------------- #
    # Reporting
    # ---------------------------------------------------------- #

    def report(self) -> dict:
        states = {
            wid: health.state for wid, health in sorted(self.health.items())
        }
        return {
            "enabled": self.enabled,
            "worker_states": states,
            "suspect_events": sum(
                h.suspect_events for h in self.health.values()
            ),
            "respawn_tokens": round(self.budget.tokens, 3),
            "respawns_spent": self.budget.spent,
            "quarantined_batches": len(self.quarantined),
            "deadline_floor": self._deadlines.floor,
            "deadline_samples": {
                wid: self._deadlines.samples(wid)
                for wid in sorted(self.health)
            },
        }
