"""The parent↔worker wire protocol of the shard-worker pool.

Every message is a small picklable dataclass sent over a duplex
:func:`multiprocessing.Pipe`.  The protocol is strictly
request/response and per-worker FIFO: the parent sends one command, the
worker applies it and answers with one :class:`Reply`.  Large state
never rides the pipe — score shards live in named shared-memory
segments (:mod:`repro.cluster.shm`), so commands carry only
:class:`~repro.incremental.plan.UpdatePlan` factors, packed transition
payloads, and segment *names*.

Replies double as the pool's observability feed: each mutating command
returns per-shard apply wall time (so the bench can attribute drain
latency to workers vs IPC), copy-on-write segment events (so the parent
mirror tracks buffer replacements), and per-shard top-k candidate
deltas (so the parent can serve rankings without a round trip per
query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


def word_checksums(
    words: "np.ndarray", count: int, sections: Tuple[int, int, int]
) -> Tuple[int, ...]:
    """Per-section XOR checksums over a packed batch's word block.

    The packed layout is five contiguous sections — targets, ranks,
    lens, idx, val-as-int64 — so five independent checksums localize a
    corruption to the section it hit (and a flipped word can never
    cancel against another section).  XOR reduction is order-free and
    runs at memory bandwidth, keeping the staging hot path cheap.
    """
    lens_len, idx_len, val_len = sections
    bounds = [0, count, 2 * count, 2 * count + lens_len]
    bounds.append(bounds[-1] + idx_len)
    bounds.append(bounds[-1] + val_len)
    sums = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        section = words[lo:hi]
        if section.size == 0:
            sums.append(0)
        else:
            sums.append(int(np.bitwise_xor.reduce(section)))
    return tuple(sums)


@dataclass(frozen=True)
class SegmentSpec:
    """Where one score shard lives: segment name plus geometry.

    ``base``/``rows`` are the shard's global row window; ``rows_cap`` ×
    ``cols_cap`` is the allocated segment shape (growth headroom).
    ``dtype`` is the segment's storage dtype — the wire-level carrier
    of the precision seam, so crash replay and respawns rebuild shards
    at the precision they were demoted to (the default keeps old
    pickles readable).
    """

    shard_id: int
    name: str
    base: int
    rows: int
    rows_cap: int
    cols_cap: int
    dtype: str = "float64"


@dataclass
class WorkerInit:
    """Everything a (re)spawned worker needs to own its shard slice."""

    worker_id: int
    prefix: str
    shard_rows: int
    num_nodes: int
    shard_lo: int
    shard_hi: int
    segments: List[SegmentSpec]
    #: (k, capacity) when a top-k index was configured before spawn.
    topk: Optional[Tuple[int, int]] = None
    #: Generation counter start for segment names (monotone across
    #: respawns so a respawned worker never reuses a dead name).
    generation: int = 0


# ------------------------------------------------------------------ #
# Commands (parent -> worker)
# ------------------------------------------------------------------ #


@dataclass
class ApplyPlanCmd:
    """Apply one kernel update plan to the worker's row shards."""

    plan: object  # UpdatePlan (kept loose to avoid import cycles)
    #: Optional request-trace id (:mod:`repro.telemetry`): the drain
    #: that produced this plan was tagged by a traced submission, and
    #: the parent materialises worker-side apply spans under this id
    #: from the reply's worker-measured seconds (clock domains are
    #: never mixed).  Defaults keep old pickles readable.
    trace_id: Optional[str] = None


@dataclass
class ApplyBatchCmd:
    """Apply a whole drain's plans — one round trip per batch.

    The payload is a :class:`~repro.incremental.plan.PackedPlanBatch`
    flattened to one contiguous 8-byte-word block, delivered one of two
    ways:

    * **staged** (``staging`` set, ``packed`` None) — the live path.
      The parent wrote the words into a reusable shared-memory staging
      segment; only this tiny command (name + section lengths) crosses
      the pipe, and the worker rebuilds the plans as zero-copy views
      over the segment.
    * **inline** (``packed`` set, ``staging`` None) — the crash-replay
      path.  Staging segments are overwritten by later batches, so the
      journal retains the packed arrays themselves and replay ships
      them in-band.

    Workers apply the batch's plans strictly in order with the same
    per-plan arithmetic as :class:`ApplyPlanCmd` and send **one** merged
    reply (summed per-shard apply seconds, all segment/COW events, the
    union of top-k candidate deltas).
    """

    count: int
    #: ``(lens, idx, val)`` element counts of the packed sections.
    sections: Tuple[int, int, int]
    #: Staging segment name (live path), or None.
    staging: Optional[str] = None
    #: Words the payload occupies in the staging segment.
    words: int = 0
    #: In-band PackedPlanBatch (replay path), or None.
    packed: Optional[object] = None
    #: Per-section XOR checksums of the staged words (live path only;
    #: ``None`` disables verification, e.g. unsupervised pools and the
    #: inline replay path where the pipe itself is integrity-checked).
    checksums: Optional[Tuple[int, ...]] = None
    #: Optional request-trace id carried in the command header (see
    #: :class:`ApplyPlanCmd.trace_id`).
    trace_id: Optional[str] = None


@dataclass
class SetEntryCmd:
    """Write one score entry (node-arrival self-score)."""

    row: int
    col: int
    value: float


@dataclass
class AddRowsCmd:
    """``S[shard rows] += delta`` per shard (the dense Inc-uSR path)."""

    blocks: Dict[int, object]  # shard_id -> ndarray delta (live window)


@dataclass
class ReplaceRowsCmd:
    """Overwrite shard rows (batch recomputation path)."""

    blocks: Dict[int, object]


@dataclass
class AddNodeCmd:
    """Grow the node universe to ``num_nodes``.

    ``own_tail`` tells the worker whether the (possibly new) tail shard
    belongs to its slice; ``shard_hi`` is its updated range end.
    ``transitions`` carries the parent's
    :meth:`~repro.linalg.qstore.TransitionStore.export_packed` payload —
    the topology-change shipping contract — so workers always hold a
    reconstructible copy of the ``Q`` their scores correspond to.
    """

    num_nodes: int
    own_tail: bool
    shard_hi: int
    transitions: Optional[dict] = None
    #: Storage dtype for a freshly opened tail shard (existing shards
    #: keep their own dtype through growth).
    dtype: str = "float64"


@dataclass
class MarkSharedCmd:
    """Pin every shard for an outstanding snapshot (next write COWs)."""


@dataclass
class TopKConfigCmd:
    """(Re)build the worker's shard-slice top-k index."""

    k: int
    capacity: int


@dataclass
class TopKRescanCmd:
    """Re-scan specific shards; reply with their full candidate sets."""

    shard_ids: List[int]


@dataclass
class MetricsCmd:
    """Report worker-side gauges (segment bytes, top-k stats, Q version)."""


@dataclass
class PingCmd:
    """Liveness probe."""


@dataclass
class ShutdownCmd:
    """Acknowledge and exit the worker loop."""


# ------------------------------------------------------------------ #
# Replies (worker -> parent)
# ------------------------------------------------------------------ #


@dataclass
class Reply:
    """One command's outcome plus the worker's observability feed."""

    worker_id: int
    ok: bool
    error: Optional[str] = None
    #: The staged batch failed checksum verification — the parent should
    #: resend the intact journal copy in-band rather than treat this as
    #: an application error.
    corrupt: bool = False
    #: Wall-clock seconds the worker spent handling the command.
    seconds: float = 0.0
    #: Scatter wall time per (global) shard id for mutating commands.
    per_shard_seconds: Dict[int, float] = field(default_factory=dict)
    #: Segments that moved (copy-on-write / growth) while handling.
    segments: List[SegmentSpec] = field(default_factory=list)
    #: Copy-on-write clones performed while handling.
    cow_copies: int = 0
    #: Per-shard top-k candidate deltas: ``"all"``, ``None``, or a dict
    #: mapping global shard id -> full candidate list | None (dirty).
    topk_changes: object = None
    #: Command-specific payload (rescan candidates, metrics, ...).
    data: object = None
