"""Shared-memory segment plumbing for the shard-worker pool.

Score shards crossing the process boundary live in named
:class:`multiprocessing.shared_memory.SharedMemory` segments: workers
apply update plans into them, and the parent maps the same segments so
snapshot reads are **zero-copy** — pinning a view never ships a byte
over a pipe.  Copy-on-write works by *segment replacement*: a worker
that must write a snapshot-pinned shard creates a fresh segment, copies
the shard into it, and reports the new name in its reply; the parent
keeps the old segment mapped for as long as any snapshot references it.

Lifecycle rules (these matter — the stdlib resource tracker would
otherwise unlink segments out from under live readers):

* The **parent owns every segment's lifetime**: it explicitly unlinks a
  segment when the last reference (live mirror, snapshot pin, or
  replay base) drops.
* Workers spawned through a :mod:`multiprocessing` context **share the
  parent's resource-tracker process** (the tracker fd rides in the
  spawn preparation data), which gives exactly the semantics the pool
  needs with no extra bookkeeping: a SIGKILL'd worker cannot trigger
  any unlink (the shared tracker outlives it), every create/attach
  registration lands in the one shared cache, and ``/dev/shm`` is still
  swept by the tracker if the whole process tree dies.  Do **not**
  manually unregister segments anywhere — the cache is shared, so a
  worker-side unregister would erase the parent's crash-cleanup entry.
* Segment names share a per-pool prefix so :func:`sweep_segments` can
  remove anything a crashed worker managed to create but never report.
"""

from __future__ import annotations

import json
import os
import tempfile
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

from ..dtypes import DEFAULT_FLOAT_DTYPE, resolve_dtype

#: Backwards-compatible alias; the definition lives in
#: :mod:`repro.dtypes` (one source of truth for the dtype seam).
_FLOAT_DTYPE = DEFAULT_FLOAT_DTYPE

#: Per-pool manifest files live here: one tiny JSON per live pool
#: recording ``{pid, prefix}`` so a later process can tell which
#: ``/dev/shm`` prefixes belong to dead owners and sweep them.
MANIFEST_DIR = os.path.join(tempfile.gettempdir(), "repro-shm")


def pool_prefix() -> str:
    """A process-unique segment-name prefix for one pool instance."""
    return f"repro{os.getpid():x}x{os.urandom(4).hex()}"


def create_segment(name: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create a named zero-filled segment of at least ``nbytes``."""
    return shared_memory.SharedMemory(name=name, create=True, size=max(1, int(nbytes)))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name."""
    return shared_memory.SharedMemory(name=name, create=False)


def ndarray_view(
    segment: shared_memory.SharedMemory,
    shape: Tuple[int, int],
    writable: bool,
    dtype=None,
) -> np.ndarray:
    """A C-ordered float array over the segment's buffer.

    ``dtype`` is the segment's storage dtype (float64 default); both
    sides of a segment must agree on it — the pool ships it on every
    :class:`~repro.cluster.messages.SegmentSpec`.
    """
    view = np.ndarray(shape, dtype=resolve_dtype(dtype), buffer=segment.buf)
    view.flags.writeable = writable
    return view


def segment_nbytes(shape: Tuple[int, int], dtype=None) -> int:
    """Bytes needed for a float array of ``shape`` at ``dtype``."""
    itemsize = resolve_dtype(dtype).itemsize
    return int(np.prod(shape, dtype=np.int64)) * itemsize


def sweep_segments(prefix: str) -> int:
    """Best-effort removal of leftover segments with ``prefix`` (Linux).

    Covers the narrow crash window where a worker created a
    copy-on-write segment but died before reporting its name: nothing
    references it, so the pool sweeps by name prefix at close time.
    Returns the number of segments removed.
    """
    removed = 0
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return removed
    for entry in os.listdir(shm_dir):
        if not entry.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
            removed += 1
        except OSError:
            pass
    return removed


# ------------------------------------------------------------------ #
# Orphan reaper: per-pool manifests + stale-prefix sweeps
# ------------------------------------------------------------------ #
#
# The tracker-based cleanup above only works while the process tree is
# cooperating; a SIGKILL'd *session* (the parent itself) leaves its
# whole prefix behind.  Each pool therefore registers a manifest file
# recording its pid and prefix.  The next pool construction (or an
# explicit reap) scans the manifests, probes each recorded pid, and
# sweeps the prefixes of dead owners.


def register_pool(prefix: str) -> str:
    """Record a live pool's prefix; returns the manifest path."""
    os.makedirs(MANIFEST_DIR, exist_ok=True)
    path = os.path.join(MANIFEST_DIR, f"{prefix}.json")
    payload = {"pid": os.getpid(), "prefix": prefix}
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
    return path


def unregister_pool(manifest_path: str) -> None:
    """Remove a pool's manifest at orderly close."""
    try:
        os.unlink(manifest_path)
    except OSError:
        pass


def register_durability(data_dir: str) -> str:
    """Record a live durability session's data dir; returns the path.

    Durability manifests carry ``kind: "durability"`` so the reaper can
    tell them from pool manifests (which predate the ``kind`` field and
    are treated as pools when it is absent).  A dead owner's residue —
    its ``wal.lock`` and any ``checkpoints/tmp-*`` scratch dirs a
    SIGKILL interrupted mid-checkpoint — is reclaimed by
    :func:`reap_orphans`, exactly like orphaned ``/dev/shm`` prefixes.
    """
    os.makedirs(MANIFEST_DIR, exist_ok=True)
    token = f"durability{os.getpid():x}x{os.urandom(4).hex()}"
    path = os.path.join(MANIFEST_DIR, f"{token}.json")
    payload = {
        "pid": os.getpid(),
        "kind": "durability",
        "data_dir": os.path.abspath(data_dir),
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)
    return path


def _sweep_durability(data_dir: str, owner_pid: int) -> int:
    """Reclaim a dead durability owner's lock + checkpoint scratch dirs.

    Only removes the ``wal.lock`` when it still names a dead pid (the
    dead owner's, or a successor's that also died) — a live successor
    process may already hold a fresh lock in the same data dir, and
    that one must survive the sweep.  Returns the number of filesystem
    entries reclaimed.
    """
    removed = 0
    lock_path = os.path.join(data_dir, "wal.lock")
    try:
        with open(lock_path, "r", encoding="utf-8") as fh:
            lock_pid = int(fh.read().strip() or -1)
    except (OSError, ValueError):
        lock_pid = None
    if lock_pid is not None and not _pid_alive(lock_pid):
        try:
            os.unlink(lock_path)
            removed += 1
        except OSError:
            pass
    tmp_root = os.path.join(data_dir, "checkpoints")
    try:
        entries = os.listdir(tmp_root)
    except OSError:
        entries = []
    for entry in entries:
        if not entry.startswith("tmp-"):
            continue
        scratch = os.path.join(tmp_root, entry)
        for dirpath, dirnames, filenames in os.walk(scratch, topdown=False):
            for name in filenames:
                try:
                    os.unlink(os.path.join(dirpath, name))
                except OSError:
                    pass
            for name in dirnames:
                try:
                    os.rmdir(os.path.join(dirpath, name))
                except OSError:
                    pass
        try:
            os.rmdir(scratch)
            removed += 1
        except OSError:
            pass
    return removed


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def reap_orphans() -> int:
    """Sweep segments whose owning pool process is gone.

    Scans every manifest in :data:`MANIFEST_DIR`; for each one whose
    recorded pid no longer exists, sweeps its residue — the segment
    prefix from ``/dev/shm`` for pool manifests, the stale ``wal.lock``
    and orphaned ``checkpoints/tmp-*`` scratch dirs for durability
    manifests — and removes the manifest.  Returns the number of
    entries removed.  Called at pool/durability startup and via
    ``atexit`` so orphans from SIGKILL'd sessions are cleaned by the
    next session rather than by chance.
    """
    removed = 0
    if not os.path.isdir(MANIFEST_DIR):
        return removed
    for entry in os.listdir(MANIFEST_DIR):
        if not entry.endswith(".json"):
            continue
        path = os.path.join(MANIFEST_DIR, entry)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            pid = int(payload["pid"])
            kind = str(payload.get("kind", "pool"))
            if kind == "durability":
                target = str(payload["data_dir"])
            else:
                target = str(payload["prefix"])
        except (OSError, ValueError, KeyError):
            # Unreadable manifest: drop it, but never guess a prefix.
            try:
                os.unlink(path)
            except OSError:
                pass
            continue
        if _pid_alive(pid):
            continue
        if kind == "durability":
            removed += _sweep_durability(target, pid)
        else:
            removed += sweep_segments(target)
        try:
            os.unlink(path)
        except OSError:
            pass
    return removed
