""":class:`ShardWorkerPool` — N worker processes over shared-memory shards.

The pool is the multi-process executor behind
``SimRankService(executor="process", workers=N)``:

* **Parent plans, workers apply.**  The kernel still plans update
  deltas in the parent (planning is read-only and cheap); each
  resulting :class:`~repro.incremental.plan.UpdatePlan` is pickled over
  a command pipe to exactly the workers whose row ranges its support
  unions touch, and every worker applies its row slice of the
  union-support GEMM locally — in parallel, outside the parent's GIL.
* **Zero-copy reads.**  Shards live in named shared-memory segments
  mapped by both sides, so the parent's mirror serves point reads,
  planning reads, and snapshot pins without any per-byte IPC.
* **Cross-process copy-on-write.**  A snapshot marks every shard
  pinned; a worker's next write to a pinned shard lands in a fresh
  segment whose name rides back on the reply.  The parent keeps old
  segments alive while any snapshot references them, so pinned readers
  stay bit-stable forever.
* **Crash recovery with exactly-once semantics.**  Every mutating
  command is journaled since the last snapshot.  When a worker dies
  (pipe EOF, liveness check, or command timeout) the pool respawns it
  from the last snapshot's segments — which, by the copy-on-write
  invariant, were never written after the snapshot — and replays the
  journal, reconstructing the bit-identical current state.  Readers
  only ever observe published snapshots, so a crash mid-drain is
  invisible to them.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ClusterError, DimensionError, WorkerCrashError
from ..executor.score_store import (
    DEFAULT_SHARD_ROWS,
    ApplyMetrics,
    _Shard,
)
from .messages import (
    AddNodeCmd,
    AddRowsCmd,
    ApplyPlanCmd,
    MarkSharedCmd,
    MetricsCmd,
    PingCmd,
    ReplaceRowsCmd,
    SegmentSpec,
    SetEntryCmd,
    ShutdownCmd,
    TopKConfigCmd,
    TopKRescanCmd,
    WorkerInit,
)
from .shm import (
    attach_segment,
    create_segment,
    ndarray_view,
    pool_prefix,
    segment_nbytes,
    sweep_segments,
)
from .worker import worker_loop

_FLOAT_DTYPE = np.float64

#: ``spawn`` is the only start method the pool promises correctness
#: under: respawning a crashed worker can happen on the background
#: writer thread, and forking a multi-threaded parent there risks
#: inheriting held locks mid-operation.  (Segment lifetime is safe
#: either way — see :mod:`repro.cluster.shm` on the shared resource
#: tracker.)
DEFAULT_START_METHOD = "spawn"

#: Seconds a command may run before the worker is declared dead.
DEFAULT_COMMAND_TIMEOUT = 120.0

#: Respawn budget per worker before :class:`WorkerCrashError`.
DEFAULT_MAX_RESPAWNS = 3

#: Journaled commands tolerated between replay anchors before the pool
#: checkpoints itself.  Bounds crash-replay journal memory (and replay
#: time) for engine-level sessions that never snapshot.
DEFAULT_JOURNAL_LIMIT = 256


class _WorkerDied(Exception):
    """Internal: the worker cannot answer (crash, EOF, or timeout)."""


@dataclass
class _WorkerHandle:
    worker_id: int
    process: object
    conn: object
    shard_lo: int
    shard_hi: int
    respawns: int = 0


@dataclass
class _JournalEntry:
    """One mutating command since the last snapshot (for replay)."""

    workers: Tuple[int, ...]
    #: Either one shared command object or a per-worker command map.
    cmds: object

    def command_for(self, worker_id: int):
        if isinstance(self.cmds, dict):
            return self.cmds[worker_id]
        return self.cmds


@dataclass
class _ReplayBase:
    """The pool state at the last snapshot — the crash-replay anchor."""

    num_nodes: int
    ranges: Dict[int, Tuple[int, int]]
    segments: Dict[int, SegmentSpec]
    topk: Optional[Tuple[int, int]]


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`ShardWorkerPool`."""

    commands: int = 0
    plans: int = 0
    crashes: int = 0
    respawns: int = 0
    replayed_commands: int = 0
    cow_copies: int = 0
    ipc_seconds: float = 0.0
    worker_seconds: Dict[int, float] = field(default_factory=dict)


class _SegmentTable:
    """Reference-counted shared-memory handles owned by the parent."""

    def __init__(self) -> None:
        self._refs: Dict[str, list] = {}

    def adopt(self, name: str, segment) -> None:
        """Register a segment the parent itself created (refcount 1)."""
        self._refs[name] = [segment, 1]

    def acquire(self, name: str):
        entry = self._refs.get(name)
        if entry is None:
            entry = [attach_segment(name), 0]
            self._refs[name] = entry
        entry[1] += 1
        return entry[0]

    def release(self, name: str) -> None:
        entry = self._refs.get(name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._refs[name]
            try:
                entry[0].close()
                entry[0].unlink()
            except OSError:
                pass

    def release_all(self) -> None:
        for name, entry in list(self._refs.items()):
            try:
                entry[0].close()
                entry[0].unlink()
            except OSError:
                pass
        self._refs.clear()

    def __len__(self) -> int:
        return len(self._refs)


class ShardWorkerPool:
    """Owns N shard-worker processes plus the parent-side segment mirror.

    Parameters
    ----------
    scores:
        The initial dense score matrix to shard across workers.
    shard_rows:
        Rows per shard (the same granularity as the in-process store).
    workers:
        Worker process count (>= 1).
    start_method:
        Multiprocessing start method; keep the default ``"spawn"``
        unless you understand the resource-tracker caveats.
    command_timeout:
        Seconds before an unresponsive worker is declared dead.
    max_respawns:
        Per-worker crash budget before :class:`WorkerCrashError`.
    journal_limit:
        Journaled commands tolerated before an automatic checkpoint
        (snapshots checkpoint anyway; this bounds sessions that never
        pin one).
    """

    def __init__(
        self,
        scores: np.ndarray,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        workers: int = 2,
        start_method: str = DEFAULT_START_METHOD,
        command_timeout: float = DEFAULT_COMMAND_TIMEOUT,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    ) -> None:
        scores = np.asarray(scores, dtype=_FLOAT_DTYPE)
        if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
            raise DimensionError(
                f"scores must be square, got shape {scores.shape}"
            )
        if workers < 1:
            raise ClusterError(f"workers must be >= 1, got {workers}")
        if shard_rows <= 0:
            raise DimensionError(f"shard_rows must be positive: {shard_rows}")
        self._n = scores.shape[0]
        self._shard_rows = int(shard_rows)
        self._prefix = pool_prefix()
        self._ctx = multiprocessing.get_context(start_method)
        self.command_timeout = float(command_timeout)
        self.max_respawns = int(max_respawns)
        self.journal_limit = max(1, int(journal_limit))
        self.stats = PoolStats()
        self.apply_metrics = ApplyMetrics()
        self._segments = _SegmentTable()
        self._specs: Dict[int, SegmentSpec] = {}
        #: Parent-side zero-copy mirror: one read-only ``_Shard`` view
        #: per global shard, shared (as a list object) with ShardClient.
        self.mirror_shards: List[_Shard] = []
        self._workers: List[_WorkerHandle] = []
        self._journal: List[_JournalEntry] = []
        self._topk = None
        self._topk_config: Optional[Tuple[int, int]] = None
        self._closed = False

        num_shards = -(-self._n // self._shard_rows) if self._n else 0
        for gid in range(num_shards):
            base = gid * self._shard_rows
            rows = min(self._shard_rows, self._n - base)
            name = f"{self._prefix}s{gid}"
            segment = create_segment(name, segment_nbytes((rows, self._n)))
            buffer = ndarray_view(segment, (rows, self._n), writable=True)
            np.copyto(buffer, scores[base : base + rows])
            buffer.flags.writeable = False
            self._segments.adopt(name, segment)
            self._specs[gid] = SegmentSpec(
                shard_id=gid,
                name=name,
                base=base,
                rows=rows,
                rows_cap=rows,
                cols_cap=self._n,
            )
            self.mirror_shards.append(_Shard(base, rows, buffer))

        count = min(int(workers), max(num_shards, 1))
        bounds = np.linspace(0, num_shards, count + 1).astype(int)
        for worker_id in range(count):
            lo, hi = int(bounds[worker_id]), int(bounds[worker_id + 1])
            self._workers.append(self._spawn(worker_id, lo, hi, 0))
        self._replay_base = self._capture_base()
        self._atexit = atexit.register(self.close)

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def shard_rows(self) -> int:
        return self._shard_rows

    @property
    def num_shards(self) -> int:
        return len(self.mirror_shards)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def topk(self):
        """The pool-backed top-k proxy, or None before configuration."""
        return self._topk

    def worker_range(self, worker_id: int) -> Tuple[int, int]:
        handle = self._workers[worker_id]
        return handle.shard_lo, handle.shard_hi

    def worker_pids(self) -> List[int]:
        return [handle.process.pid for handle in self._workers]

    def journal_length(self) -> int:
        """Mutating commands recorded since the last snapshot."""
        return len(self._journal)

    def live_segments(self) -> int:
        """Segments currently mapped by the parent (live + pinned)."""
        return len(self._segments)

    # -------------------------------------------------------------- #
    # Spawning / recovery
    # -------------------------------------------------------------- #

    def _spawn(
        self, worker_id: int, lo: int, hi: int, respawns: int
    ) -> _WorkerHandle:
        init = WorkerInit(
            worker_id=worker_id,
            # A respawn generation in the prefix guarantees a respawned
            # worker never reuses a dead incarnation's segment names.
            prefix=f"{self._prefix}r{respawns}",
            shard_rows=self._shard_rows,
            num_nodes=(
                self._replay_base.num_nodes
                if respawns and hasattr(self, "_replay_base")
                else self._n
            ),
            shard_lo=lo,
            shard_hi=hi,
            segments=[
                self._base_spec(gid)
                for gid in range(lo, hi)
                if self._base_spec(gid) is not None
            ],
            topk=(
                self._replay_base.topk
                if respawns and hasattr(self, "_replay_base")
                else self._topk_config
            ),
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_loop,
            args=(child_conn, init),
            name=f"simrank-shard-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            shard_lo=lo,
            shard_hi=hi,
            respawns=respawns,
        )

    def _base_spec(self, gid: int) -> Optional[SegmentSpec]:
        if hasattr(self, "_replay_base") and self._replay_base is not None:
            return self._replay_base.segments.get(gid)
        return self._specs.get(gid)

    def _capture_base(self) -> _ReplayBase:
        base = _ReplayBase(
            num_nodes=self._n,
            ranges={
                handle.worker_id: (handle.shard_lo, handle.shard_hi)
                for handle in self._workers
            },
            segments=dict(self._specs),
            topk=self._topk_config,
        )
        for spec in base.segments.values():
            self._segments.acquire(spec.name)
        return base

    def _drop_base(self) -> None:
        if getattr(self, "_replay_base", None) is None:
            return
        for spec in self._replay_base.segments.values():
            self._segments.release(spec.name)
        self._replay_base = None

    def _recover(self, worker_id: int, cmd, journaled: bool):
        """Respawn a dead worker from the replay base and roll it forward.

        Returns the reply for the in-flight command: for a journaled
        command that reply is produced naturally by the replay (the
        journal's last entry *is* the in-flight command); otherwise the
        command is re-sent to the recovered worker.
        """
        handle = self._workers[worker_id]
        self.stats.crashes += 1
        if handle.respawns >= self.max_respawns:
            self.close()
            raise WorkerCrashError(
                f"shard worker {worker_id} exceeded its respawn budget "
                f"({self.max_respawns}); pool closed"
            )
        try:
            handle.process.terminate()
            handle.process.join(5.0)
        except Exception:
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        self.stats.respawns += 1

        # Reset the mirror for this worker's shards to the replay base:
        # the dead worker's private segments may hold torn writes, but
        # by the copy-on-write invariant the base segments were never
        # written after the snapshot.
        base = self._replay_base
        base_lo, base_hi = base.ranges[worker_id]
        current_lo, current_hi = handle.shard_lo, handle.shard_hi
        for gid in range(current_lo, current_hi):
            spec = base.segments.get(gid)
            if spec is None:
                # Shard born after the base snapshot (node arrival):
                # drop it; the journal replay re-creates it.
                old = self._specs.pop(gid, None)
                if old is not None:
                    self._segments.release(old.name)
                continue
            self._bind_segment(spec)
        # Mirror entries whose spec was just dropped shrink the list
        # from the tail until the journal replay re-grows them.
        while self.mirror_shards and (
            len(self.mirror_shards) - 1
        ) not in self._specs:
            self.mirror_shards.pop()

        new_handle = self._spawn(
            worker_id, base_lo, base_hi, handle.respawns + 1
        )
        self._workers[worker_id] = new_handle

        last_reply = None
        for entry in self._journal:
            if worker_id not in entry.workers:
                continue
            replay_cmd = entry.command_for(worker_id)
            try:
                new_handle.conn.send(replay_cmd)
                reply = self._recv(new_handle)
            except _WorkerDied:
                return self._recover(worker_id, cmd, journaled)
            if not reply.ok:
                self.close()
                raise ClusterError(
                    f"worker {worker_id} failed during crash replay:\n"
                    f"{reply.error}"
                )
            self._ingest(new_handle, reply)
            self.stats.replayed_commands += 1
            last_reply = reply
        if self._topk is not None:
            self._topk.mark_shards_dirty(
                range(new_handle.shard_lo, new_handle.shard_hi)
            )
        if journaled:
            if last_reply is None:
                raise ClusterError(
                    "journaled command missing from replay (pool bug)"
                )
            return last_reply
        try:
            new_handle.conn.send(cmd)
            reply = self._recv(new_handle)
        except _WorkerDied:
            return self._recover(worker_id, cmd, journaled)
        if not reply.ok:
            raise ClusterError(
                f"worker {worker_id} command failed after recovery:\n"
                f"{reply.error}"
            )
        self._ingest(new_handle, reply)
        return reply

    def _bind_segment(self, spec: SegmentSpec) -> None:
        """Point the mirror shard for ``spec`` at its segment.

        The single rebind path for both live reply events and
        crash-recovery base restoration: a same-name spec is a pure
        geometry update (tail row growth), a new name swaps the mapped
        segment (acquire new, release old), and a spec one past the
        mirror tail appends the newborn shard.
        """
        gid = spec.shard_id
        current = self._specs.get(gid)
        if current is not None and current.name == spec.name:
            shard = self.mirror_shards[gid]
            shard.rows = spec.rows
            shard.base = spec.base
            self._specs[gid] = spec
            return
        segment = self._segments.acquire(spec.name)
        buffer = ndarray_view(
            segment, (spec.rows_cap, spec.cols_cap), writable=False
        )
        if current is not None:
            self._segments.release(current.name)
        self._specs[gid] = spec
        if gid < len(self.mirror_shards):
            shard = self.mirror_shards[gid]
            shard.buffer = buffer
            shard.rows = spec.rows
            shard.base = spec.base
            shard.shared = False
        elif gid == len(self.mirror_shards):
            self.mirror_shards.append(_Shard(spec.base, spec.rows, buffer))
        else:
            raise ClusterError(
                f"segment bind for shard {gid} beyond mirror tail "
                f"{len(self.mirror_shards)} (pool bug)"
            )

    # -------------------------------------------------------------- #
    # Command plumbing
    # -------------------------------------------------------------- #

    def _recv(self, handle: _WorkerHandle):
        deadline = time.monotonic() + self.command_timeout
        while True:
            try:
                if handle.conn.poll(0.05):
                    return handle.conn.recv()
            except (EOFError, OSError):
                raise _WorkerDied(handle.worker_id)
            if not handle.process.is_alive():
                # Drain anything flushed before death.
                try:
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                except (EOFError, OSError):
                    pass
                raise _WorkerDied(handle.worker_id)
            if time.monotonic() >= deadline:
                try:
                    handle.process.kill()
                except Exception:
                    pass
                raise _WorkerDied(handle.worker_id)

    def _ingest(self, handle: _WorkerHandle, reply) -> None:
        """Fold one reply into the mirror, metrics, and top-k state."""
        for spec in reply.segments:
            self._bind_segment(spec)
            if spec.shard_id >= handle.shard_hi:
                handle.shard_hi = spec.shard_id + 1
        self.stats.cow_copies += reply.cow_copies
        self.stats.worker_seconds[handle.worker_id] = (
            self.stats.worker_seconds.get(handle.worker_id, 0.0)
            + reply.seconds
        )
        if self._topk is not None and reply.topk_changes is not None:
            self._topk.apply_changes(handle.worker_id, reply.topk_changes)

    def _command(
        self,
        worker_ids,
        cmds,
        journaled: bool,
    ) -> Dict[int, object]:
        """Send one command set and synchronously collect every reply."""
        if self._closed:
            raise ClusterError("shard worker pool is closed")
        worker_ids = tuple(worker_ids)
        if journaled:
            self._journal.append(_JournalEntry(workers=worker_ids, cmds=cmds))
        self.stats.commands += 1
        command_for = (
            cmds.__getitem__ if isinstance(cmds, dict) else lambda w: cmds
        )
        dead = set()
        for worker_id in worker_ids:
            try:
                self._workers[worker_id].conn.send(command_for(worker_id))
            except (BrokenPipeError, OSError):
                dead.add(worker_id)
        replies: Dict[int, object] = {}
        # Collect every reply before raising on any failure: leaving an
        # unread reply on a pipe would desynchronize the strict
        # request/response protocol for all later commands.
        first_error: Optional[str] = None
        for worker_id in worker_ids:
            handle = self._workers[worker_id]
            if worker_id in dead:
                replies[worker_id] = self._recover(
                    worker_id, command_for(worker_id), journaled
                )
                continue
            try:
                reply = self._recv(handle)
            except _WorkerDied:
                replies[worker_id] = self._recover(
                    worker_id, command_for(worker_id), journaled
                )
                continue
            if not reply.ok and first_error is None:
                first_error = f"worker {worker_id} failed:\n{reply.error}"
            if reply.ok:
                self._ingest(handle, reply)
            replies[worker_id] = reply
        if first_error is not None:
            raise ClusterError(first_error)
        if journaled and len(self._journal) >= self.journal_limit:
            self._auto_checkpoint()
        return replies

    def _all_workers(self) -> Tuple[int, ...]:
        return tuple(handle.worker_id for handle in self._workers)

    # -------------------------------------------------------------- #
    # Executor operations (called by ShardClient)
    # -------------------------------------------------------------- #

    def _workers_for_plan(self, plan) -> Tuple[int, ...]:
        """Workers whose row ranges intersect the plan's support unions.

        A worker owning no touched row has nothing to apply *and* no
        top-k pair to patch, so skipping it is exact — this is the
        dispatcher's row-routing half of the coalescing bargain.
        """
        out = []
        for handle in self._workers:
            row_lo = handle.shard_lo * self._shard_rows
            row_hi = handle.shard_hi * self._shard_rows
            touched = False
            for union in (plan.rows_union, plan.cols_union):
                if union.size == 0:
                    continue
                at = int(np.searchsorted(union, row_lo))
                if at < union.size and int(union[at]) < row_hi:
                    touched = True
                    break
            if touched:
                out.append(handle.worker_id)
        return tuple(out)

    def apply_plan(self, plan) -> None:
        """Fan one update plan out to the owning workers (synchronous)."""
        targets = self._workers_for_plan(plan)
        if not targets:
            return
        started = time.perf_counter()
        replies = self._command(targets, ApplyPlanCmd(plan), journaled=True)
        wall = time.perf_counter() - started
        per_shard: Dict[int, float] = {}
        slowest = 0.0
        for reply in replies.values():
            for gid, seconds in reply.per_shard_seconds.items():
                per_shard[gid] = per_shard.get(gid, 0.0) + seconds
            slowest = max(slowest, reply.seconds)
        self.apply_metrics.record(per_shard)
        self.stats.plans += 1
        self.stats.ipc_seconds += max(0.0, wall - slowest)

    def set_entry(self, row: int, col: int, value: float) -> None:
        owner = self._owner_of_row(row)
        self._command((owner,), SetEntryCmd(row, col, value), journaled=True)

    def _owner_of_row(self, row: int) -> int:
        gid = row // self._shard_rows
        for handle in self._workers:
            if handle.shard_lo <= gid < handle.shard_hi:
                return handle.worker_id
        raise ClusterError(f"no worker owns row {row} (shard {gid})")

    def _blocks_for(self, handle: _WorkerHandle, matrix: np.ndarray) -> Dict:
        blocks = {}
        for gid in range(handle.shard_lo, handle.shard_hi):
            spec = self._specs[gid]
            blocks[gid] = np.ascontiguousarray(
                matrix[spec.base : spec.base + spec.rows]
            )
        return blocks

    def add_rows(self, delta: np.ndarray) -> None:
        cmds = {
            handle.worker_id: AddRowsCmd(self._blocks_for(handle, delta))
            for handle in self._workers
        }
        self._command(self._all_workers(), cmds, journaled=True)
        # A dense command pins O(n²) in the journal; anchor immediately
        # so at most one such payload is ever retained.
        self._auto_checkpoint()

    def replace_rows(self, scores: np.ndarray) -> None:
        cmds = {
            handle.worker_id: ReplaceRowsCmd(self._blocks_for(handle, scores))
            for handle in self._workers
        }
        self._command(self._all_workers(), cmds, journaled=True)
        self._auto_checkpoint()

    def add_node(self, transitions: Optional[dict] = None) -> int:
        node = self._n
        new_n = node + 1
        tail_gid = node // self._shard_rows
        last = self._workers[-1]
        if tail_gid >= len(self.mirror_shards):
            # A brand-new shard always extends the last worker's slice.
            last.shard_hi = tail_gid + 1
            owner = last.worker_id
        else:
            owner = self._owner_of_row(node)
        cmds = {
            handle.worker_id: AddNodeCmd(
                num_nodes=new_n,
                own_tail=(handle.worker_id == owner),
                shard_hi=handle.shard_hi,
                transitions=transitions,
            )
            for handle in self._workers
        }
        self._n = new_n
        self._command(self._all_workers(), cmds, journaled=True)
        return node

    def mark_shared(self) -> None:
        self._command(self._all_workers(), MarkSharedCmd(), journaled=False)
        for shard in self.mirror_shards:
            shard.shared = True

    def snapshot_views(self) -> Tuple[List[np.ndarray], List[str]]:
        """Read-only live-window views + their segment names (post-mark)."""
        views = []
        names = []
        for gid, shard in enumerate(self.mirror_shards):
            views.append(shard.buffer[: shard.rows, : self._n])
            names.append(self._specs[gid].name)
        return views, names

    def pin_segments(self, names) -> None:
        for name in names:
            self._segments.acquire(name)

    def release_segments(self, names) -> None:
        if self._closed:
            return
        for name in names:
            self._segments.release(name)

    def checkpoint(self) -> None:
        """Make the current state the crash-replay anchor.

        Called after every snapshot: the snapshot's segments are frozen
        by copy-on-write, so they form a valid base, and the journal up
        to this point can be discarded.  Only valid when the current
        segments are write-protected (mark-shared has run since the
        last write) — callers other than :meth:`ShardClient.snapshot`
        should use :meth:`_auto_checkpoint`.
        """
        self._drop_base()
        self._replay_base = self._capture_base()
        self._journal.clear()

    def _auto_checkpoint(self) -> None:
        """Self-anchored checkpoint: pin the live segments, drop the journal.

        Bounds journal memory for sessions that never snapshot.  The
        mark-shared round trip freezes the current segments (every
        later write copy-on-writes away), which is exactly the
        precondition :meth:`checkpoint` needs.  Amortized cost: at most
        one extra segment copy per shard per ``journal_limit`` commands.
        """
        self.mark_shared()
        self.checkpoint()

    def configure_topk(self, k: int, capacity: Optional[int] = None):
        from .client import PoolTopK

        capacity = int(capacity) if capacity is not None else max(2 * k, 16)
        self._command(
            self._all_workers(), TopKConfigCmd(k, capacity), journaled=True
        )
        self._topk_config = (k, capacity)
        self._topk = PoolTopK(self, k, capacity)
        return self._topk

    def topk_rescan(self, shard_ids) -> Dict[int, list]:
        """Re-scan dirty shards on their owners; return their candidates."""
        by_worker: Dict[int, List[int]] = {}
        for gid in shard_ids:
            for handle in self._workers:
                if handle.shard_lo <= gid < handle.shard_hi:
                    by_worker.setdefault(handle.worker_id, []).append(gid)
                    break
        out: Dict[int, list] = {}
        for worker_id, gids in by_worker.items():
            replies = self._command(
                (worker_id,), TopKRescanCmd(gids), journaled=False
            )
            out.update(replies[worker_id].data)
        return out

    def worker_metrics(self) -> List[dict]:
        replies = self._command(
            self._all_workers(), MetricsCmd(), journaled=False
        )
        return [replies[w].data for w in sorted(replies)]

    def ping(self) -> bool:
        self._command(self._all_workers(), PingCmd(), journaled=False)
        return True

    def apply_report(self) -> dict:
        """Executor gauges: per-shard/per-worker apply time vs IPC."""
        report = {
            "mode": "process",
            "workers": self.num_workers,
        }
        report.update(self.apply_metrics.report())
        report.update(
            {
                "per_worker_seconds": {
                    str(w): s
                    for w, s in sorted(self.stats.worker_seconds.items())
                },
                "ipc_seconds": self.stats.ipc_seconds,
                "commands": self.stats.commands,
                "crashes": self.stats.crashes,
                "respawns": self.stats.respawns,
                "replayed_commands": self.stats.replayed_commands,
                "journal_length": self.journal_length(),
                "live_segments": self.live_segments(),
            }
        )
        return report

    # -------------------------------------------------------------- #
    # Shutdown
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Stop every worker and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.conn.send(ShutdownCmd())
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            try:
                if handle.conn.poll(1.0):
                    handle.conn.recv()
            except (EOFError, OSError):
                pass
            handle.process.join(2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._segments.release_all()
        sweep_segments(self._prefix)
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardWorkerPool(n={self._n}, workers={self.num_workers}, "
            f"shards={self.num_shards}, closed={self._closed})"
        )
