""":class:`ShardWorkerPool` — N worker processes over shared-memory shards.

The pool is the multi-process executor behind
``SimRankService(executor="process", workers=N)``:

* **Parent plans, workers apply.**  The kernel still plans update
  deltas in the parent (planning is read-only and cheap); each
  resulting :class:`~repro.incremental.plan.UpdatePlan` is pickled over
  a command pipe to exactly the workers whose row ranges its support
  unions touch, and every worker applies its row slice of the
  union-support GEMM locally — in parallel, outside the parent's GIL.
* **Zero-copy reads.**  Shards live in named shared-memory segments
  mapped by both sides, so the parent's mirror serves point reads,
  planning reads, and snapshot pins without any per-byte IPC.
* **Cross-process copy-on-write.**  A snapshot marks every shard
  pinned; a worker's next write to a pinned shard lands in a fresh
  segment whose name rides back on the reply.  The parent keeps old
  segments alive while any snapshot references them, so pinned readers
  stay bit-stable forever.
* **Crash recovery with exactly-once semantics.**  Every mutating
  command is journaled since the last snapshot.  When a worker dies
  (pipe EOF, liveness check, or command timeout) the pool respawns it
  from the last snapshot's segments — which, by the copy-on-write
  invariant, were never written after the snapshot — and replays the
  journal, reconstructing the bit-identical current state.  Readers
  only ever observe published snapshots, so a crash mid-drain is
  invisible to them.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import (
    ClusterError,
    DimensionError,
    PoisonBatchError,
    PoolUnrecoverableError,
    WorkerCrashError,
)
from ..executor.score_store import (
    DEFAULT_RECENT_WINDOW,
    DEFAULT_SHARD_ROWS,
    ApplyMetrics,
    _Shard,
    window_summary_ms,
)
from ..incremental.plan import PlanBatch
from .faults import FaultInjector
from .messages import (
    AddNodeCmd,
    AddRowsCmd,
    ApplyBatchCmd,
    ApplyPlanCmd,
    MarkSharedCmd,
    MetricsCmd,
    PingCmd,
    ReplaceRowsCmd,
    SegmentSpec,
    SetEntryCmd,
    ShutdownCmd,
    TopKConfigCmd,
    TopKRescanCmd,
    WorkerInit,
    word_checksums,
)
from .shm import (
    attach_segment,
    create_segment,
    ndarray_view,
    pool_prefix,
    reap_orphans,
    register_pool,
    segment_nbytes,
    sweep_segments,
    unregister_pool,
)
from .supervisor import (
    DEFAULT_DEADLINE_FLOOR,
    QuarantinedBatch,
    WorkerSupervisor,
)
from .worker import worker_loop
from ..dtypes import DEFAULT_FLOAT_DTYPE, resolve_dtype

#: Backwards-compatible alias; the definition lives in
#: :mod:`repro.dtypes` (one source of truth for the dtype seam).
_FLOAT_DTYPE = DEFAULT_FLOAT_DTYPE

#: ``spawn`` is the only start method the pool promises correctness
#: under: respawning a crashed worker can happen on the background
#: writer thread, and forking a multi-threaded parent there risks
#: inheriting held locks mid-operation.  (Segment lifetime is safe
#: either way — see :mod:`repro.cluster.shm` on the shared resource
#: tracker.)
DEFAULT_START_METHOD = "spawn"

#: Seconds a command may run before the worker is declared dead.
DEFAULT_COMMAND_TIMEOUT = 120.0

#: Respawn budget per worker before :class:`WorkerCrashError`.
DEFAULT_MAX_RESPAWNS = 3

#: Journaled commands tolerated between replay anchors before the pool
#: checkpoints itself.  Bounds crash-replay journal memory (and replay
#: time) for engine-level sessions that never snapshot.
DEFAULT_JOURNAL_LIMIT = 256

#: Dispatched-but-uncollected plan batches tolerated before dispatching
#: another blocks on the oldest.  Depth 2 is what "broadcast batch N+1
#: while the workers still apply batch N" needs; deeper pipelines only
#: add staging memory and reply latency.
DEFAULT_MAX_INFLIGHT_BATCHES = 2

#: Smallest staging-slot allocation (slots grow by doubling).
_MIN_STAGING_BYTES = 1 << 16

#: One orphan sweep is registered per process (not per pool): manifests
#: from SIGKILL'd sessions are reaped by whichever process constructs a
#: pool next, and again when this process exits.
_REAPER_REGISTERED = False


class _WorkerDied(Exception):
    """Internal: the worker cannot answer (crash, EOF, or timeout)."""


@dataclass
class _WorkerHandle:
    worker_id: int
    process: object
    conn: object
    shard_lo: int
    shard_hi: int
    respawns: int = 0


@dataclass
class _JournalEntry:
    """One mutating command since the last snapshot (for replay)."""

    workers: Tuple[int, ...]
    #: Either one shared command object or a per-worker command map.
    cmds: object

    def command_for(self, worker_id: int):
        if isinstance(self.cmds, dict):
            return self.cmds[worker_id]
        return self.cmds


@dataclass
class _ReplayBase:
    """The pool state at the last snapshot — the crash-replay anchor."""

    num_nodes: int
    ranges: Dict[int, Tuple[int, int]]
    segments: Dict[int, SegmentSpec]
    topk: Optional[Tuple[int, int]]


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`ShardWorkerPool`."""

    commands: int = 0
    plans: int = 0
    #: Batched drain commands dispatched (one per ``apply_batch``).
    batches: int = 0
    crashes: int = 0
    respawns: int = 0
    replayed_commands: int = 0
    #: Staged batches that failed checksum verification and were
    #: repaired by resending the intact journal copy in-band.
    corruptions: int = 0
    cow_copies: int = 0
    ipc_seconds: float = 0.0
    #: Approximate payload bytes that crossed the command pipes (plan
    #: pickles per target on the per-plan path; only the tiny staged
    #: command headers on the batched path).
    ipc_bytes: int = 0
    #: Packed batch payload bytes written to shared-memory staging
    #: instead of the pipes (the batched path's zero-copy half).
    staged_bytes: int = 0
    worker_seconds: Dict[int, float] = field(default_factory=dict)
    #: Bounded window of recent per-plan IPC overhead samples (one
    #: sample per dispatch: the batch's net IPC divided by its plan
    #: count), so ``apply_report`` can show a *distribution* next to
    #: the lifetime-mean ``ipc_per_plan_ms`` gauge.
    recent_ipc_per_plan: deque = field(
        default_factory=lambda: deque(maxlen=DEFAULT_RECENT_WINDOW)
    )


#: Rough pickled size of a command envelope (dataclass + pipe framing);
#: used for the ``ipc_bytes`` gauge, which tracks payloads, not pickle
#: bytes exactly.
_CMD_OVERHEAD_BYTES = 256


@dataclass
class _StagingSlot:
    """One reusable shared-memory segment of the batch staging ring."""

    name: str
    segment: object
    nbytes: int


@dataclass
class _InflightBatch:
    """A dispatched-but-uncollected batched drain command."""

    workers: Tuple[int, ...]
    #: Live (non-noop) plans the batch carried.
    count: int
    #: The journaled inline command — also the crash-replay payload.
    journal_cmd: object
    #: Staging slot name the live command references.
    slot: str
    send_seconds: float
    #: Workers whose pipe broke at dispatch (recovered at collect).
    dead: set = field(default_factory=set)
    #: Workers already rolled through this batch by a journal replay.
    recovered: set = field(default_factory=set)
    #: The journal entry backing this batch — crash attribution for the
    #: poison-quarantine logic keys on its identity.
    entry: object = None
    #: Request-trace id the dispatching drain was tagged with; the
    #: collect materialises ``worker.apply`` spans under it.
    trace_id: Optional[str] = None


class _SegmentTable:
    """Reference-counted shared-memory handles owned by the parent."""

    def __init__(self) -> None:
        self._refs: Dict[str, list] = {}

    def adopt(self, name: str, segment) -> None:
        """Register a segment the parent itself created (refcount 1)."""
        self._refs[name] = [segment, 1]

    def acquire(self, name: str):
        entry = self._refs.get(name)
        if entry is None:
            entry = [attach_segment(name), 0]
            self._refs[name] = entry
        entry[1] += 1
        return entry[0]

    def release(self, name: str) -> None:
        entry = self._refs.get(name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._refs[name]
            try:
                entry[0].close()
                entry[0].unlink()
            except OSError:
                pass

    def release_all(self) -> None:
        for name, entry in list(self._refs.items()):
            try:
                entry[0].close()
                entry[0].unlink()
            except OSError:
                pass
        self._refs.clear()

    def __len__(self) -> int:
        return len(self._refs)


class ShardWorkerPool:
    """Owns N shard-worker processes plus the parent-side segment mirror.

    Parameters
    ----------
    scores:
        The initial dense score matrix to shard across workers.
    shard_rows:
        Rows per shard (the same granularity as the in-process store).
    workers:
        Worker process count (>= 1).
    start_method:
        Multiprocessing start method; keep the default ``"spawn"``
        unless you understand the resource-tracker caveats.
    command_timeout:
        Seconds before an unresponsive worker is declared dead.
    max_respawns:
        Per-worker crash budget before :class:`WorkerCrashError`.
    journal_limit:
        Journaled commands tolerated before an automatic checkpoint
        (snapshots checkpoint anyway; this bounds sessions that never
        pin one).
    supervise:
        Enables adaptive reply deadlines, respawn backoff, and staged
        batch checksums.  ``False`` keeps the fixed
        ``command_timeout``-scaled deadlines and skips checksumming —
        the bench's unsupervised baseline.
    deadline_floor:
        Minimum adaptive deadline in seconds (absorbs 1-core CI boxes).
    fault_plan:
        A :class:`~repro.cluster.faults.FaultPlan` to inject — testing
        only; never set in production.
    dtype:
        Score storage dtype for every segment (float64 default; the
        bit-identity reference).  Carried on each
        :class:`~repro.cluster.messages.SegmentSpec`, so respawns and
        crash replay rebuild shards at the same precision.
    telemetry:
        A :class:`repro.telemetry.Telemetry` facade (or None for the
        shared disabled instance).  The pool observes worker apply
        seconds into its histograms, materialises ``worker.apply``
        spans under the active drain's trace id, and feeds the flight
        recorder on crashes and quarantines.
    """

    def __init__(
        self,
        scores: np.ndarray,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        workers: int = 2,
        start_method: str = DEFAULT_START_METHOD,
        command_timeout: float = DEFAULT_COMMAND_TIMEOUT,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
        supervise: bool = True,
        deadline_floor: float = DEFAULT_DEADLINE_FLOOR,
        fault_plan=None,
        dtype=None,
        telemetry=None,
    ) -> None:
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._telemetry = telemetry
        self._worker_apply_hist = telemetry.registry.histogram(
            "repro_cluster_worker_apply_seconds",
            help="Worker-measured busy seconds per mutating reply",
        )
        self._dtype = resolve_dtype(dtype)
        scores = np.asarray(scores, dtype=self._dtype)
        if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
            raise DimensionError(
                f"scores must be square, got shape {scores.shape}"
            )
        if workers < 1:
            raise ClusterError(f"workers must be >= 1, got {workers}")
        if shard_rows <= 0:
            raise DimensionError(f"shard_rows must be positive: {shard_rows}")
        self._n = scores.shape[0]
        self._shard_rows = int(shard_rows)
        self._prefix = pool_prefix()
        self._ctx = multiprocessing.get_context(start_method)
        self.command_timeout = float(command_timeout)
        self.max_respawns = int(max_respawns)
        self.journal_limit = max(1, int(journal_limit))
        self.supervise = bool(supervise)
        #: Checksum the staged word block on the live batched path so a
        #: corrupted staging slot is caught before any plan is applied.
        self._checksums = bool(supervise)
        self._injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._failed = False
        self._fail_reason: Optional[str] = None
        #: Crash counts keyed by journal-entry identity — the poison
        #: signature is the *same* entry killing two worker incarnations.
        self._entry_crashes: Dict[int, int] = {}
        self.stats = PoolStats()
        # Reap segments orphaned by SIGKILL'd sessions before creating
        # our own, then register this pool's manifest so the next
        # session can reap us if we die uncleanly.
        global _REAPER_REGISTERED
        if not _REAPER_REGISTERED:
            atexit.register(reap_orphans)
            _REAPER_REGISTERED = True
        reap_orphans()
        self._manifest = register_pool(self._prefix)
        self.apply_metrics = ApplyMetrics()
        self._segments = _SegmentTable()
        self._specs: Dict[int, SegmentSpec] = {}
        #: Parent-side zero-copy mirror: one read-only ``_Shard`` view
        #: per global shard, shared (as a list object) with ShardClient.
        self.mirror_shards: List[_Shard] = []
        self._workers: List[_WorkerHandle] = []
        self._journal: List[_JournalEntry] = []
        self._topk = None
        self._topk_config: Optional[Tuple[int, int]] = None
        self._closed = False
        #: Pipelined-drain state: reusable staging slots plus the
        #: dispatched batches whose replies are still outstanding.
        self._staging: List[_StagingSlot] = []
        self._staging_gen = 0
        self._inflight: List[_InflightBatch] = []
        self._syncing = False
        self.max_inflight_batches = DEFAULT_MAX_INFLIGHT_BATCHES
        #: Zero-arg callback fired when the pipeline fully drains (the
        #: ShardClient drops its planning overlay here).
        self.on_batches_drained = None

        num_shards = -(-self._n // self._shard_rows) if self._n else 0
        for gid in range(num_shards):
            base = gid * self._shard_rows
            rows = min(self._shard_rows, self._n - base)
            name = f"{self._prefix}s{gid}"
            segment = create_segment(
                name, segment_nbytes((rows, self._n), dtype=self._dtype)
            )
            buffer = ndarray_view(
                segment, (rows, self._n), writable=True, dtype=self._dtype
            )
            np.copyto(buffer, scores[base : base + rows])
            buffer.flags.writeable = False
            self._segments.adopt(name, segment)
            self._specs[gid] = SegmentSpec(
                shard_id=gid,
                name=name,
                base=base,
                rows=rows,
                rows_cap=rows,
                cols_cap=self._n,
                dtype=self._dtype.name,
            )
            self.mirror_shards.append(_Shard(base, rows, buffer))

        count = min(int(workers), max(num_shards, 1))
        self.supervisor = WorkerSupervisor(
            num_workers=count,
            command_timeout=self.command_timeout,
            max_respawns=self.max_respawns,
            enabled=self.supervise,
            deadline_floor=float(deadline_floor),
        )
        bounds = np.linspace(0, num_shards, count + 1).astype(int)
        for worker_id in range(count):
            lo, hi = int(bounds[worker_id]), int(bounds[worker_id + 1])
            self._workers.append(self._spawn(worker_id, lo, hi, 0))
        self._replay_base = self._capture_base()
        self._atexit = atexit.register(self.close)
        # Block until every worker answered a ping: a spawned child
        # pays a one-time cold start (re-importing numpy and mapping
        # its segments) that would otherwise land on the first applied
        # plan and be misattributed to wire latency.
        self.ping()

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def shard_rows(self) -> int:
        return self._shard_rows

    @property
    def dtype(self) -> np.dtype:
        """The pool's score storage dtype (uniform across segments)."""
        return self._dtype

    @property
    def score_dtype(self) -> str:
        """Serializable name of the pool's score storage dtype."""
        return self._dtype.name

    @property
    def num_shards(self) -> int:
        return len(self.mirror_shards)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def failed(self) -> bool:
        """Unrecoverable: mutations refused, read state still mapped."""
        return self._failed

    @property
    def fail_reason(self) -> Optional[str]:
        return self._fail_reason

    @property
    def topk(self):
        """The pool-backed top-k proxy, or None before configuration."""
        return self._topk

    def worker_range(self, worker_id: int) -> Tuple[int, int]:
        handle = self._workers[worker_id]
        return handle.shard_lo, handle.shard_hi

    def worker_pids(self) -> List[int]:
        return [handle.process.pid for handle in self._workers]

    def journal_length(self) -> int:
        """Mutating commands recorded since the last snapshot."""
        return len(self._journal)

    def inflight_batches(self) -> int:
        """Dispatched plan batches whose replies are still outstanding."""
        return len(self._inflight)

    def live_segments(self) -> int:
        """Segments currently mapped by the parent (live + pinned)."""
        return len(self._segments)

    # -------------------------------------------------------------- #
    # Spawning / recovery
    # -------------------------------------------------------------- #

    def _spawn(
        self, worker_id: int, lo: int, hi: int, respawns: int
    ) -> _WorkerHandle:
        init = WorkerInit(
            worker_id=worker_id,
            # A respawn generation in the prefix guarantees a respawned
            # worker never reuses a dead incarnation's segment names.
            prefix=f"{self._prefix}r{respawns}",
            shard_rows=self._shard_rows,
            num_nodes=(
                self._replay_base.num_nodes
                if respawns and hasattr(self, "_replay_base")
                else self._n
            ),
            shard_lo=lo,
            shard_hi=hi,
            segments=[
                self._base_spec(gid)
                for gid in range(lo, hi)
                if self._base_spec(gid) is not None
            ],
            topk=(
                self._replay_base.topk
                if respawns and hasattr(self, "_replay_base")
                else self._topk_config
            ),
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_loop,
            args=(child_conn, init),
            name=f"simrank-shard-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        # The first reply after a (re)spawn pays a cold interpreter
        # start; the adaptive deadline must not hold it to warm p99s.
        self.supervisor.mark_cold(worker_id)
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            shard_lo=lo,
            shard_hi=hi,
            respawns=respawns,
        )

    def _base_spec(self, gid: int) -> Optional[SegmentSpec]:
        if hasattr(self, "_replay_base") and self._replay_base is not None:
            return self._replay_base.segments.get(gid)
        return self._specs.get(gid)

    def _capture_base(self) -> _ReplayBase:
        base = _ReplayBase(
            num_nodes=self._n,
            ranges={
                handle.worker_id: (handle.shard_lo, handle.shard_hi)
                for handle in self._workers
            },
            segments=dict(self._specs),
            topk=self._topk_config,
        )
        for spec in base.segments.values():
            self._segments.acquire(spec.name)
        return base

    def _drop_base(self) -> None:
        if getattr(self, "_replay_base", None) is None:
            return
        for spec in self._replay_base.segments.values():
            self._segments.release(spec.name)
        self._replay_base = None

    def _fail(self, reason: str) -> None:
        """Declare the pool unrecoverable; keep its read state alive.

        Workers are killed and pipes closed, but the mapped segments,
        the parent mirror, the replay base, and the journal are all
        *retained*: pinned snapshots stay bit-stable, fresh parent-side
        reads keep working, and
        :func:`repro.cluster.recovery.rebuild_score_store` can assemble
        an in-process store from base + journal.  Only :meth:`close`
        releases the memory.
        """
        if self._failed:
            return
        self._failed = True
        self._fail_reason = reason
        # Post-mortem breadcrumb: the crash/quarantine that led here
        # already dumped the flight ring, so a record entry suffices.
        self._telemetry.flight.record("pool_failed", reason=reason)
        self._inflight.clear()
        for handle in self._workers:
            try:
                handle.process.kill()
            except Exception:
                pass
            try:
                handle.process.join(2.0)
            except Exception:
                pass
            try:
                handle.conn.close()
            except OSError:
                pass
        for slot in self._staging:
            try:
                slot.segment.close()
                slot.segment.unlink()
            except OSError:
                pass
        self._staging.clear()

    def _recover(self, worker_id: int, cmd, journaled: bool, entry=None):
        """Respawn a dead worker from the replay base and roll it forward.

        Returns the reply for the in-flight command: for a journaled
        command that reply is produced naturally by the replay (the
        journal's last entry *is* the in-flight command); otherwise the
        command is re-sent to the recovered worker.

        ``entry`` is the journal entry whose dispatch (or replay)
        killed the worker, when known.  The same entry killing two
        worker incarnations is the poison signature: the entry is
        quarantined and the pool fails rather than burning the rest of
        the respawn budget on a deterministic crash.
        """
        handle = self._workers[worker_id]
        self.stats.crashes += 1
        flight = self._telemetry.flight
        flight.record(
            "worker_crash",
            worker=worker_id,
            crashes=self.stats.crashes,
            journaled=journaled,
        )
        flight.dump("worker-crash")
        if entry is not None:
            key = id(entry)
            crashes = self._entry_crashes.get(key, 0) + 1
            self._entry_crashes[key] = crashes
            if crashes >= 2:
                journal_cmd = entry.command_for(worker_id)
                index = next(
                    (
                        at
                        for at, candidate in enumerate(self._journal)
                        if candidate is entry
                    ),
                    -1,
                )
                record = QuarantinedBatch(
                    journal_index=index,
                    worker_ids=tuple(entry.workers),
                    count=int(getattr(journal_cmd, "count", 1)),
                    crashes=crashes,
                    payload=getattr(journal_cmd, "packed", None)
                    or journal_cmd,
                )
                flight.record(
                    "quarantine",
                    worker=worker_id,
                    batch=record.describe(),
                )
                flight.dump("quarantine")
                self.supervisor.quarantine(record)
                self._fail(f"poison batch quarantined: {record.describe()}")
                raise PoisonBatchError(
                    f"journaled command killed worker {worker_id} twice "
                    f"and was quarantined ({record.describe()}); the pool "
                    "is unrecoverable and now read-only",
                    quarantine=record,
                )
        if not self.supervisor.begin_respawn(worker_id):
            self._fail(
                f"respawn budget exhausted after worker {worker_id} crashed"
            )
            raise WorkerCrashError(
                f"shard worker {worker_id} crashed and the pool's respawn "
                "budget is exhausted; the pool is unrecoverable and now "
                "read-only"
            )
        try:
            handle.process.terminate()
            handle.process.join(5.0)
        except Exception:
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        self.stats.respawns += 1

        # Reset the mirror for this worker's shards to the replay base:
        # the dead worker's private segments may hold torn writes, but
        # by the copy-on-write invariant the base segments were never
        # written after the snapshot.
        base = self._replay_base
        base_lo, base_hi = base.ranges[worker_id]
        current_lo, current_hi = handle.shard_lo, handle.shard_hi
        for gid in range(current_lo, current_hi):
            spec = base.segments.get(gid)
            if spec is None:
                # Shard born after the base snapshot (node arrival):
                # drop it; the journal replay re-creates it.
                old = self._specs.pop(gid, None)
                if old is not None:
                    self._segments.release(old.name)
                continue
            self._bind_segment(spec)
        # Mirror entries whose spec was just dropped shrink the list
        # from the tail until the journal replay re-grows them.
        while self.mirror_shards and (
            len(self.mirror_shards) - 1
        ) not in self._specs:
            self.mirror_shards.pop()

        new_handle = self._spawn(
            worker_id, base_lo, base_hi, handle.respawns + 1
        )
        self._workers[worker_id] = new_handle

        last_reply = None
        for replay_entry in self._journal:
            if worker_id not in replay_entry.workers:
                continue
            replay_cmd = replay_entry.command_for(worker_id)
            try:
                if self._injector is not None:
                    self._injector.on_send(self, worker_id, replay_cmd)
                new_handle.conn.send(replay_cmd)
                reply = self._recv(new_handle, replay_cmd)
            except (_WorkerDied, BrokenPipeError, OSError):
                # Attribute the crash to the entry being replayed: a
                # second kill on the same entry is the poison signature.
                return self._recover(
                    worker_id, cmd, journaled, entry=replay_entry
                )
            if not reply.ok:
                self._fail(
                    f"worker {worker_id} failed during crash replay:\n"
                    f"{reply.error}"
                )
                raise PoolUnrecoverableError(
                    f"worker {worker_id} failed during crash replay; the "
                    f"pool is unrecoverable and now read-only:\n"
                    f"{reply.error}"
                )
            self._ingest(new_handle, reply)
            self.stats.replayed_commands += 1
            last_reply = reply
        if self._topk is not None:
            self._topk.mark_shards_dirty(
                range(new_handle.shard_lo, new_handle.shard_hi)
            )
        self.supervisor.finish_respawn(worker_id)
        if journaled:
            if last_reply is None:
                raise ClusterError(
                    "journaled command missing from replay (pool bug)"
                )
            return last_reply
        try:
            new_handle.conn.send(cmd)
            reply = self._recv(new_handle, cmd)
        except (_WorkerDied, BrokenPipeError, OSError):
            return self._recover(worker_id, cmd, journaled)
        if not reply.ok:
            raise ClusterError(
                f"worker {worker_id} command failed after recovery:\n"
                f"{reply.error}"
            )
        self._ingest(new_handle, reply)
        return reply

    def _bind_segment(self, spec: SegmentSpec) -> None:
        """Point the mirror shard for ``spec`` at its segment.

        The single rebind path for both live reply events and
        crash-recovery base restoration: a same-name spec is a pure
        geometry update (tail row growth), a new name swaps the mapped
        segment (acquire new, release old), and a spec one past the
        mirror tail appends the newborn shard.
        """
        gid = spec.shard_id
        current = self._specs.get(gid)
        if current is not None and current.name == spec.name:
            shard = self.mirror_shards[gid]
            shard.rows = spec.rows
            shard.base = spec.base
            self._specs[gid] = spec
            return
        segment = self._segments.acquire(spec.name)
        buffer = ndarray_view(
            segment,
            (spec.rows_cap, spec.cols_cap),
            writable=False,
            dtype=spec.dtype,
        )
        if current is not None:
            self._segments.release(current.name)
        self._specs[gid] = spec
        if gid < len(self.mirror_shards):
            shard = self.mirror_shards[gid]
            shard.buffer = buffer
            shard.rows = spec.rows
            shard.base = spec.base
            shard.shared = False
        elif gid == len(self.mirror_shards):
            self.mirror_shards.append(_Shard(spec.base, spec.rows, buffer))
        else:
            raise ClusterError(
                f"segment bind for shard {gid} beyond mirror tail "
                f"{len(self.mirror_shards)} (pool bug)"
            )

    # -------------------------------------------------------------- #
    # Command plumbing
    # -------------------------------------------------------------- #

    def _recv(self, handle: _WorkerHandle, cmd=None):
        """Wait for one reply under the worker's adaptive deadline.

        The deadline scales with the command's work size (a batched
        drain is budgeted per plan) and, once the supervisor has enough
        samples, with the worker's own observed reply latency — a
        genuinely hung worker is declared dead within a few multiples
        of its normal latency instead of a 2-minute constant.  Past
        half the deadline the worker is marked ``suspect`` in the
        health report; a reply observes the elapsed time back into the
        deadline estimator and restores ``healthy``.
        """
        units = max(1, int(getattr(cmd, "count", 1))) if cmd is not None else 1
        budget = self.supervisor.deadline(handle.worker_id, units)
        started = time.monotonic()
        deadline = started + budget
        suspect_at = started + budget / 2.0
        suspected = False
        while True:
            try:
                if handle.conn.poll(0.05):
                    reply = handle.conn.recv()
                    self.supervisor.observe_reply(
                        handle.worker_id,
                        time.monotonic() - started,
                        units,
                    )
                    return reply
            except (EOFError, OSError):
                raise _WorkerDied(handle.worker_id)
            if not handle.process.is_alive():
                # Drain anything flushed before death.
                try:
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                except (EOFError, OSError):
                    pass
                raise _WorkerDied(handle.worker_id)
            now = time.monotonic()
            if not suspected and now >= suspect_at:
                self.supervisor.mark_suspect(handle.worker_id)
                suspected = True
            if now >= deadline:
                try:
                    handle.process.kill()
                except Exception:
                    pass
                raise _WorkerDied(handle.worker_id)

    def _ingest(self, handle: _WorkerHandle, reply) -> None:
        """Fold one reply into the mirror, metrics, and top-k state."""
        for spec in reply.segments:
            self._bind_segment(spec)
            if spec.shard_id >= handle.shard_hi:
                handle.shard_hi = spec.shard_id + 1
        self.stats.cow_copies += reply.cow_copies
        self.stats.worker_seconds[handle.worker_id] = (
            self.stats.worker_seconds.get(handle.worker_id, 0.0)
            + reply.seconds
        )
        if self._topk is not None and reply.topk_changes is not None:
            self._topk.apply_changes(handle.worker_id, reply.topk_changes)

    def _command(
        self,
        worker_ids,
        cmds,
        journaled: bool,
    ) -> Dict[int, object]:
        """Send one command set and synchronously collect every reply."""
        if self._closed:
            raise ClusterError("shard worker pool is closed")
        if self._failed:
            raise PoolUnrecoverableError(
                self._fail_reason or "shard worker pool is unrecoverable"
            )
        # The wire protocol is strictly FIFO per worker: any pipelined
        # batch replies still on the pipes must be collected before a
        # new request/response exchange starts.
        self.sync_batches()
        worker_ids = tuple(worker_ids)
        if self._injector is not None:
            self._injector.on_command(self)
        entry = None
        if journaled:
            entry = _JournalEntry(workers=worker_ids, cmds=cmds)
            self._journal.append(entry)
        self.stats.commands += 1
        command_for = (
            cmds.__getitem__ if isinstance(cmds, dict) else lambda w: cmds
        )
        dead = set()
        for worker_id in worker_ids:
            try:
                if self._injector is not None:
                    self._injector.on_send(
                        self, worker_id, command_for(worker_id)
                    )
                self._workers[worker_id].conn.send(command_for(worker_id))
            except (BrokenPipeError, OSError):
                dead.add(worker_id)
        replies: Dict[int, object] = {}
        # Collect every reply before raising on any failure: leaving an
        # unread reply on a pipe would desynchronize the strict
        # request/response protocol for all later commands.
        first_error: Optional[str] = None
        for worker_id in worker_ids:
            handle = self._workers[worker_id]
            if worker_id in dead:
                replies[worker_id] = self._recover(
                    worker_id, command_for(worker_id), journaled, entry=entry
                )
                continue
            try:
                reply = self._recv(handle, command_for(worker_id))
            except _WorkerDied:
                replies[worker_id] = self._recover(
                    worker_id, command_for(worker_id), journaled, entry=entry
                )
                continue
            if not reply.ok and first_error is None:
                first_error = f"worker {worker_id} failed:\n{reply.error}"
            if reply.ok:
                self._ingest(handle, reply)
            replies[worker_id] = reply
        if first_error is not None:
            raise ClusterError(first_error)
        if journaled and len(self._journal) >= self.journal_limit:
            self._auto_checkpoint()
        return replies

    def _all_workers(self) -> Tuple[int, ...]:
        return tuple(handle.worker_id for handle in self._workers)

    # -------------------------------------------------------------- #
    # Executor operations (called by ShardClient)
    # -------------------------------------------------------------- #

    def _workers_for_plan(self, plan) -> Tuple[int, ...]:
        """Workers whose row ranges intersect the plan's support unions.

        A worker owning no touched row has nothing to apply *and* no
        top-k pair to patch, so skipping it is exact — this is the
        dispatcher's row-routing half of the coalescing bargain.
        """
        out = []
        for handle in self._workers:
            row_lo = handle.shard_lo * self._shard_rows
            row_hi = handle.shard_hi * self._shard_rows
            touched = False
            for union in (plan.rows_union, plan.cols_union):
                if union.size == 0:
                    continue
                at = int(np.searchsorted(union, row_lo))
                if at < union.size and int(union[at]) < row_hi:
                    touched = True
                    break
            if touched:
                out.append(handle.worker_id)
        return tuple(out)

    def apply_plan(self, plan) -> None:
        """Fan one update plan out to the owning workers (synchronous)."""
        targets = self._workers_for_plan(plan)
        if not targets:
            return
        trace_id = self._telemetry.tracer.active()
        started = time.perf_counter()
        replies = self._command(
            targets, ApplyPlanCmd(plan, trace_id=trace_id), journaled=True
        )
        wall = time.perf_counter() - started
        per_shard: Dict[int, float] = {}
        slowest = 0.0
        for worker_id, reply in replies.items():
            for gid, seconds in reply.per_shard_seconds.items():
                per_shard[gid] = per_shard.get(gid, 0.0) + seconds
            slowest = max(slowest, reply.seconds)
            self._worker_apply_hist.observe(reply.seconds)
            self._telemetry.tracer.record(
                "worker.apply",
                trace_id,
                reply.seconds,
                worker=worker_id,
                plans=1,
            )
        self.apply_metrics.record(per_shard)
        self.stats.plans += 1
        ipc = max(0.0, wall - slowest)
        self.stats.ipc_seconds += ipc
        self.stats.recent_ipc_per_plan.append(ipc)
        self.stats.ipc_bytes += (plan.nbytes() + _CMD_OVERHEAD_BYTES) * len(
            targets
        )

    # -------------------------------------------------------------- #
    # Batched drains: one staged command per drain, pipelined dispatch
    # -------------------------------------------------------------- #

    def apply_batch(self, batch: PlanBatch) -> int:
        """Dispatch a whole drain's plans as one pipelined command.

        The batch is journaled (with its packed payload in-band, so
        crash replay never depends on staging contents), its words are
        written into a reusable shared-memory staging slot, and the
        tiny staged command is broadcast to exactly the workers whose
        rows any plan touches.  The call returns **without waiting**:
        replies are collected at the next synchronization point — any
        other command, a parent-side read, a snapshot, or the staging
        ring wrapping around — so the parent can plan (and dispatch)
        batch N+1 while the workers still apply batch N.  Returns the
        number of (non-noop) plans dispatched.
        """
        if self._closed:
            raise ClusterError("shard worker pool is closed")
        if self._failed:
            raise PoolUnrecoverableError(
                self._fail_reason or "shard worker pool is unrecoverable"
            )
        # Bound drain-only sessions: each batch journals one entry with
        # its packed payload in-band, and the room-making loop below
        # collects without checkpointing, so the limit must be enforced
        # here too — otherwise a mutate-only session that never reads,
        # snapshots, or sends another command grows the journal without
        # bound.  Amortized cost: one pipeline sync + mark-shared round
        # trip per ``journal_limit`` drains.
        if len(self._journal) >= self.journal_limit:
            self._auto_checkpoint()
        plans = [plan for plan in batch if not plan.is_noop]
        if not plans:
            return 0
        workers = set()
        for plan in plans:
            workers.update(self._workers_for_plan(plan))
        if not workers:
            return 0
        targets = tuple(sorted(workers))
        if self._injector is not None:
            self._injector.on_command(self)
        # Make pipeline room *before* journaling the new batch: a
        # recovery triggered by this collect replays the journal, and
        # the new entry must not be replayed before it was ever sent.
        while len(self._inflight) >= self.max_inflight_batches:
            self._collect_batch(self._inflight.pop(0))
        started = time.perf_counter()
        packed = PlanBatch(plans).packed()
        sections = packed.section_lengths()
        # Stage the payload *before* journaling: slot allocation can
        # raise (shm exhaustion), and a journaled-but-never-dispatched
        # batch would be replayed into only a respawned worker later,
        # silently diverging the shards.  Nothing between the journal
        # append and the sends below can throw.
        words = packed.word_count()
        slot = self._staging_slot(words * 8)
        staged = np.ndarray((words,), dtype=np.int64, buffer=slot.segment.buf)
        packed.write_words(staged)
        # Checksum the staged words *after* the write and hand the sums
        # to the workers in-band: anything that corrupts the slot
        # between here and the worker's read is caught before a single
        # plan of the batch is applied.
        checksums = (
            word_checksums(staged, packed.count, sections)
            if self._checksums
            else None
        )
        if self._injector is not None:
            self._injector.on_staged(self, staged)
        # The drain that produced this batch tagged the tracer's active
        # slot; the id rides both command forms so crash replay keeps
        # the attribution.
        trace_id = self._telemetry.tracer.active()
        journal_cmd = ApplyBatchCmd(
            count=packed.count,
            sections=sections,
            packed=packed,
            trace_id=trace_id,
        )
        live_cmd = ApplyBatchCmd(
            count=packed.count,
            sections=sections,
            staging=slot.name,
            words=words,
            checksums=checksums,
            trace_id=trace_id,
        )
        entry = _JournalEntry(workers=targets, cmds=journal_cmd)
        self._journal.append(entry)
        dead = set()
        for worker_id in targets:
            try:
                if self._injector is not None:
                    self._injector.on_send(self, worker_id, live_cmd)
                self._workers[worker_id].conn.send(live_cmd)
            except (BrokenPipeError, OSError):
                dead.add(worker_id)
        self.stats.commands += 1
        self.stats.batches += 1
        self.stats.staged_bytes += packed.nbytes()
        self.stats.ipc_bytes += _CMD_OVERHEAD_BYTES * len(targets)
        self._inflight.append(
            _InflightBatch(
                workers=targets,
                count=len(plans),
                journal_cmd=journal_cmd,
                slot=slot.name,
                send_seconds=time.perf_counter() - started,
                dead=dead,
                entry=entry,
                trace_id=trace_id,
            )
        )
        return len(plans)

    def sync_batches(self) -> None:
        """Collect every outstanding pipelined batch reply (idempotent)."""
        if self._closed or self._failed or self._syncing or not self._inflight:
            return
        self._syncing = True
        try:
            while self._inflight:
                self._collect_batch(self._inflight.pop(0))
        finally:
            self._syncing = False
        if self.on_batches_drained is not None:
            self.on_batches_drained()

    def _collect_batch(self, record: _InflightBatch) -> None:
        """Collect one batch's replies; fold metrics; recover the dead."""
        started = time.perf_counter()
        per_shard: Dict[int, float] = {}
        slowest = 0.0
        first_error: Optional[str] = None
        for worker_id in record.workers:
            if worker_id in record.recovered:
                continue
            handle = self._workers[worker_id]
            try:
                if worker_id in record.dead:
                    raise _WorkerDied(worker_id)
                reply = self._recv(handle, record.journal_cmd)
                if not reply.ok and getattr(reply, "corrupt", False):
                    # The staged words failed checksum verification in
                    # shared memory; the worker applied nothing.  The
                    # journal retains the packed payload intact (it
                    # never touched the slot ring), so when no later
                    # pipelined batch is queued for this worker the
                    # repair is a plain in-band resend — still
                    # exactly-once.
                    self.stats.corruptions += 1
                    if any(
                        worker_id in later.workers
                        for later in self._inflight
                    ):
                        # Later batches already sit in this worker's
                        # pipe ahead of any resend: an in-band repair
                        # would apply this batch *after* them, and the
                        # reordered accumulation diverges from the
                        # in-process run.  Roll the worker through the
                        # journal instead — terminate, respawn from the
                        # replay base, strictly ordered replay.  The
                        # kill is deliberate, not the entry's doing, so
                        # it carries no poison attribution (a shared
                        # corrupted slot escalates every reader of the
                        # batch, which would otherwise count as the
                        # same entry killing two workers).
                        reply = self._recover(
                            worker_id,
                            record.journal_cmd,
                            journaled=True,
                            entry=None,
                        )
                        for later in self._inflight:
                            if worker_id in later.workers:
                                later.recovered.add(worker_id)
                        slowest = max(slowest, reply.seconds)
                        continue
                    if self._injector is not None:
                        self._injector.on_send(
                            self, worker_id, record.journal_cmd
                        )
                    handle.conn.send(record.journal_cmd)
                    reply = self._recv(handle, record.journal_cmd)
            except (_WorkerDied, BrokenPipeError, OSError):
                reply = self._recover(
                    worker_id,
                    record.journal_cmd,
                    journaled=True,
                    entry=record.entry,
                )
                # The replay rolled this worker through *every*
                # journaled batch, including any still in flight: mark
                # them collected so nothing waits on a reply that will
                # never ride the (new) pipe.
                for later in self._inflight:
                    if worker_id in later.workers:
                        later.recovered.add(worker_id)
                slowest = max(slowest, reply.seconds)
                continue
            if not reply.ok:
                if first_error is None:
                    first_error = (
                        f"worker {worker_id} failed applying a plan "
                        f"batch:\n{reply.error}"
                    )
                continue
            self._ingest(handle, reply)
            for gid, seconds in reply.per_shard_seconds.items():
                per_shard[gid] = per_shard.get(gid, 0.0) + seconds
            slowest = max(slowest, reply.seconds)
            self._worker_apply_hist.observe(reply.seconds)
            # The span's duration is the *worker's* clock (the reply's
            # busy seconds); the parent only stamps the trace id.
            self._telemetry.tracer.record(
                "worker.apply",
                record.trace_id,
                reply.seconds,
                worker=worker_id,
                plans=record.count,
            )
        if first_error is not None:
            raise ClusterError(first_error)
        self.apply_metrics.record_batch(per_shard, plans=record.count)
        self.stats.plans += record.count
        collect_wall = time.perf_counter() - started
        # IPC attribution — the same net formula the per-plan path uses
        # (parent wall on the exchange minus worker busy time), applied
        # at batch granularity: the parent's wall here is dispatch plus
        # collect (the gap in between was useful planning work, not
        # waiting), and on a contended box the dispatch wall itself is
        # largely the woken worker *doing the apply* on the parent's
        # timeslice, which is work, not wire overhead.
        ipc = max(0.0, record.send_seconds + collect_wall - slowest)
        self.stats.ipc_seconds += ipc
        if record.count:
            self.stats.recent_ipc_per_plan.append(ipc / record.count)

    def _staging_slot(self, nbytes: int) -> _StagingSlot:
        """A staging slot free of in-flight references, grown to fit."""
        if self._injector is not None:
            # shm_fail injection point: fires *before* the journal
            # append, so a raised OSError leaves the pool untouched and
            # the caller may retry or fall back to per-plan dispatch.
            self._injector.on_staging(self)
        nbytes = max(int(nbytes), 8)
        busy = {record.slot for record in self._inflight}
        free = [
            (index, slot)
            for index, slot in enumerate(self._staging)
            if slot.name not in busy
        ]
        for _, slot in free:
            if slot.nbytes >= nbytes:
                return slot
        if free:
            # Every free slot is too small: replace the largest with a
            # doubled fresh segment (workers cache staging attachments
            # by name, so the dead name simply ages out of their
            # caches).  Replacing the largest keeps slot sizes converging
            # instead of churning segments on alternating batch sizes.
            index, slot = max(free, key=lambda pair: pair[1].nbytes)
            try:
                slot.segment.close()
                slot.segment.unlink()
            except OSError:
                pass
            self._staging[index] = self._new_staging(
                max(nbytes, 2 * slot.nbytes)
            )
            return self._staging[index]
        slot = self._new_staging(nbytes)
        self._staging.append(slot)
        return slot

    def _new_staging(self, nbytes: int) -> _StagingSlot:
        self._staging_gen += 1
        name = f"{self._prefix}stg{self._staging_gen}"
        segment = create_segment(name, max(nbytes, _MIN_STAGING_BYTES))
        return _StagingSlot(name=name, segment=segment, nbytes=segment.size)

    def set_entry(self, row: int, col: int, value: float) -> None:
        owner = self._owner_of_row(row)
        self._command((owner,), SetEntryCmd(row, col, value), journaled=True)

    def _owner_of_row(self, row: int) -> int:
        gid = row // self._shard_rows
        for handle in self._workers:
            if handle.shard_lo <= gid < handle.shard_hi:
                return handle.worker_id
        raise ClusterError(f"no worker owns row {row} (shard {gid})")

    def _blocks_for(self, handle: _WorkerHandle, matrix: np.ndarray) -> Dict:
        blocks = {}
        for gid in range(handle.shard_lo, handle.shard_hi):
            spec = self._specs[gid]
            blocks[gid] = np.ascontiguousarray(
                matrix[spec.base : spec.base + spec.rows]
            )
        return blocks

    def add_rows(self, delta: np.ndarray) -> None:
        cmds = {
            handle.worker_id: AddRowsCmd(self._blocks_for(handle, delta))
            for handle in self._workers
        }
        self._command(self._all_workers(), cmds, journaled=True)
        # A dense command pins O(n²) in the journal; anchor immediately
        # so at most one such payload is ever retained.
        self._auto_checkpoint()

    def replace_rows(self, scores: np.ndarray) -> None:
        cmds = {
            handle.worker_id: ReplaceRowsCmd(self._blocks_for(handle, scores))
            for handle in self._workers
        }
        self._command(self._all_workers(), cmds, journaled=True)
        self._auto_checkpoint()

    def add_node(self, transitions: Optional[dict] = None) -> int:
        node = self._n
        new_n = node + 1
        tail_gid = node // self._shard_rows
        last = self._workers[-1]
        if tail_gid >= len(self.mirror_shards):
            # A brand-new shard always extends the last worker's slice.
            last.shard_hi = tail_gid + 1
            owner = last.worker_id
        else:
            owner = self._owner_of_row(node)
        cmds = {
            handle.worker_id: AddNodeCmd(
                num_nodes=new_n,
                own_tail=(handle.worker_id == owner),
                shard_hi=handle.shard_hi,
                transitions=transitions,
                dtype=self._dtype.name,
            )
            for handle in self._workers
        }
        self._n = new_n
        self._command(self._all_workers(), cmds, journaled=True)
        return node

    def mark_shared(self) -> None:
        self._command(self._all_workers(), MarkSharedCmd(), journaled=False)
        for shard in self.mirror_shards:
            shard.shared = True

    def snapshot_views(self) -> Tuple[List[np.ndarray], List[str]]:
        """Read-only live-window views + their segment names (post-mark)."""
        views = []
        names = []
        for gid, shard in enumerate(self.mirror_shards):
            views.append(shard.buffer[: shard.rows, : self._n])
            names.append(self._specs[gid].name)
        return views, names

    def pin_segments(self, names) -> None:
        for name in names:
            self._segments.acquire(name)

    def release_segments(self, names) -> None:
        if self._closed:
            return
        for name in names:
            self._segments.release(name)

    def checkpoint(self) -> None:
        """Make the current state the crash-replay anchor.

        Called after every snapshot: the snapshot's segments are frozen
        by copy-on-write, so they form a valid base, and the journal up
        to this point can be discarded.  Only valid when the current
        segments are write-protected (mark-shared has run since the
        last write) — callers other than :meth:`ShardClient.snapshot`
        should use :meth:`_auto_checkpoint`.
        """
        self._drop_base()
        self._replay_base = self._capture_base()
        self._journal.clear()
        # Dropped journal entries can never be replayed again, so their
        # crash attributions are moot (and id() keys must not alias).
        self._entry_crashes.clear()

    def _auto_checkpoint(self) -> None:
        """Self-anchored checkpoint: pin the live segments, drop the journal.

        Bounds journal memory for sessions that never snapshot.  The
        mark-shared round trip freezes the current segments (every
        later write copy-on-writes away), which is exactly the
        precondition :meth:`checkpoint` needs.  Amortized cost: at most
        one extra segment copy per shard per ``journal_limit`` commands.
        """
        self.mark_shared()
        self.checkpoint()

    def configure_topk(self, k: int, capacity: Optional[int] = None):
        from .client import PoolTopK

        capacity = int(capacity) if capacity is not None else max(2 * k, 16)
        self._command(
            self._all_workers(), TopKConfigCmd(k, capacity), journaled=True
        )
        self._topk_config = (k, capacity)
        self._topk = PoolTopK(self, k, capacity)
        return self._topk

    def topk_rescan(self, shard_ids) -> Dict[int, list]:
        """Re-scan dirty shards on their owners; return their candidates."""
        by_worker: Dict[int, List[int]] = {}
        for gid in shard_ids:
            for handle in self._workers:
                if handle.shard_lo <= gid < handle.shard_hi:
                    by_worker.setdefault(handle.worker_id, []).append(gid)
                    break
        out: Dict[int, list] = {}
        for worker_id, gids in by_worker.items():
            replies = self._command(
                (worker_id,), TopKRescanCmd(gids), journaled=False
            )
            out.update(replies[worker_id].data)
        return out

    def worker_metrics(self) -> List[dict]:
        replies = self._command(
            self._all_workers(), MetricsCmd(), journaled=False
        )
        return [replies[w].data for w in sorted(replies)]

    def ping(self) -> bool:
        self._command(self._all_workers(), PingCmd(), journaled=False)
        return True

    def heartbeat(self) -> bool:
        """Liveness probe safe to call between drains.

        Returns ``False`` without touching the pipes while pipelined
        batch replies are outstanding (the strict FIFO protocol means
        the pending replies *are* the liveness signal); otherwise pings
        every worker.  Raises :class:`PoolUnrecoverableError` once the
        pool has failed, which is how the background writer's idle-loop
        heartbeat discovers a dead pool without waiting for the next
        drain.
        """
        if self._closed:
            raise ClusterError("shard worker pool is closed")
        if self._failed:
            raise PoolUnrecoverableError(
                self._fail_reason or "shard worker pool is unrecoverable"
            )
        if self._inflight:
            return False
        self.ping()
        return True

    # -------------------------------------------------------------- #
    # Degraded-mode rebuild support
    # -------------------------------------------------------------- #

    def recovery_state(self):
        """The in-process rebuild anchor: ``(base, journal, shard_rows)``.

        Valid while the pool is merely *failed* (not closed): ``_fail``
        retains the replay base's frozen segments and the journal
        exactly so :func:`repro.cluster.recovery.rebuild_score_store`
        can replay them parent-side.
        """
        if self._closed:
            raise ClusterError("shard worker pool is closed")
        return self._replay_base, list(self._journal), self._shard_rows

    def base_segment_array(self, spec: SegmentSpec) -> np.ndarray:
        """A private copy of one replay-base segment's live rows."""
        segment = self._segments.acquire(spec.name)
        try:
            view = ndarray_view(
                segment,
                (spec.rows_cap, spec.cols_cap),
                writable=False,
                dtype=spec.dtype,
            )
            return np.array(view[: spec.rows, :])
        finally:
            self._segments.release(spec.name)

    def apply_report(self) -> dict:
        """Executor gauges: per-shard/per-worker apply time vs IPC."""
        # Fold any pipelined replies into the gauges first, so the
        # report never undercounts a batch that was dispatched but not
        # yet collected.
        self.sync_batches()
        report = {
            "mode": "process",
            "workers": self.num_workers,
            "score_dtype": self._dtype.name,
        }
        report.update(self.apply_metrics.report())
        report.update(
            {
                "per_worker_seconds": {
                    str(w): s
                    for w, s in sorted(self.stats.worker_seconds.items())
                },
                "ipc_seconds": self.stats.ipc_seconds,
                "ipc_bytes": self.stats.ipc_bytes,
                "staged_bytes": self.stats.staged_bytes,
                "ipc_per_plan_ms": (
                    self.stats.ipc_seconds / self.stats.plans * 1e3
                    if self.stats.plans
                    else 0.0
                ),
                "recent_ipc_per_plan_ms": window_summary_ms(
                    self.stats.recent_ipc_per_plan
                ),
                "commands": self.stats.commands,
                "plan_batches": self.stats.batches,
                "crashes": self.stats.crashes,
                "respawns": self.stats.respawns,
                "replayed_commands": self.stats.replayed_commands,
                "corruptions": self.stats.corruptions,
                "journal_length": self.journal_length(),
                "live_segments": self.live_segments(),
                "failed": self._failed,
                "supervisor": self.supervisor.report(),
            }
        )
        if self._injector is not None:
            report["faults"] = self._injector.report()
        return report

    # -------------------------------------------------------------- #
    # Shutdown
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Stop every worker and unlink every segment (idempotent)."""
        if self._closed:
            return
        try:
            # Best-effort: let in-flight batches land so workers see a
            # quiet pipe before the shutdown command.
            self.sync_batches()
        except Exception:
            pass
        if self._closed:
            # A crash during the final sync may have closed us already.
            return
        self._closed = True
        self._inflight.clear()
        for handle in self._workers:
            try:
                handle.conn.send(ShutdownCmd())
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            try:
                if handle.conn.poll(1.0):
                    handle.conn.recv()
            except (EOFError, OSError):
                pass
            handle.process.join(2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        for slot in self._staging:
            try:
                slot.segment.close()
                slot.segment.unlink()
            except OSError:
                pass
        self._staging.clear()
        self._segments.release_all()
        sweep_segments(self._prefix)
        unregister_pool(self._manifest)
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardWorkerPool(n={self._n}, workers={self.num_workers}, "
            f"shards={self.num_shards}, closed={self._closed})"
        )
