"""Parent-side proxies over a :class:`~repro.cluster.pool.ShardWorkerPool`.

:class:`ShardClient` satisfies the executor surface the engine and the
serving layer's background writer already drain into — it *is a*
:class:`~repro.executor.score_store.ScoreStore` whose reads run against
the pool's zero-copy shared-memory mirror and whose writes fan out to
the worker processes.  Swapping it in is what makes
``DynamicSimRank(executor="process")`` a one-line change at every other
layer.

:class:`PoolTopK` is the distributed sibling of
:class:`~repro.executor.topk_index.ShardTopK`: the candidate heaps live
in the workers (patched from each applied plan), and the parent keeps a
mirror of the per-shard candidate sets fed by the candidate deltas that
ride on apply replies.  A query is served entirely from the mirror when
no shard is dirty; dirty shards cost one re-scan round trip to their
owners.  Rankings are bit-identical to the in-process index.

:class:`SharedScoreSnapshot` pins frozen shard views backed by shared
memory; a finalizer returns the segment references to the pool when the
snapshot is garbage collected.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ClusterError, DimensionError
from ..executor.score_store import ScoreSnapshot, ScoreStore, _Shard
from ..executor.topk_index import Pair, ScoredPair, TopKStats, _key
from ..incremental.plan import PlanBatch
from ..telemetry import NULL_TELEMETRY


class PlanningOverlay(ScoreStore):
    """A parent-side what-if view of the scores for drain planning.

    Planning group ``k+1`` of a drain reads the scores *after* group
    ``k`` was applied, which is exactly what forces the per-plan round
    trip: the parent's shared-memory mirror only advances when a worker
    reply lands.  The overlay breaks that dependency without breaking
    bit-identity: it wraps every mirror shard copy-on-write (the first
    scatter into a shard clones it into parent-private memory) and
    inherits :meth:`ScoreStore.apply_plan` unchanged, so applying a plan
    here runs the **identical** union-support GEMM + scatter the workers
    will run — same code, same shard geometry, same values.  Planning
    reads (``matvec``, columns, entries) against the overlay therefore
    see bit-for-bit the scores the in-process oracle would see, while
    the real apply is free to ride one batched command later.

    The overlay outlives a single drain: while a batch is still in
    flight, its diverged shards are the freshest consistent view the
    parent has, so the next drain's overlay is seeded from them.  Once
    the pool has ingested every reply the mirror has caught up
    (bit-identically) and the overlay is dropped.
    """

    def __init__(self, client: "ShardClient") -> None:
        # Deliberately not calling ScoreStore.__init__: shards wrap the
        # client's mirror (or its retained overlay copies), not a dense
        # matrix.
        self._n = client.num_nodes
        self._shard_rows = client.shard_rows
        self._dtype = client.dtype
        self._topk = None
        self.version = 0
        self.cow_copies = 0
        self.apply_metrics = ApplyMetricsStub()
        # What-if applies must not pollute the real apply histogram.
        self._telemetry = NULL_TELEMETRY
        self._apply_hist = NULL_TELEMETRY.registry.histogram("null")
        self._shard_timing = {}
        self._shards = []
        overlays = client._overlay
        for gid, mirror in enumerate(client._pool.mirror_shards):
            source = overlays.get(gid, mirror)
            shard = _Shard(source.base, source.rows, source.buffer)
            # Copy-on-write: the first scatter clones the (read-only
            # shared-memory or retained-overlay) buffer into private
            # parent memory; untouched shards stay zero-copy.
            shard.shared = True
            self._shards.append(shard)

    def diverged_shards(self) -> Dict[int, _Shard]:
        """The shards this overlay actually wrote (post-batch values)."""
        return {
            gid: shard
            for gid, shard in enumerate(self._shards)
            if not shard.shared
        }


class ApplyMetricsStub:
    """Throwaway metrics sink for overlay applies (never reported)."""

    def record(self, per_shard, plans: int = 1) -> None:
        pass

    def record_batch(
        self, per_shard, plans: int, per_plan_seconds=None
    ) -> None:
        pass


class SharedScoreSnapshot(ScoreSnapshot):
    """A frozen score snapshot whose shard views live in shared memory.

    Read-API-identical to :class:`ScoreSnapshot`; additionally holds the
    backing segment references so the pool keeps them mapped (and
    unlinked only) after the last snapshot referencing them goes away.
    """

    __slots__ = ("_segment_names", "_finalizer", "__weakref__")

    def __init__(
        self,
        num_nodes: int,
        version: int,
        shard_rows: int,
        views,
        segment_names,
        release,
    ) -> None:
        super().__init__(num_nodes, version, shard_rows, views)
        self._segment_names = tuple(segment_names)
        self._finalizer = weakref.finalize(
            self, release, self._segment_names
        )

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """The shared-memory segments this snapshot pins."""
        return self._segment_names


class PoolTopK:
    """Pool-backed top-k rankings, mirror-served and worker-maintained.

    Exposes the :class:`~repro.executor.topk_index.ShardTopK` query
    surface (``top_k``, ``k``, ``capacity``, ``stats``,
    ``dirty_shards``) so the engine and the service metrics never need
    to know the heaps live in other processes.  ``stats`` reflects the
    parent's view: a "heap hit" is a query answered purely from the
    mirror, and ``shard_rescans`` counts worker-side re-scans the
    parent had to request.
    """

    def __init__(self, pool, k: int, capacity: int) -> None:
        if k < 1:
            raise DimensionError(f"k must be >= 1, got {k}")
        self._pool = pool
        self.k = int(k)
        self.capacity = int(capacity)
        if self.capacity < self.k:
            raise DimensionError(
                f"capacity {self.capacity} must be >= k {self.k}"
            )
        self.stats = TopKStats()
        #: Monotone change counter mirroring
        #: :attr:`repro.executor.topk_index.ShardTopK.revision` — bumped
        #: whenever worker deltas or respawn invalidations touch the
        #: mirror, so ranking subscribers can skip no-op drains.
        self.revision = 0
        #: Global shard id -> candidate dict, or None while dirty.
        self._mirror: Dict[int, Optional[Dict[Pair, float]]] = {
            gid: None for gid in range(pool.num_shards)
        }

    # -------------------------------------------------------------- #
    # Feed (called by the pool while ingesting replies)
    # -------------------------------------------------------------- #

    def _sync_keys(self) -> None:
        for gid in range(self._pool.num_shards):
            self._mirror.setdefault(gid, None)

    def apply_changes(self, worker_id: int, changes) -> None:
        """Fold one reply's candidate deltas into the mirror."""
        if changes is None:
            return
        self.revision += 1
        self._sync_keys()
        if changes == "all":
            lo, hi = self._pool.worker_range(worker_id)
            for gid in range(lo, hi):
                self._mirror[gid] = None
            return
        for gid, payload in changes.items():
            if payload is None:
                self._mirror[gid] = None
                self.stats.floor_invalidations += 1
            else:
                self._mirror[gid] = {
                    (a, b): score for a, b, score in payload
                }
                self.stats.patched_entries += len(payload)

    def mark_shards_dirty(self, shard_ids) -> None:
        """Invalidate mirror shards (after a worker respawn)."""
        self.revision += 1
        self._sync_keys()
        for gid in shard_ids:
            if gid in self._mirror:
                self._mirror[gid] = None

    def dirty_shards(self) -> int:
        self._sync_keys()
        return sum(1 for entries in self._mirror.values() if entries is None)

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #

    def top_k(self, k: Optional[int] = None) -> List[ScoredPair]:
        """The global top-``k`` pairs, bit-identical to the in-process path.

        Mirror-only when every shard is clean (no IPC); otherwise one
        re-scan request per worker owning dirty shards.
        """
        k = self.k if k is None else int(k)
        if k < 0:
            raise DimensionError(f"k must be >= 0, got {k}")
        if k > self.capacity:
            raise DimensionError(
                f"k={k} exceeds the index capacity {self.capacity}; "
                f"build a larger top-k index"
            )
        self.stats.queries += 1
        if k == 0:
            self.stats.heap_hits += 1
            return []
        # Pipelined batch replies carry the candidate deltas this mirror
        # is fed from — land them before serving a ranking.
        self._pool.sync_batches()
        self._sync_keys()
        self.stats.shard_queries += len(self._mirror)
        dirty = [gid for gid, entries in self._mirror.items() if entries is None]
        if dirty:
            candidates_by_shard = self._pool.topk_rescan(sorted(dirty))
            for gid, payload in candidates_by_shard.items():
                self._mirror[gid] = {
                    (a, b): score for a, b, score in payload
                }
            self.stats.shard_rescans += len(dirty)
        else:
            self.stats.heap_hits += 1
        candidates = [
            (a, b, score)
            for entries in self._mirror.values()
            if entries
            for (a, b), score in entries.items()
        ]
        best = heapq.nsmallest(
            k, candidates, key=lambda t: _key(t[0], t[1], t[2])
        )
        return [(a, b, float(score)) for a, b, score in best]

    def __repr__(self) -> str:
        return (
            f"PoolTopK(k={self.k}, capacity={self.capacity}, "
            f"dirty={self.dirty_shards()}/{len(self._mirror)})"
        )


class ShardClient(ScoreStore):
    """The pool's executor facade: reads are local, writes fan out.

    Inherits every read path (point/row/column reads, matvec, duck-typed
    ``[:, j]`` indexing, ``iter_shard_blocks`` …) from
    :class:`ScoreStore` — they run against the pool's read-only
    shared-memory mirror, so the kernel's Theorem 1–3 precomputation
    and the snapshot/top-k block readers work unchanged and zero-copy.
    Every mutation is overridden to dispatch through the pool.
    """

    #: The engine's batched drain path keys off this: the client can
    #: plan a whole drain against a :class:`PlanningOverlay` and ship it
    #: through :meth:`apply_batch` as one pipelined command.
    supports_plan_batches = True

    def __init__(self, pool) -> None:
        # Deliberately *not* calling ScoreStore.__init__: the mirror
        # shard list is owned (and kept current) by the pool.
        self._pool = pool
        self._n = pool.num_nodes
        self._shard_rows = pool.shard_rows
        self._dtype = pool.dtype
        self._shards = pool.mirror_shards
        self._topk = None
        self._shard_timing = {}
        self.version = 0
        self.apply_metrics = pool.apply_metrics
        # Reads never observe; writes dispatch to the pool, which owns
        # the real instruments — the client holds nulls for API parity.
        self._telemetry = pool._telemetry
        self._apply_hist = NULL_TELEMETRY.registry.histogram("null")
        #: Optional zero-arg callable returning the live
        #: :meth:`TransitionStore.export_packed` payload; when set, the
        #: pool ships it to workers on topology changes.
        self.transition_exporter = None
        #: Diverged overlay shards retained while batches are in flight
        #: (gid -> post-batch :class:`_Shard`); the freshest consistent
        #: parent-side view until the mirror catches up.
        self._overlay: Dict[int, _Shard] = {}
        pool.on_batches_drained = self._drop_overlay

    # -------------------------------------------------------------- #
    # Pool plumbing
    # -------------------------------------------------------------- #

    @property
    def pool(self):
        return self._pool

    @property
    def cow_copies(self) -> int:
        """Worker-side copy-on-write clones (parity with ScoreStore)."""
        return self._pool.stats.cow_copies

    def close(self) -> None:
        self._pool.close()

    def heartbeat(self) -> bool:
        """Probe worker liveness between drains (see pool.heartbeat).

        Raises :class:`~repro.exceptions.PoolUnrecoverableError` once
        the pool has failed — the background writer's idle heartbeat
        uses this to discover a dead pool without waiting for a drain.
        """
        return self._pool.heartbeat()

    def _drop_overlay(self) -> None:
        """Pipeline drained: the mirror is authoritative again."""
        self._overlay.clear()

    def _settle(self) -> None:
        """Collect in-flight batch replies before an authoritative read.

        Parent-side reads outside a drain (point queries, ``to_array``,
        block iteration) must observe the post-batch scores; waiting for
        the replies (which also rolls the mirror forward and drops the
        overlay) is both the simplest and the bit-exact way to get
        there.  Planning reads *inside* a drain deliberately skip this
        — they go through a :class:`PlanningOverlay` instead.
        """
        self._pool.sync_batches()

    # -------------------------------------------------------------- #
    # Reads — settle the pipeline, then serve from the mirror
    # -------------------------------------------------------------- #

    def entry(self, row: int, col: int) -> float:
        self._settle()
        return super().entry(row, col)

    def row(self, row: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        self._settle()
        return super().row(row, out=out)

    def column(
        self, col: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        self._settle()
        return super().column(col, out=out)

    def matvec(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        self._settle()
        return super().matvec(x, out=out)

    def to_array(self) -> np.ndarray:
        self._settle()
        return super().to_array()

    def shard_block(self, index: int):
        self._settle()
        return super().shard_block(index)

    def iter_shard_blocks(self):
        self._settle()
        return super().iter_shard_blocks()

    def shard_report(self):
        self._settle()
        return super().shard_report()

    # -------------------------------------------------------------- #
    # Writes — fan out to the workers
    # -------------------------------------------------------------- #

    def apply_plan(self, plan) -> None:
        # No parent-side top-k notification: the client's canonical
        # index is PoolTopK, fed from worker reply deltas — a second
        # observer patching here would double-patch the same pairs.
        if plan.is_noop:
            return
        self._pool.apply_plan(plan)
        self.version += 1

    def planning_view(self) -> PlanningOverlay:
        """A what-if score view for planning one drain's plan batch.

        See :class:`PlanningOverlay`; hand the finished batch (and this
        view) to :meth:`apply_batch`.
        """
        return PlanningOverlay(self)

    def apply_batch(
        self, batch: PlanBatch, planned_on: Optional[PlanningOverlay] = None
    ) -> None:
        """Ship a whole drain's plans as one pipelined pool command.

        ``planned_on`` is the overlay the drain was planned against; its
        diverged shards are retained so the *next* drain (and the next
        overlay) can start from the post-batch scores before the worker
        replies land.  The call does not wait for the workers — see
        :meth:`ShardWorkerPool.apply_batch`.
        """
        dispatched = self._pool.apply_batch(batch)
        if not dispatched:
            return
        if planned_on is not None:
            self._overlay.update(planned_on.diverged_shards())
        self.version += dispatched

    def add_dense(self, delta: np.ndarray) -> None:
        delta = np.asarray(delta, dtype=self._dtype)
        if delta.shape != self.shape:
            raise DimensionError(f"delta shape {delta.shape} != {self.shape}")
        self._pool.add_rows(delta)
        self.version += 1
        if self._topk is not None:
            self._topk.invalidate_all()

    def replace_dense(self, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=self._dtype)
        if scores.shape != self.shape:
            raise DimensionError(
                f"scores shape {scores.shape} != {self.shape}"
            )
        self._pool.replace_rows(scores)
        self.version += 1
        if self._topk is not None:
            self._topk.invalidate_all()

    def set_entry(self, row: int, col: int, value: float) -> None:
        self._pool.set_entry(row, col, float(value))
        self.version += 1
        if self._topk is not None:
            self._topk.on_entry(row, col)

    def set_shard_dtype(self, index: int, dtype) -> bool:
        """Per-shard demotion is an in-process-only capability.

        Pool shards live in worker-owned shared-memory segments at one
        uniform dtype (carried on every
        :class:`~repro.cluster.messages.SegmentSpec`); retyping a parent
        mirror buffer would silently diverge from the worker's view.
        Choose the precision up front via the pool's ``dtype`` option.
        """
        raise ClusterError(
            "per-shard dtype changes are not supported on the process "
            "executor; construct the pool with dtype='float32' instead"
        )

    def set_dtype(self, dtype) -> int:
        """See :meth:`set_shard_dtype` — uniform pool dtype is fixed at build."""
        raise ClusterError(
            "dtype changes are not supported on the process executor; "
            "construct the pool with dtype='float32' instead"
        )

    def add_node(self) -> int:
        transitions = (
            self.transition_exporter() if self.transition_exporter else None
        )
        node = self._pool.add_node(transitions=transitions)
        self._n = self._pool.num_nodes
        self.version += 1
        if self._topk is not None:
            self._topk.on_add_node()
        return node

    # -------------------------------------------------------------- #
    # Snapshots — zero-copy pins over shared memory
    # -------------------------------------------------------------- #

    def snapshot(self) -> SharedScoreSnapshot:
        """Pin the current version (cross-process copy-on-write).

        One tiny mark-shared round trip per worker, then read-only
        views over the live segments: no score bytes move.  The pin
        also becomes the pool's crash-replay anchor, so the journal is
        truncated here.
        """
        pool = self._pool
        pool.mark_shared()
        views, names = pool.snapshot_views()
        frozen = []
        for view in views:
            view = view[:]  # slice -> fresh view object
            view.flags.writeable = False
            frozen.append(view)
        pool.pin_segments(names)
        snap = SharedScoreSnapshot(
            self._n,
            self.version,
            self._shard_rows,
            frozen,
            names,
            pool.release_segments,
        )
        pool.checkpoint()
        return snap

    # -------------------------------------------------------------- #
    # Executor hooks
    # -------------------------------------------------------------- #

    def make_topk_index(self, k: int) -> PoolTopK:
        """Distributed top-k: heaps in the workers, mirror in the parent."""
        return self._pool.configure_topk(k)

    def apply_report(self) -> dict:
        return self._pool.apply_report()

    def worker_metrics(self) -> List[dict]:
        return self._pool.worker_metrics()

    def __repr__(self) -> str:
        return (
            f"ShardClient(n={self._n}, workers={self._pool.num_workers}, "
            f"shards={len(self._shards)}, version={self.version})"
        )


def build_client(
    scores: np.ndarray,
    shard_rows: int,
    workers: int,
    start_method: Optional[str] = None,
    **pool_kwargs,
) -> ShardClient:
    """Construct a pool + client pair from an initial dense matrix."""
    from .pool import DEFAULT_START_METHOD, ShardWorkerPool

    pool = ShardWorkerPool(
        scores,
        shard_rows=shard_rows,
        workers=workers,
        start_method=start_method or DEFAULT_START_METHOD,
        **pool_kwargs,
    )
    return ShardClient(pool)
