"""Multi-process shard workers: ``apply_plan`` fanned over processes.

The cluster layer moves the score shards out of the serving process:
a :class:`ShardWorkerPool` owns N worker processes, each holding a
contiguous slice of the row-block shards in shared memory plus its
slice of the shard-local top-k heaps; the parent broadcasts pickled
:class:`~repro.incremental.plan.UpdatePlan` objects (and packed
transition payloads on topology change) over command pipes, and the
:class:`ShardClient` proxy makes the whole arrangement quack like the
in-process :class:`~repro.executor.score_store.ScoreStore` so the
engine, the background writer, and the snapshot readers run unchanged.

Failure model (see the README's "Failure model" table): a
:class:`~repro.cluster.supervisor.WorkerSupervisor` drives adaptive
reply deadlines, a token-bucket respawn budget with backoff, and
poison-batch quarantine; :mod:`repro.cluster.faults` injects seeded
fault schedules for the chaos suite; and
:func:`~repro.cluster.recovery.rebuild_score_store` reassembles an
in-process store from a failed pool's frozen base + journal so the
serving layer can degrade gracefully instead of dying.

Select it with ``SimRankService(executor="process", workers=N)`` or
``python -m repro serve ... --workers N``.
"""

from .client import (
    PlanningOverlay,
    PoolTopK,
    ShardClient,
    SharedScoreSnapshot,
    build_client,
)
from .faults import FaultAction, FaultInjector, FaultPlan
from .messages import SegmentSpec, WorkerInit, word_checksums
from .pool import (
    DEFAULT_COMMAND_TIMEOUT,
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_START_METHOD,
    PoolStats,
    ShardWorkerPool,
)
from .recovery import rebuild_score_store
from .supervisor import (
    AdaptiveDeadline,
    QuarantinedBatch,
    RespawnBudget,
    WorkerHealth,
    WorkerSupervisor,
)
from .worker import WorkerShardStore, worker_loop

__all__ = [
    "AdaptiveDeadline",
    "DEFAULT_COMMAND_TIMEOUT",
    "DEFAULT_MAX_RESPAWNS",
    "DEFAULT_START_METHOD",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "PlanningOverlay",
    "PoolStats",
    "PoolTopK",
    "QuarantinedBatch",
    "RespawnBudget",
    "SegmentSpec",
    "ShardClient",
    "ShardWorkerPool",
    "SharedScoreSnapshot",
    "WorkerHealth",
    "WorkerInit",
    "WorkerShardStore",
    "WorkerSupervisor",
    "build_client",
    "rebuild_score_store",
    "word_checksums",
    "worker_loop",
]
