"""Multi-process shard workers: ``apply_plan`` fanned over processes.

The cluster layer moves the score shards out of the serving process:
a :class:`ShardWorkerPool` owns N worker processes, each holding a
contiguous slice of the row-block shards in shared memory plus its
slice of the shard-local top-k heaps; the parent broadcasts pickled
:class:`~repro.incremental.plan.UpdatePlan` objects (and packed
transition payloads on topology change) over command pipes, and the
:class:`ShardClient` proxy makes the whole arrangement quack like the
in-process :class:`~repro.executor.score_store.ScoreStore` so the
engine, the background writer, and the snapshot readers run unchanged.

Select it with ``SimRankService(executor="process", workers=N)`` or
``python -m repro serve ... --workers N``.
"""

from .client import (
    PlanningOverlay,
    PoolTopK,
    ShardClient,
    SharedScoreSnapshot,
    build_client,
)
from .messages import SegmentSpec, WorkerInit
from .pool import (
    DEFAULT_COMMAND_TIMEOUT,
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_START_METHOD,
    PoolStats,
    ShardWorkerPool,
)
from .worker import WorkerShardStore, worker_loop

__all__ = [
    "DEFAULT_COMMAND_TIMEOUT",
    "DEFAULT_MAX_RESPAWNS",
    "DEFAULT_START_METHOD",
    "PlanningOverlay",
    "PoolStats",
    "PoolTopK",
    "SegmentSpec",
    "ShardClient",
    "ShardWorkerPool",
    "SharedScoreSnapshot",
    "WorkerInit",
    "WorkerShardStore",
    "build_client",
    "worker_loop",
]
