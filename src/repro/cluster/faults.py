"""Deterministic seeded fault injection for the shard-worker pool.

The chaos suite needs reproducible failure schedules — "worker 1 dies
while command 7 is in flight" must mean the same thing on every run —
so faults are expressed as a :class:`FaultPlan`: a list of
:class:`FaultAction` records fired by explicit hooks the pool calls at
well-defined points in its dispatch path.  Nothing here is probabilistic
at runtime; :meth:`FaultPlan.seeded` derives a schedule from a seed
once, up front, PROSE-style (seeded search over schedules rather than
hand-picked crash points).

Fault kinds (all injected parent-side, so production workers carry zero
injection code):

``crash``
    SIGKILL the target worker right as a command is sent to it — the
    classic mid-dispatch crash that exercises journal replay.
``poison``
    SIGKILL the target on *every* batch command sent to it from the
    trigger point on, including replay resends.  The same journal entry
    kills the fresh respawn, which is exactly the deterministic-failure
    signature the quarantine logic must catch.
``stall``
    SIGSTOP the worker and SIGCONT it after ``delay`` seconds — replies
    arrive but only after the adaptive deadline has (or has not) fired.
``shm_fail``
    The next staging-slot allocation raises ``OSError``, modelling shm
    exhaustion.  Fires before the journal append, so the pool state is
    untouched and the caller may retry or fall back to per-plan sends.
``corrupt``
    Flip one 64-bit word of the staged batch after the checksums were
    computed — caught by the per-section checksums in
    :func:`repro.cluster.messages.word_checksums` and repaired by
    resending the intact journal copy.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["FaultAction", "FaultInjector", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("crash", "poison", "stall", "shm_fail", "corrupt")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: do ``kind`` to ``worker_id`` at ``at_command``.

    ``at_command`` counts dispatched pool commands (the pool's own
    logical clock, starting at 1 with the constructor's init ping), so a
    schedule is stable across timing jitter.  ``delay`` is only
    meaningful for ``stall`` (seconds until SIGCONT).
    """

    kind: str
    worker_id: int
    at_command: int
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_command < 2:
            # Command 1 is the constructor's init ping; injecting there
            # would fail pool construction, which is not a failure mode
            # this harness models.
            raise ValueError("at_command must be >= 2")


@dataclass
class FaultPlan:
    """A reproducible schedule of fault actions."""

    actions: List[FaultAction] = field(default_factory=list)
    seed: Optional[int] = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        horizon: int,
        max_faults: int = 3,
        kinds: Tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Derive a schedule from ``seed`` over ``horizon`` commands."""
        rng = np.random.default_rng(seed)
        count = int(rng.integers(1, max_faults + 1))
        actions = []
        for _ in range(count):
            kind = str(rng.choice(list(kinds)))
            actions.append(
                FaultAction(
                    kind=kind,
                    worker_id=int(rng.integers(0, max(1, workers))),
                    at_command=int(rng.integers(2, max(3, horizon))),
                    delay=float(rng.uniform(0.05, 0.4))
                    if kind == "stall"
                    else 0.0,
                )
            )
        actions.sort(key=lambda a: a.at_command)
        return cls(actions=actions, seed=seed)

    def describe(self) -> str:
        parts = [
            f"{a.kind}@{a.at_command}->w{a.worker_id}" for a in self.actions
        ]
        return f"FaultPlan(seed={self.seed}: {', '.join(parts) or 'empty'})"


class FaultInjector:
    """Runtime driver for a :class:`FaultPlan`, owned by one pool.

    The pool calls the ``on_*`` hooks; the injector keeps a logical
    command clock and fires each action exactly once (``poison`` stays
    armed until the pool fails, by design).  All process signalling is
    wrapped so a target that already exited never raises.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.clock = 0
        self.fired: List[FaultAction] = []
        self._pending = list(plan.actions)
        self._poisoned: dict = {}  # worker_id -> trigger clock
        self._shm_fail_armed = False
        self._corrupt_armed: Optional[FaultAction] = None
        self._rng = np.random.default_rng(
            plan.seed if plan.seed is not None else 0
        )

    # ---------------------------------------------------------- #
    # Hooks (called by ShardWorkerPool)
    # ---------------------------------------------------------- #

    def on_command(self, pool) -> None:
        """A new pool command is being dispatched: advance the clock."""
        self.clock += 1
        due = [a for a in self._pending if a.at_command <= self.clock]
        for action in due:
            self._pending.remove(action)
            self._arm(pool, action)

    def on_send(self, pool, worker_id: int, cmd) -> None:
        """About to send ``cmd`` to ``worker_id`` (incl. replay resends)."""
        trigger = self._poisoned.get(worker_id)
        if trigger is not None and type(cmd).__name__ == "ApplyBatchCmd":
            self._kill(pool, worker_id)

    def on_staging(self, pool) -> None:
        """A staging slot is about to be allocated."""
        if self._shm_fail_armed:
            self._shm_fail_armed = False
            raise OSError(
                "injected fault: shared-memory staging allocation failed"
            )

    def on_staged(self, pool, words: np.ndarray) -> None:
        """Batch words staged and checksummed: corruption window."""
        action = self._corrupt_armed
        if action is None or words.size == 0:
            return
        self._corrupt_armed = None
        position = int(self._rng.integers(0, words.size))
        words[position] ^= np.int64(0x5A5A5A5A5A5A5A5A)
        self.fired.append(action)

    # ---------------------------------------------------------- #
    # Action firing
    # ---------------------------------------------------------- #

    def _arm(self, pool, action: FaultAction) -> None:
        worker_id = action.worker_id % max(1, pool.num_workers)
        if action.kind == "crash":
            self._kill(pool, worker_id)
            self.fired.append(action)
        elif action.kind == "poison":
            self._poisoned[worker_id] = self.clock
            self.fired.append(action)
        elif action.kind == "stall":
            self._stall(pool, worker_id, action.delay)
            self.fired.append(action)
        elif action.kind == "shm_fail":
            self._shm_fail_armed = True
            self.fired.append(action)
        elif action.kind == "corrupt":
            self._corrupt_armed = action

    def _kill(self, pool, worker_id: int) -> None:
        process = self._process(pool, worker_id)
        if process is None or process.pid is None:
            return
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            return
        process.join(1.0)

    def _stall(self, pool, worker_id: int, delay: float) -> None:
        process = self._process(pool, worker_id)
        if process is None or process.pid is None:
            return
        pid = process.pid
        try:
            os.kill(pid, signal.SIGSTOP)
        except (ProcessLookupError, OSError):
            return

        def _resume() -> None:
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):
                pass

        timer = threading.Timer(max(0.01, delay), _resume)
        timer.daemon = True
        timer.start()

    @staticmethod
    def _process(pool, worker_id: int):
        handles = getattr(pool, "_workers", None)
        if not handles or worker_id >= len(handles):
            return None
        handle = handles[worker_id]
        process = getattr(handle, "process", None)
        if process is None or not process.is_alive():
            return None
        return process

    # ---------------------------------------------------------- #
    # Reporting
    # ---------------------------------------------------------- #

    def report(self) -> dict:
        return {
            "seed": self.plan.seed,
            "clock": self.clock,
            "scheduled": len(self.plan.actions),
            "fired": [
                {
                    "kind": a.kind,
                    "worker_id": a.worker_id,
                    "at_command": a.at_command,
                }
                for a in self.fired
            ],
            "pending": len(self._pending),
            "poisoned_workers": sorted(self._poisoned),
        }
