"""Top-level command line: ``python -m repro <command>``.

Commands
--------
``info <edges.txt>``
    Print structural statistics of an edge-list graph.
``compute <edges.txt> [-o scores.npy]``
    Batch SimRank; optionally save the dense score matrix.
``update <edges.txt> <updates.txt> [-o scores.npy]``
    Load a graph, precompute SimRank, apply updates incrementally with
    Inc-SR, and report timing plus top pairs.  The updates file has one
    ``+ source target`` or ``- source target`` per line.
``similar <edges.txt> <node> [-k 10]``
    Top-k most similar nodes to one node (single-source query).
``serve <edges.txt> <updates.txt> [-k 10] [--writer background] [--workers N] [--precision float32|auto] [--config service.json] [--http PORT] [--data-dir DIR]``
    Serving-layer demo: precompute scores, pin a read snapshot, queue
    the updates through the coalescing scheduler, drain them (inline,
    or via the background writer thread with ``--writer background``),
    and show that the pinned snapshot kept serving the frozen version
    while a fresh snapshot sees the new one.  Top-k rankings are served
    by the shard-heap merge path — the dense score matrix is never
    materialized for ranking.  With ``--workers N`` the score shards
    live in N ``repro.cluster`` worker processes and every drain fans
    out over the pool (results stay bit-identical).

All commands accept ``--damping`` and ``--iterations``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

import numpy as np

from .config import SimRankConfig
from .exceptions import GraphError
from .graph.io import load_edge_list
from .graph.stats import graph_stats
from .graph.updates import EdgeUpdate, UpdateBatch
from .incremental.engine import DynamicSimRank
from .metrics.topk import top_k_pairs
from .simrank.matrix import matrix_simrank
from .simrank.queries import top_k_similar_nodes


def load_update_file(path: str) -> UpdateBatch:
    """Parse a ``± source target`` update file into an UpdateBatch."""
    updates: List[EdgeUpdate] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != 3 or fields[0] not in {"+", "-"}:
                raise GraphError(
                    f"{path}:{line_number}: expected '+|- source target', "
                    f"got {line!r}"
                )
            source, target = int(fields[1]), int(fields[2])
            if fields[0] == "+":
                updates.append(EdgeUpdate.insert(source, target))
            else:
                updates.append(EdgeUpdate.delete(source, target))
    return UpdateBatch(updates)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Incremental SimRank on link-evolving graphs "
        "(Yu, Lin, Zhang; ICDE 2014).",
    )
    parser.add_argument("--damping", type=float, default=0.6)
    parser.add_argument("--iterations", type=int, default=15)
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="graph statistics")
    info.add_argument("edges", help="edge-list file")

    compute = commands.add_parser("compute", help="batch SimRank")
    compute.add_argument("edges", help="edge-list file")
    compute.add_argument("-o", "--output", help="save scores as .npy")
    compute.add_argument("-k", "--top", type=int, default=10)

    update = commands.add_parser("update", help="incremental updates")
    update.add_argument("edges", help="edge-list file")
    update.add_argument("updates", help="update file (+/- source target)")
    update.add_argument("-o", "--output", help="save scores as .npy")
    update.add_argument("-k", "--top", type=int, default=10)
    update.add_argument(
        "--consolidate",
        action="store_true",
        help="group updates by target row before processing",
    )

    similar = commands.add_parser("similar", help="single-source query")
    similar.add_argument("edges", help="edge-list file")
    similar.add_argument("node", type=int)
    similar.add_argument("-k", "--top", type=int, default=10)

    serve = commands.add_parser(
        "serve", help="snapshot/scheduler serving demo"
    )
    serve.add_argument("edges", help="edge-list file")
    serve.add_argument("updates", help="update file (+/- source target)")
    serve.add_argument("-k", "--top", type=int, default=10)
    serve.add_argument(
        "--writer",
        choices=("sync", "background"),
        default="sync",
        help="drain inline (sync) or via the background writer thread",
    )
    serve.add_argument(
        "--backpressure",
        choices=("block", "drop-coalesce", "error"),
        default="block",
        help="bounded-queue policy for the background writer",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard the scores across N worker processes "
        "(repro.cluster pool); 0 keeps the in-process executor",
    )
    serve.add_argument(
        "--precision",
        choices=("float64", "float32", "auto"),
        default="float64",
        help="score-store storage precision: float64 (bit-identity "
        "reference), float32 (half the score memory), or auto (run the "
        "accuracy-gated precision autotuner before serving)",
    )
    serve.add_argument(
        "--degraded-policy",
        choices=("reject", "queue", "rebuild"),
        default="reject",
        help="what to do if the worker pool dies mid-serve: stay up "
        "read-only and reject writes, keep queueing writes, or rebuild "
        "the score state in-process and keep writing",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="after queueing the updates, serve the network front door "
        "on PORT (0 = ephemeral) until interrupted instead of running "
        "the one-shot demo",
    )
    serve.add_argument(
        "--config",
        default=None,
        metavar="SERVICE_JSON",
        help="build the service from a ServiceConfig JSON file; "
        "explicitly passed flags must agree with it (conflicts are a "
        "hard error)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="enable durable persistence in DIR: every acked drain is "
        "WAL'd before it is published, periodic checkpoints bound "
        "recovery time, and a restart with the same DIR resumes "
        "bit-identical to the last acked drain",
    )
    serve.add_argument(
        "--fsync",
        choices=("always", "interval", "off"),
        default="interval",
        help="WAL fsync policy (--data-dir only): per-append, on a "
        "timer, or OS page cache only",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=64,
        metavar="DRAINS",
        help="checkpoint every N WAL'd drains (--data-dir only)",
    )
    serve.add_argument(
        "--admission-window",
        type=float,
        default=None,
        help="front-door admission window in seconds (--http only); "
        "overrides the config file's frontdoor section",
    )

    return parser


def _config(args: argparse.Namespace) -> SimRankConfig:
    return SimRankConfig(damping=args.damping, iterations=args.iterations)


def _print_top_pairs(scores: np.ndarray, k: int) -> None:
    print(f"top-{k} similar pairs:")
    for a, b, score in top_k_pairs(scores, k):
        print(f"  ({a}, {b})  {score:.6f}")


def command_info(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    stats = graph_stats(graph)
    for key, value in stats.as_dict().items():
        formatted = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"{key:>20}: {formatted}")
    return 0


def command_compute(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    scores = matrix_simrank(graph, _config(args))
    _print_top_pairs(scores, args.top)
    if args.output:
        np.save(args.output, scores)
        print(f"scores saved to {args.output}")
    return 0


def command_update(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    batch = load_update_file(args.updates)
    config = _config(args)
    engine = DynamicSimRank(graph, config, algorithm="inc-sr")
    if args.consolidate:
        groups = engine.apply_consolidated(batch)
        print(
            f"applied {len(batch)} updates as {groups} consolidated "
            f"row updates in {engine.total_update_seconds() * 1e3:.1f} ms"
        )
    else:
        engine.apply(batch)
        affected = engine.aggregate_affected()
        print(
            f"applied {len(batch)} unit updates in "
            f"{engine.total_update_seconds() * 1e3:.1f} ms "
            f"({100 * affected.pruned_fraction():.1f}% of pairs pruned)"
        )
    _print_top_pairs(engine.similarities(), args.top)
    if args.output:
        np.save(args.output, engine.similarities())
        print(f"scores saved to {args.output}")
    return 0


def command_similar(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    neighbors = top_k_similar_nodes(graph, args.node, args.top, _config(args))
    print(f"top-{args.top} nodes similar to {args.node}:")
    for other, score in neighbors:
        print(f"  {other}  {score:.6f}")
    return 0


def _build_service(args: argparse.Namespace, graph):
    """Build the service from ``--config`` and/or the per-knob flags.

    Only flags that differ from their argparse defaults count as
    explicit, so a config file and untouched flags coexist — while an
    explicitly conflicting flag raises the resolver's ConfigError.
    """
    from .serving import SimRankService

    executor_kwargs = {}
    if args.workers > 0:
        executor_kwargs = {
            "executor": "process",
            "workers": args.workers,
            "degraded_policy": args.degraded_policy,
        }
    if args.data_dir is not None:
        from .serving import DurabilityConfig

        executor_kwargs["durability"] = DurabilityConfig(
            data_dir=args.data_dir,
            fsync=args.fsync,
            checkpoint_interval=args.checkpoint_interval,
        )
    if args.config is not None:
        # Subcommand flag defaults live on the serve subparser, not the
        # root, so recover them by parsing a placeholder command line.
        defaults = build_parser().parse_args(["serve", "_", "_"])
        flag_kwargs = dict(executor_kwargs)
        for name in ("writer", "backpressure", "precision"):
            value = getattr(args, name)
            if value != getattr(defaults, name):
                flag_kwargs[name] = value
        return SimRankService(graph, config=args.config, **flag_kwargs)
    return SimRankService(
        graph, _config(args), precision=args.precision, **executor_kwargs
    )


def _serve_http(service, args: argparse.Namespace) -> int:
    """Run the network front door until interrupted (``serve --http``)."""
    import asyncio

    from .frontdoor import FrontDoor
    from .serving.config import FrontDoorConfig

    base = service.service_config.frontdoor or FrontDoorConfig()
    overrides = {"port": args.http}
    if args.admission_window is not None:
        overrides["admission_window"] = args.admission_window
    fd_config = FrontDoorConfig(
        **{**base.to_dict(), **overrides}
    )

    async def run():
        door = FrontDoor(service, fd_config)
        await door.start()
        print(
            f"front door listening on {door.host}:{door.port}",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await door.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("front door stopped")
    finally:
        service.close()
    return 0


def command_serve(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    batch = load_update_file(args.updates)
    service = _build_service(args, graph)
    if service.durability is not None:
        manager = service.durability
        print(
            f"durability: data dir {manager.data_dir} "
            f"(fsync={manager.config.fsync}, "
            f"state version v{service.version})",
            flush=True,
        )
    if args.precision != "float64":
        store = service.engine.score_store
        plan = service.precision_plan
        detail = (
            f" (autotuned plan: store {plan.store_dtype}, "
            f"{len(plan.demoted_shards())} shard overrides)"
            if plan is not None
            else ""
        )
        print(
            f"precision {args.precision}: score store dtype "
            f"{store.dtype.name}{detail}"
        )
    if args.workers > 0:
        print(
            f"process executor: {service.engine.score_store.pool.num_workers} "
            f"shard workers over "
            f"{service.engine.score_store.pool.num_shards} shards"
        )

    if args.http is not None:
        if args.writer == "background" and not service.background:
            service.start_background_writer(policy=args.backpressure)
        service.submit(batch)
        print(
            f"queued {len(batch)} updates "
            f"({'background' if service.background else 'sync'} writer)"
        )
        return _serve_http(service, args)

    pinned = service.snapshot()
    frozen_top = pinned.top_k(args.top)

    if args.writer == "background":
        writer = service.writer or service.start_background_writer(
            policy=args.backpressure
        )
        service.submit(batch)
        print(
            f"queued {len(batch)} updates behind the background writer "
            f"(policy={args.backpressure})"
        )
        service.flush()
        stats = service.scheduler.stats
        groups = writer.stats.row_groups
        print(
            f"background writer drained {writer.stats.drained_updates} net "
            f"updates as {groups} consolidated row updates over "
            f"{writer.stats.drains} drain(s) "
            f"(coalescing ratio {stats.coalescing_ratio():.2f}, "
            f"{stats.cancelled_pairs} inverse pairs cancelled, "
            f"max queue depth {writer.stats.max_queue_depth}) "
            f"in {writer.stats.apply_seconds * 1e3:.1f} ms"
        )
        service.stop_background_writer()
    else:
        service.submit(batch)
        print(
            f"queued {len(batch)} updates "
            f"({service.scheduler.pending_targets} target rows after "
            f"coalescing)"
        )
        groups = service.drain()
        stats = service.scheduler.stats
        print(
            f"writer drained {stats.drained_updates} net updates as {groups} "
            f"consolidated row updates "
            f"(coalescing ratio {stats.coalescing_ratio():.2f}, "
            f"{stats.cancelled_pairs} inverse pairs cancelled) "
            f"in {service.engine.total_update_seconds() * 1e3:.1f} ms"
        )

    fresh = service.snapshot()
    isolated = pinned.top_k(args.top) == frozen_top
    print(
        f"pinned snapshot v{pinned.version} still serves the frozen "
        f"version: {'yes' if isolated else 'NO (bug!)'}"
    )
    print(f"\npinned snapshot v{pinned.version} top pairs:")
    for a, b, score in frozen_top:
        print(f"  ({a}, {b})  {score:.6f}")
    print(f"\nfresh snapshot v{fresh.version} top pairs:")
    for a, b, score in fresh.top_k(args.top):
        print(f"  ({a}, {b})  {score:.6f}")

    drift = float(
        np.max(
            np.abs(fresh.similarities() - pinned.similarities()),
            initial=0.0,
        )
    )
    print(f"\nmax score movement across versions: {drift:.6f}")
    service.close()
    return 0 if isolated else 1


_COMMANDS = {
    "info": command_info,
    "compute": command_compute,
    "update": command_update,
    "similar": command_similar,
    "serve": command_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
