"""repro — reproduction of *Fast Incremental SimRank on Link-Evolving Graphs*.

Yu, Lin, Zhang (ICDE 2014).  The package implements:

* the **Inc-uSR** and **Inc-SR** incremental SimRank algorithms
  (rank-one Sylvester characterization + lossless affected-area pruning),
* the **Inc-SVD** baseline of Li et al. (EDBT 2010) with its inherent
  approximation,
* batch SimRank in four flavors (naive, partial sums, matrix form, exact),
* the graph substrate (dynamic digraphs, transition matrices, update
  streams, synthetic evolving datasets), and
* the metrics and benchmark harness that regenerate every figure/table of
  the paper's evaluation.

Quickstart::

    from repro import DynamicSimRank, EdgeUpdate, SimRankConfig
    from repro.graph.generators import preferential_attachment_digraph

    graph = preferential_attachment_digraph(200, out_degree=3, seed=7)
    engine = DynamicSimRank(graph, SimRankConfig(damping=0.6, iterations=15))
    engine.apply(EdgeUpdate.insert(5, 9))
    print(engine.similarity(5, 9))
"""

from .cluster import ShardClient, ShardWorkerPool
from .config import SimRankConfig, iterations_for_accuracy
from .exceptions import (
    BackpressureError,
    ClusterError,
    ConfigError,
    ConvergenceError,
    DimensionError,
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
    ReproError,
    WorkerCrashError,
)
from .graph import (
    DynamicDiGraph,
    EdgeUpdate,
    TimestampedGraph,
    UpdateBatch,
    UpdateKind,
    backward_transition_matrix,
    graph_delta,
)
from .executor import ScoreSnapshot, ScoreStore
from .incremental import (
    DynamicSimRank,
    IncSVDSimRank,
    UnitUpdateResult,
    UpdatePlan,
    inc_sr_update,
    inc_usr_update,
    rank_one_decomposition,
)
from .serving import SimRankService, SnapshotView, UpdateScheduler
from .simrank import (
    batch_simrank,
    exact_simrank,
    matrix_simrank,
    naive_simrank,
    partial_sums_simrank,
    svd_batch_simrank,
    single_pair_simrank,
    single_source_simrank,
    top_k_similar_nodes,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimRankConfig",
    "iterations_for_accuracy",
    # errors
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeExistsError",
    "EdgeNotFoundError",
    "ConfigError",
    "DimensionError",
    "ConvergenceError",
    "BackpressureError",
    "ClusterError",
    "WorkerCrashError",
    # graph substrate
    "DynamicDiGraph",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateKind",
    "TimestampedGraph",
    "backward_transition_matrix",
    "graph_delta",
    # batch algorithms
    "batch_simrank",
    "matrix_simrank",
    "naive_simrank",
    "partial_sums_simrank",
    "exact_simrank",
    "svd_batch_simrank",
    "single_pair_simrank",
    "single_source_simrank",
    "top_k_similar_nodes",
    # incremental algorithms
    "DynamicSimRank",
    "IncSVDSimRank",
    "inc_sr_update",
    "inc_usr_update",
    "rank_one_decomposition",
    "UnitUpdateResult",
    "UpdatePlan",
    # executor layer
    "ScoreStore",
    "ScoreSnapshot",
    # cluster layer (multi-process shard workers)
    "ShardWorkerPool",
    "ShardClient",
    # serving layer
    "SimRankService",
    "SnapshotView",
    "UpdateScheduler",
]
