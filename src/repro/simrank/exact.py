"""Exact matrix-form SimRank on small graphs (test oracle).

Solves the fixed point of Eq. (2) directly via Kronecker lifting
(:func:`repro.linalg.kron.solve_sylvester_kron`).  Cost grows like
``O(n^6)`` in the worst case, so this is only used as ground truth for
graphs of up to a few hundred nodes.
"""

from __future__ import annotations

import numpy as np

from ..config import SimRankConfig
from ..linalg.kron import exact_simrank_kron
from .base import default_config, resolve_q


def exact_simrank(graph_or_q, config: SimRankConfig = None) -> np.ndarray:
    """The exact matrix-form SimRank fixed point ``S = C·Q·S·Qᵀ + (1-C)·I``."""
    cfg = default_config(config)
    q_matrix = resolve_q(graph_or_q)
    return exact_simrank_kron(q_matrix, cfg.damping)


def truncation_error_bound(config: SimRankConfig = None) -> float:
    """Per-entry bound ``C^{K+1} / (1 - C)`` on ``|S_K - S|``.

    Follows from the series tail ``(1-C)·Σ_{k>K} C^k ||Q^k (Qᵀ)^k||_max``
    with ``||Q^k (Qᵀ)^k||_max <= 1``.
    """
    cfg = default_config(config)
    return cfg.damping ** (cfg.iterations + 1) / (1.0 - cfg.damping)
