"""Monte Carlo SimRank estimation (the probabilistic family, Sec. II-B).

Fogaras & Rácz interpret SimRank through coalescing backward random
walks: two surfers start at ``a`` and ``b`` and simultaneously step to a
uniformly random *in*-neighbor; if ``τ`` is the first time they meet,

    s(a, b) = E[ C^τ ]

(with ``C^∞ = 0`` when they never meet).  This module implements the
estimator both for single pairs and single sources.  It follows the
*iterative form* convention (``s(a, a) = 1``) and is provided as the
probabilistic baseline of the paper's related-work section — useful for
spot-checking the deterministic algorithms at scale, and for contrast in
the accuracy benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimRankConfig
from ..exceptions import NodeNotFoundError
from ..graph.digraph import DynamicDiGraph
from .base import default_config


def _check_node(graph: DynamicDiGraph, node: int) -> None:
    if not (0 <= node < graph.num_nodes):
        raise NodeNotFoundError(node)


def monte_carlo_simrank_pair(
    graph: DynamicDiGraph,
    node_a: int,
    node_b: int,
    config: SimRankConfig = None,
    num_walks: int = 500,
    seed: Optional[int] = None,
) -> float:
    """Estimate ``s(a, b)`` from ``num_walks`` coalescing walk pairs.

    Each pair walks backwards for at most ``config.iterations`` steps
    (matching the truncated fixed-point iteration); a pair that hits a
    node with no in-links before meeting contributes 0.

    The estimator is unbiased for the truncated iterative-form score and
    has standard error ``<= 1/(2·sqrt(num_walks))``.
    """
    cfg = default_config(config)
    _check_node(graph, node_a)
    _check_node(graph, node_b)
    if node_a == node_b:
        return 1.0
    rng = np.random.default_rng(seed)
    in_lists = [sorted(graph.in_neighbors(v)) for v in range(graph.num_nodes)]

    total = 0.0
    for _ in range(num_walks):
        position_a, position_b = node_a, node_b
        for step in range(1, cfg.iterations + 1):
            neighbors_a = in_lists[position_a]
            neighbors_b = in_lists[position_b]
            if not neighbors_a or not neighbors_b:
                break
            position_a = neighbors_a[int(rng.integers(len(neighbors_a)))]
            position_b = neighbors_b[int(rng.integers(len(neighbors_b)))]
            if position_a == position_b:
                total += cfg.damping**step
                break
    return total / num_walks


def monte_carlo_simrank_source(
    graph: DynamicDiGraph,
    node: int,
    config: SimRankConfig = None,
    num_walks: int = 300,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Estimate the whole row ``s(node, ·)`` with shared walk fingerprints.

    Generates ``num_walks`` backward walks from *every* node using common
    random steps per (node, walk) pair, then scores each candidate ``b``
    by the first-meeting time of its walks with ``node``'s walks — the
    "fingerprint" trick of Fogaras & Rácz, amortizing one walk set over
    all n scores.
    """
    cfg = default_config(config)
    _check_node(graph, node)
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    in_lists = [sorted(graph.in_neighbors(v)) for v in range(n)]

    # fingerprints[w, v, k] would be O(walks·n·K); keep per-walk matrices
    # of positions instead: positions[v] for the active walk.
    scores = np.zeros(n)
    for _ in range(num_walks):
        positions = np.arange(n)
        met_at = np.full(n, -1, dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        for step in range(1, cfg.iterations + 1):
            # One shared step per *current position* keeps walks coupled
            # (walks that coincide once stay together — coalescence).
            next_of = {}
            for v in set(positions[alive].tolist()):
                neighbors = in_lists[v]
                next_of[v] = (
                    neighbors[int(rng.integers(len(neighbors)))]
                    if neighbors
                    else -1
                )
            for v in range(n):
                if not alive[v]:
                    continue
                nxt = next_of[positions[v]]
                if nxt < 0:
                    alive[v] = False
                else:
                    positions[v] = nxt
            if not alive[node]:
                break
            meets = alive & (positions == positions[node]) & (met_at < 0)
            meets[node] = False
            met_at[np.nonzero(meets)[0]] = step
        contributions = np.where(met_at > 0, cfg.damping ** met_at.clip(min=0), 0.0)
        scores += contributions
    scores /= num_walks
    scores[node] = 1.0
    return scores
