"""Batch SimRank algorithms on static graphs.

All functions take a :class:`~repro.graph.digraph.DynamicDiGraph` (or a
prebuilt ``Q``) and return the dense ``n x n`` similarity matrix ``S``.

* :mod:`repro.simrank.naive` — Jeh & Widom's original iteration
  (iterative form, diagonal pinned at 1), ``O(K·d²·n²)``.
* :mod:`repro.simrank.partial_sums` — Lizorkin et al.'s partial-sums
  memoization, ``O(K·d·n²)``.
* :mod:`repro.simrank.matrix` — the matrix form ``S = C·Q·S·Qᵀ + (1-C)·I``
  iterated with sparse products; plays the role of the paper's fast
  **Batch** comparator [6].
* :mod:`repro.simrank.exact` — closed-form fixed point via Kronecker
  lifting (small-graph oracle).
* :mod:`repro.simrank.svd_batch` — Li et al. [1]'s non-iterative low-rank
  computation from an SVD of ``Q``.
"""

from .matrix import batch_simrank, matrix_simrank
from .naive import naive_simrank
from .partial_sums import partial_sums_simrank
from .exact import exact_simrank
from .svd_batch import svd_batch_simrank
from .queries import single_pair_simrank, single_source_simrank, top_k_similar_nodes
from .montecarlo import monte_carlo_simrank_pair, monte_carlo_simrank_source

__all__ = [
    "batch_simrank",
    "matrix_simrank",
    "naive_simrank",
    "partial_sums_simrank",
    "exact_simrank",
    "svd_batch_simrank",
    "single_pair_simrank",
    "single_source_simrank",
    "top_k_similar_nodes",
    "monte_carlo_simrank_pair",
    "monte_carlo_simrank_source",
]
