"""Single-source and single-pair SimRank queries.

Full all-pairs computation is overkill when only one node's similarity
profile (or one pair) is needed.  The matrix-form series (Eq. (34) of
the paper)

    [S]_{a,b} = (1−C) · Σ_k C^k · [Q^k·(Qᵀ)^k]_{a,b}
              = (1−C) · Σ_k C^k · ⟨(Qᵀ)^k e_a, (Qᵀ)^k e_b⟩

needs only the iterated vectors ``(Qᵀ)^k e_a`` — the weighted symmetric
in-link path interpretation of Corollary 1.  A single-source query is
``K`` sparse mat-vecs plus ``K`` dense mat-vecs: ``O(K·(m + n·d))``
versus ``O(K·n²·d)`` for the full matrix.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import SimRankConfig
from ..exceptions import NodeNotFoundError
from .base import default_config, resolve_q


def _resolve_operator(graph_or_q):
    """Accept a graph, a scipy ``Q``, or a transition store/snapshot.

    Objects exposing ``rmatvec`` (a live
    :class:`~repro.linalg.qstore.TransitionStore` or a frozen
    :class:`~repro.linalg.qstore.TransitionSnapshot`) are used directly
    — their transpose products are served from the CSC slabs with no
    conversion at all; anything else goes through :func:`resolve_q`.
    """
    if hasattr(graph_or_q, "rmatvec") and hasattr(graph_or_q, "shape"):
        return graph_or_q
    return resolve_q(graph_or_q)


def _walk_vectors(q_matrix, node: int, iterations: int) -> List[np.ndarray]:
    """The stack ``[(Qᵀ)^k e_node]`` for k = 0..iterations.

    The transpose products never build a transposed matrix: a store or
    snapshot serves ``Qᵀ·x`` straight from its column layout, and for a
    scipy CSR input ``q_matrix.T`` is an O(1) CSC view whose mat-vec is
    native — the old implementation paid an O(nnz) ``.tocsr()``
    conversion on *every* query.
    """
    n = q_matrix.shape[0]
    vector = np.zeros(n)
    vector[node] = 1.0
    stack = [vector]
    if hasattr(q_matrix, "rmatvec"):
        for _ in range(iterations):
            vector = q_matrix.rmatvec(vector)
            stack.append(vector)
        return stack
    qt = q_matrix.T
    for _ in range(iterations):
        vector = qt @ vector
        stack.append(vector)
    return stack


def single_source_simrank(
    graph_or_q, node: int, config: SimRankConfig = None
) -> np.ndarray:
    """SimRank scores of ``node`` against every other node.

    Returns the length-``n`` vector ``[S]_{node,:}`` of the matrix-form
    truncated series (same convention and truncation as
    :func:`repro.simrank.matrix.matrix_simrank`).
    """
    cfg = default_config(config)
    q_matrix = _resolve_operator(graph_or_q)
    n = q_matrix.shape[0]
    if not (0 <= node < n):
        raise NodeNotFoundError(node)
    walk_stack = _walk_vectors(q_matrix, node, cfg.iterations)

    # scores = (1-C)·Σ_k C^k·Q^k·t_k with t_k = (Qᵀ)^k·e_node.  Horner
    # from the tail: R_K = t_K; R_k = t_k + C·Q·R_{k+1}; answer (1-C)·R_0.
    # Total cost: 2K sparse mat-vecs.
    result = walk_stack[-1].copy()
    for t_vector in reversed(walk_stack[:-1]):
        result = t_vector + cfg.damping * (q_matrix @ result)
    return (1.0 - cfg.damping) * result


def single_pair_simrank(
    graph_or_q, node_a: int, node_b: int, config: SimRankConfig = None
) -> float:
    """SimRank score of one node pair via the inner-product series.

    ``[S]_{a,b} = (1−C)·Σ_k C^k·⟨(Qᵀ)^k e_a, (Qᵀ)^k e_b⟩`` truncated at
    ``K = config.iterations``; cost ``O(K·m)`` with two walk stacks.
    """
    cfg = default_config(config)
    q_matrix = _resolve_operator(graph_or_q)
    n = q_matrix.shape[0]
    for node in (node_a, node_b):
        if not (0 <= node < n):
            raise NodeNotFoundError(node)
    stack_a = _walk_vectors(q_matrix, node_a, cfg.iterations)
    stack_b = (
        stack_a
        if node_b == node_a
        else _walk_vectors(q_matrix, node_b, cfg.iterations)
    )
    score = 0.0
    weight = 1.0
    for vec_a, vec_b in zip(stack_a, stack_b):
        score += weight * float(vec_a @ vec_b)
        weight *= cfg.damping
    return (1.0 - cfg.damping) * score


def top_k_similar_nodes(
    graph_or_q, node: int, k: int, config: SimRankConfig = None
) -> List[tuple]:
    """The ``k`` nodes most similar to ``node`` (excluding itself).

    Returns ``[(other, score), ...]`` sorted by descending score with
    deterministic index tie-breaks.
    """
    scores = single_source_simrank(graph_or_q, node, config)
    order = np.lexsort((np.arange(scores.size), -scores))
    result = []
    for candidate in order:
        if int(candidate) == node:
            continue
        result.append((int(candidate), float(scores[candidate])))
        if len(result) == k:
            break
    return result
