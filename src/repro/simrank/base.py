"""Shared validation and conventions for the SimRank implementations.

Two SimRank conventions coexist in the literature and in this package:

* the **iterative form** (Jeh & Widom, Eq. (1) of the paper), which pins
  ``s(a, a) = 1`` exactly at every iteration; and
* the **matrix form** (Li et al., Eq. (2) of the paper),
  ``S = C·Q·S·Qᵀ + (1-C)·Iₙ``, whose diagonal satisfies
  ``S_{aa} >= 1 - C`` but is generally below 1.

The paper's incremental theory (Theorems 1-4) is stated for the matrix
form, so that is this package's default; :func:`repro.simrank.naive` keeps
the iterative form for cross-validation against networkx.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..exceptions import DimensionError
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import backward_transition_matrix


def resolve_q(graph_or_q) -> sp.csr_matrix:
    """Accept either a graph or a prebuilt ``Q`` and return CSR ``Q``."""
    if isinstance(graph_or_q, DynamicDiGraph):
        return backward_transition_matrix(graph_or_q)
    q_matrix = sp.csr_matrix(graph_or_q)
    if q_matrix.shape[0] != q_matrix.shape[1]:
        raise DimensionError(f"Q must be square, got {q_matrix.shape}")
    return q_matrix


def check_similarity_matrix(
    s_matrix: np.ndarray, damping: float, atol: float = 1e-8
) -> None:
    """Assert structural invariants of a matrix-form SimRank matrix.

    Checks: square, symmetric, entries within ``[-atol, 1 + atol]``, and
    diagonal at least ``1 - C - atol``.  Raises ``DimensionError`` (shape)
    or ``ValueError`` (value) on violation; useful in tests and the
    engine's paranoid mode.
    """
    s_dense = np.asarray(s_matrix)
    if s_dense.ndim != 2 or s_dense.shape[0] != s_dense.shape[1]:
        raise DimensionError(f"S must be square, got shape {s_dense.shape}")
    asymmetry = float(np.max(np.abs(s_dense - s_dense.T), initial=0.0))
    if asymmetry > atol:
        raise ValueError(f"S is not symmetric (max asymmetry {asymmetry:.3e})")
    low = float(s_dense.min(initial=0.0))
    high = float(s_dense.max(initial=0.0))
    if low < -atol or high > 1.0 + atol:
        raise ValueError(f"S entries outside [0, 1]: min={low}, max={high}")
    diagonal_floor = float(np.min(np.diag(s_dense))) if s_dense.size else 1.0
    if diagonal_floor < (1.0 - damping) - atol:
        raise ValueError(
            f"diagonal of S dips below 1 - C: min diag {diagonal_floor}"
        )


def default_config(config: SimRankConfig = None) -> SimRankConfig:
    """Return ``config`` or a fresh default :class:`SimRankConfig`."""
    return config if config is not None else SimRankConfig()
