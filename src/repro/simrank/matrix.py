"""Matrix-form batch SimRank — the paper's **Batch** comparator.

Iterates Eq. (2) of the paper,

    S_{k+1} = C · Q · S_k · Qᵀ + (1 - C) · Iₙ,   S_0 = (1 - C) · Iₙ,

with a sparse ``Q`` and dense ``S``.  After ``K`` steps this equals the
truncated series ``(1-C)·Σ_{k=0..K} C^k Q^k (Qᵀ)^k`` (Eq. (16)/(34)), and
converges to the exact matrix-form fixed point with error at most
``C^{K+1}/(1-C)`` per entry.

The paper benchmarks against Yu et al.'s fine-grained-memoization batch
algorithm [6]; at reproduction scale the BLAS-backed sparse-dense
iteration below is the fastest batch method available and plays that
role (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimRankConfig
from ..exceptions import ConvergenceError
from .base import default_config, resolve_q


def matrix_simrank(
    graph_or_q,
    config: SimRankConfig = None,
    tolerance: Optional[float] = None,
) -> np.ndarray:
    """Matrix-form SimRank via truncated series iteration.

    Parameters
    ----------
    graph_or_q:
        A :class:`~repro.graph.digraph.DynamicDiGraph` or a prebuilt
        backward transition matrix ``Q``.
    config:
        Damping and iteration count; defaults to the paper's evaluation
        settings (C=0.6, K=15).
    tolerance:
        Optional early-exit threshold on ``max |S_{k+1} - S_k|``.  When
        given and not reached within ``config.iterations`` steps, a
        :class:`~repro.exceptions.ConvergenceError` is raised.

    Returns
    -------
    numpy.ndarray
        The dense ``n x n`` similarity matrix ``S_K``.
    """
    cfg = default_config(config)
    q_matrix = resolve_q(graph_or_q)
    n = q_matrix.shape[0]
    constant = (1.0 - cfg.damping) * np.eye(n)
    current = constant.copy()
    for iteration in range(cfg.iterations):
        nxt = cfg.damping * (q_matrix @ current @ q_matrix.T) + constant
        if tolerance is not None:
            residual = float(np.max(np.abs(nxt - current), initial=0.0))
            if residual <= tolerance:
                return nxt
        current = nxt
    if tolerance is not None:
        residual = float(
            np.max(
                np.abs(
                    cfg.damping * (q_matrix @ current @ q_matrix.T)
                    + constant
                    - current
                ),
                initial=0.0,
            )
        )
        if residual > tolerance:
            raise ConvergenceError(
                f"matrix SimRank did not reach tolerance {tolerance} in "
                f"{cfg.iterations} iterations (residual {residual:.3e})",
                iterations=cfg.iterations,
                residual=residual,
            )
    return current


def batch_simrank(graph_or_q, config: SimRankConfig = None) -> np.ndarray:
    """Alias of :func:`matrix_simrank` under the paper's name **Batch**."""
    return matrix_simrank(graph_or_q, config)
