"""Jeh & Widom's original iterative SimRank (the paper's Eq. (1)).

This is the *iterative form*: the diagonal is pinned to 1 at every step,
and for ``a != b``

    s_{k}(a, b) = C / (|I(a)|·|I(b)|) · Σ_{i∈I(a)} Σ_{j∈I(b)} s_{k-1}(i, j)

with ``s_k(a, b) = 0`` whenever either node has no in-links.  Complexity
is ``O(K·d²·n²)``; this implementation exists as the reference semantics
(cross-checkable against ``networkx.simrank_similarity``), not for speed.
"""

from __future__ import annotations

import numpy as np

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from .base import default_config


def naive_simrank(
    graph: DynamicDiGraph, config: SimRankConfig = None
) -> np.ndarray:
    """Iterative-form SimRank scores for all node pairs.

    Returns the dense ``n x n`` matrix after ``config.iterations`` rounds.
    Note the convention difference with the matrix form used elsewhere in
    this package (see :mod:`repro.simrank.base`).
    """
    cfg = default_config(config)
    n = graph.num_nodes
    in_lists = [np.asarray(row, dtype=np.int64) for row in graph.in_neighbor_lists()]

    current = np.eye(n)
    for _ in range(cfg.iterations):
        nxt = np.zeros((n, n))
        for a in range(n):
            in_a = in_lists[a]
            if in_a.size == 0:
                continue
            # Symmetric matrix: compute the upper triangle and mirror.
            for b in range(a, n):
                in_b = in_lists[b]
                if in_b.size == 0:
                    continue
                block = current[np.ix_(in_a, in_b)]
                nxt[a, b] = cfg.damping * block.sum() / (in_a.size * in_b.size)
                nxt[b, a] = nxt[a, b]
        np.fill_diagonal(nxt, 1.0)
        current = nxt
    # Nodes with no in-links keep similarity 0 even to themselves per the
    # base case "s(a,b) = 0 if I(a) or I(b) is empty" -- except the
    # self-pair, which Jeh & Widom define as 1.  We follow Jeh & Widom.
    return current


def naive_simrank_single_pair(
    graph: DynamicDiGraph,
    node_a: int,
    node_b: int,
    config: SimRankConfig = None,
) -> float:
    """Convenience scalar wrapper around :func:`naive_simrank`."""
    scores = naive_simrank(graph, config)
    return float(scores[node_a, node_b])
