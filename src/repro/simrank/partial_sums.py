"""Lizorkin et al.'s partial-sums memoization (PVLDB 2008).

The naive iteration recomputes ``Σ_{i∈I(a)} s(i, j)`` for every pair
``(a, b)`` — ``O(d²)`` score accesses per pair.  Partial sums memoize, for
every node ``j``, the vector ``Partial_j[a] = Σ_{i∈I(a)} s_{k-1}(i, j)``
once per iteration and reuse it across all pairs sharing ``a``:
``O(K·d·n²)`` total.  In matrix language one iteration is
``S_k = C · P · (Pᵀ applied to columns)`` with ``P`` the in-neighbor
averaging operator, which is exactly what the vectorized inner loop below
computes one column at a time.

This algorithm follows the *iterative form* (diagonal pinned to 1),
matching :mod:`repro.simrank.naive` exactly, iteration by iteration.
"""

from __future__ import annotations

import numpy as np

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import backward_transition_matrix
from .base import default_config


def partial_sums_simrank(
    graph: DynamicDiGraph, config: SimRankConfig = None
) -> np.ndarray:
    """Iterative-form SimRank via partial-sums memoization.

    Produces the same scores as :func:`repro.simrank.naive.naive_simrank`
    (up to float round-off) in ``O(K·d·n²)`` time.
    """
    cfg = default_config(config)
    n = graph.num_nodes
    q_matrix = backward_transition_matrix(graph)  # rows average over I(a)
    has_in_links = np.asarray(q_matrix.sum(axis=1)).ravel() > 0.0

    current = np.eye(n)
    for _ in range(cfg.iterations):
        # partial[a, j] = (1/|I(a)|) Σ_{i∈I(a)} current[i, j]  (memoized
        # once per j across all a -- the partial-sums trick, vectorized).
        partial = q_matrix @ current
        nxt = cfg.damping * (partial @ q_matrix.T)
        # Zero out rows/columns of nodes with no in-links (base case),
        # then pin the diagonal to 1 (iterative-form convention).
        nxt[~has_in_links, :] = 0.0
        nxt[:, ~has_in_links] = 0.0
        np.fill_diagonal(nxt, 1.0)
        current = nxt
    return current


def partial_sums_iteration_cost(graph: DynamicDiGraph) -> int:
    """Score-access count of one partial-sums iteration, ``~ 2·m·n``.

    Exposed so tests can assert the claimed ``O(d·n²)`` against the naive
    ``O(d²·n²)`` bound on concrete graphs.
    """
    n = graph.num_nodes
    m = graph.num_edges
    return 2 * m * n
