"""Li et al. [1]'s non-iterative batch SimRank from an SVD of ``Q``.

With ``Q = U·Σ·Vᵀ`` (target rank ``r``), powers collapse onto the
``r``-dimensional column space of ``U``:

    Q^k·(Qᵀ)^k = U·T^{k-1}·Σ²·(Tᵀ)^{k-1}·Uᵀ   for k >= 1,
    T = Σ·Vᵀ·U (r×r),

so the matrix-form series (Eq. (16)) becomes

    S = (1−C)·Iₙ + (1−C)·C·U·M·Uᵀ,   M = C·T·M·Tᵀ + Σ².

``M`` is an r×r Sylvester solve.  With the *lossless* SVD of a full-rank
``Q`` this is exact; a truncated (low-rank) SVD trades accuracy for
speed — the paper's Fig. 2b/Fig. 4 study that trade-off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimRankConfig
from ..linalg.svd_tools import lossless_rank, truncated_svd
from .base import default_config, resolve_q


def svd_batch_simrank(
    graph_or_q,
    rank: Optional[int] = None,
    config: SimRankConfig = None,
) -> np.ndarray:
    """Batch SimRank via Li et al.'s low-rank closed form.

    Parameters
    ----------
    graph_or_q:
        Graph or prebuilt ``Q``.
    rank:
        Target rank ``r`` of the SVD.  ``None`` selects the lossless rank
        (``rank(Q)``), in which case the result is exact for the matrix
        form whenever ``Q`` is full column space on its range — i.e. the
        reconstruction ``U·Σ·Vᵀ`` equals ``Q`` exactly.
    config:
        Supplies the damping factor (iterations unused; non-iterative).
    """
    from ..incremental.inc_svd import low_rank_simrank_scores

    cfg = default_config(config)
    q_matrix = resolve_q(graph_or_q)
    target = lossless_rank(q_matrix) if rank is None else int(rank)
    target = max(1, target)
    factors = truncated_svd(q_matrix, target)
    return low_rank_simrank_scores(factors, cfg.damping)
