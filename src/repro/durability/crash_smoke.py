"""Crash-restart smoke harness: SIGKILL mid-drain, recover, compare.

``python -m repro.durability.crash_smoke --data-dir DIR --seed 7`` runs
the whole drill in one command:

1. Spawn a child process (``--child``) serving a seeded deterministic
   update workload through :class:`~repro.serving.SimRankService` with
   durability enabled, printing ``acked <version>`` after every drain.
2. Sleep a seeded random interval, then ``SIGKILL`` the child — no
   shutdown hook runs, so whatever the WAL holds is all there is.
3. Reopen the data dir, recover, and compare the recovered scores
   **bit-identically** against an in-memory oracle that replays the
   same seeded workload up to the recovered version.  The recovered
   version must also cover every ack the parent managed to read off
   the child's stdout before the kill (ack-after-append means an ack
   that escaped the process is durable by contract).

Repeats for ``--rounds`` kills against the *same* data dir, so later
rounds recover through a checkpoint + WAL chain written across several
process lifetimes.  Exit code 0 means every round recovered
bit-identically; any divergence or recovery failure is a hard error.

Used by the CI crash-restart leg and by
``tests/test_durability.py`` (subprocess variant).
"""

from __future__ import annotations

import argparse
import random
import subprocess
import sys
import threading
import time

import numpy as np

NUM_NODES = 32
INITIAL_EDGES = 64
BATCH_UPDATES = 4


def build_graph(seed: int):
    """The seeded starting graph (same on every participant)."""
    from ..graph.digraph import DynamicDiGraph

    rng = random.Random(seed)
    edges = set()
    while len(edges) < INITIAL_EDGES:
        a, b = rng.randrange(NUM_NODES), rng.randrange(NUM_NODES)
        if a != b:
            edges.add((a, b))
    return DynamicDiGraph.from_edges(NUM_NODES, sorted(edges)), edges


def workload(seed: int):
    """An infinite deterministic stream of update batches."""
    from ..graph.updates import EdgeUpdate

    _, edges = build_graph(seed)
    rng = random.Random(seed + 1)
    while True:
        batch = []
        seen = set()
        while len(batch) < BATCH_UPDATES:
            a, b = rng.randrange(NUM_NODES), rng.randrange(NUM_NODES)
            if a == b or (a, b) in seen:
                continue
            seen.add((a, b))
            if (a, b) in edges:
                batch.append(EdgeUpdate.delete(a, b))
                edges.discard((a, b))
            else:
                batch.append(EdgeUpdate.insert(a, b))
                edges.add((a, b))
        yield batch


def run_child(data_dir: str, seed: int) -> int:
    """Serve the seeded workload durably until killed."""
    from ..serving import DurabilityConfig, SimRankService

    graph, _ = build_graph(seed)
    config = DurabilityConfig(
        data_dir=data_dir, checkpoint_interval=5, fsync="off"
    )
    service = SimRankService(graph, durability=config)
    base = service.version  # a later round resumes mid-history
    for step, batch in enumerate(workload(seed)):
        if step < base:
            continue  # fast-forward the stream to the recovered point
        service.submit_many(batch)
        service.drain()
        print(f"acked {service.version}", flush=True)
    return 0


def oracle_scores(seed: int, version: int) -> np.ndarray:
    """In-memory replay of the first ``version`` batches (no disk)."""
    from ..serving import SimRankService

    graph, _ = build_graph(seed)
    service = SimRankService(graph)
    for step, batch in enumerate(workload(seed)):
        if step >= version:
            break
        service.submit_many(batch)
        service.drain()
    scores = service.engine.similarities().copy()
    service.close()
    return scores


def run_round(data_dir: str, seed: int, round_index: int) -> int:
    """One kill/recover/compare cycle; returns the recovered version."""
    from ..serving import DurabilityConfig, SimRankService
    from .manager import DurabilityManager

    rng = random.Random((seed << 8) + round_index)
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.durability.crash_smoke",
            "--child",
            "--data-dir",
            data_dir,
            "--seed",
            str(seed),
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    acked = [-1]

    def _consume() -> None:
        # A reader thread keeps the pipe drained (the child must never
        # block on a full pipe) and records the last ack that escaped.
        for line in child.stdout:
            if line.startswith("acked "):
                acked[0] = int(line.split()[1])

    reader = threading.Thread(target=_consume, daemon=True)
    reader.start()
    time.sleep(rng.uniform(0.5, 2.0))
    child.kill()
    child.wait()
    reader.join(timeout=5.0)
    child.stdout.close()
    last_acked = acked[0]

    config = DurabilityConfig(data_dir=data_dir, fsync="off")
    manager = DurabilityManager(config)
    try:
        recovered = manager.recover()
    finally:
        manager.close()
    if recovered is None:
        raise SystemExit(
            f"round {round_index}: nothing recoverable in {data_dir}"
        )
    if recovered.version < last_acked:
        raise SystemExit(
            f"round {round_index}: recovered v{recovered.version} but the "
            f"child acked v{last_acked} before the kill — durability "
            "contract violated"
        )
    reference = oracle_scores(seed, recovered.version)
    if not np.array_equal(recovered.scores, reference):
        diff = float(np.max(np.abs(recovered.scores - reference)))
        raise SystemExit(
            f"round {round_index}: recovered scores diverge from the "
            f"oracle at v{recovered.version} (max |delta| = {diff:.3e})"
        )
    print(
        f"round {round_index}: killed at ack v{last_acked}, recovered "
        f"v{recovered.version} bit-identical",
        flush=True,
    )
    # Reopen as a full service too: construction must replay cleanly
    # (the placeholder graph is ignored when a manifest exists).
    from ..graph.digraph import DynamicDiGraph

    service = SimRankService(
        DynamicDiGraph.from_edges(1, []), durability=config
    )
    assert service.version == recovered.version
    service.close()
    return recovered.version


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--child", action="store_true")
    args = parser.parse_args(argv)
    if args.child:
        return run_child(args.data_dir, args.seed)
    for round_index in range(args.rounds):
        run_round(args.data_dir, args.seed, round_index)
    print(f"crash smoke OK: {args.rounds} SIGKILL rounds recovered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
