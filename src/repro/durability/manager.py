"""The durability manager: WAL + checkpoints + recovery + time travel.

One :class:`DurabilityManager` owns one data directory::

    <data_dir>/
      wal.lock                  # pid of the single live writer
      MANIFEST                  # atomic pointer to retained checkpoints
      wal/wal-<seq>-v<start>.log
      checkpoints/ckpt-<version>/{meta.json, scores.npz,
                                  transitions.npz[, history.npz]}

Lifecycle (driven by :class:`~repro.serving.service.SimRankService`):

1. Construct — acquires the lock (stale locks of dead pids are
   reclaimed), registers with the shm reaper, repairs the WAL tail.
2. :meth:`recover` — loads the newest manifest checkpoint and replays
   the WAL, returning the state the service seeds its engine with
   (None on a fresh dir).
3. :meth:`attach` — positions the append cursor and, on a fresh dir,
   writes the initial base checkpoint.
4. Per acked drain: :meth:`append_drain` (inside the apply lock,
   *before* the drain becomes visible to readers — ack follows the
   WAL append) then :meth:`maybe_checkpoint`.
5. :meth:`view_at` — time travel: materialize any retained historical
   version from its nearest checkpoint plus WAL replay.

Failure containment: a WAL append or checkpoint error must never take
serving down — the manager flags itself failed, stops appending (so
the log on disk stays a consistent prefix of acked history), records
the event in the flight recorder, and keeps counting.  Recovery after
such a failure lands on the last *durable* version, which the health
surface reports as ``wal_lag_drains`` so operators can see the gap.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..exceptions import ConfigError, HistoryUnavailableError
from ..executor.score_store import ScoreStore
from ..graph import DynamicDiGraph
from ..incremental.plan import PlanBatch
from ..linalg.qstore import TransitionStore
from .checkpoint import (
    checkpoint_path,
    graph_from_packed,
    load_checkpoint,
    read_manifest,
    summarize_history,
    write_checkpoint,
    write_manifest,
)
from .wal import (
    KIND_BATCH,
    WriteAheadLog,
    encode_add_node_frame,
    encode_batch_frame,
)

__all__ = ["DurabilityManager", "RecoveredState"]

_LOCK_NAME = "wal.lock"


@dataclass
class RecoveredState:
    """What a restart hands the engine: last acked drain, bit-identical."""

    version: int
    graph: DynamicDiGraph
    #: Dense scores at the store's widest dtype (float64 promotion of a
    #: float32 shard is exact, and the engine's re-sharding cast back is
    #: the exact inverse — the round trip preserves every bit).
    scores: np.ndarray
    meta: dict


@dataclass
class _Materialized:
    version: int
    store: ScoreStore
    graph: DynamicDiGraph
    meta: dict


def _acquire_lock(data_dir: str) -> str:
    """Take the single-writer lock, reclaiming one left by a dead pid."""
    path = os.path.join(data_dir, _LOCK_NAME)
    for _attempt in range(2):
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    holder = int(handle.read().strip() or -1)
            except (OSError, ValueError):
                holder = -1
            if holder > 0 and _pid_alive(holder):
                raise ConfigError(
                    f"durability data dir {data_dir!r} is locked by live "
                    f"process {holder}"
                ) from None
            # Stale lock from a dead owner: reclaim and retry once.
            try:
                os.unlink(path)
            except OSError:
                pass
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        return path
    raise ConfigError(
        f"could not acquire durability lock in {data_dir!r}"
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class DurabilityManager:
    """See module docstring.  One instance per service per data dir."""

    def __init__(self, config, telemetry=None) -> None:
        if telemetry is None:
            from ..telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.config = config
        self.data_dir = config.data_dir
        self._telemetry = telemetry
        os.makedirs(self.data_dir, exist_ok=True)
        from ..cluster.shm import reap_orphans, register_durability

        # Reap first so a previous SIGKILL'd owner's stale lock is gone
        # before this process tries to take it.
        try:
            reap_orphans()
        except OSError:
            pass
        self._lock_path = _acquire_lock(self.data_dir)
        self._shm_manifest = register_durability(self.data_dir)
        self._wal = WriteAheadLog(
            os.path.join(self.data_dir, "wal"),
            fsync=config.fsync,
            fsync_interval=config.fsync_interval,
            rotate_bytes=config.rotate_bytes,
        )
        registry = telemetry.registry
        self._c_appends = registry.counter(
            "repro_wal_appends_total",
            help="WAL frames appended (drains + node arrivals)",
        )
        self._c_bytes = registry.counter(
            "repro_wal_bytes_total",
            help="Bytes appended to the write-ahead log",
        )
        self._c_checkpoints = registry.counter(
            "repro_checkpoints_total",
            help="Checkpoints published (manifest flips)",
        )
        self._mutex = threading.Lock()
        self._failed = False
        self._failed_reason: Optional[str] = None
        self._errors = 0
        self._durable_version = -1
        self._last_checkpoint_version: Optional[int] = None
        self._retained: List[int] = []
        self._wal_lag_drains = 0
        self._damping = 0.0
        self._iterations = 0
        self._view_cache = None  # (version, SnapshotView)
        self._closed = False

    # -------------------------------------------------------------- #
    # Recovery / attach
    # -------------------------------------------------------------- #

    def recover(self) -> Optional[RecoveredState]:
        """Replay checkpoint + WAL; None when the data dir is fresh.

        Raises :class:`~repro.exceptions.CorruptLogError` on mid-log
        damage (never silently diverges).  A torn WAL tail — the
        expected residue of SIGKILL mid-append — was already truncated
        when the log opened.
        """
        manifest = read_manifest(self.data_dir)
        if manifest is None:
            return None
        self._retained = [int(v) for v in manifest["retained"]]
        state = self._materialize(target_version=None)
        self._last_checkpoint_version = max(self._retained)
        self._durable_version = state.version
        self._damping = float(state.meta.get("damping", 0.0))
        self._iterations = int(state.meta.get("iterations", 0))
        return RecoveredState(
            version=state.version,
            graph=state.graph,
            scores=state.store.to_array(),
            meta=state.meta,
        )

    def attach(self, engine) -> None:
        """Bind to the live engine; write the base checkpoint if fresh."""
        self._damping = float(engine.config.damping)
        self._iterations = int(engine.config.iterations)
        self._wal.open_for_append(engine.version)
        if self._last_checkpoint_version is None:
            self.checkpoint(engine)
        self._durable_version = max(self._durable_version, engine.version)
        self._set_flight_context()

    def _set_flight_context(self) -> None:
        self._telemetry.flight.set_context(
            durable_version=self._durable_version,
            wal_offset=self._wal.tail_offset(),
            last_checkpoint_version=self._last_checkpoint_version,
        )

    # -------------------------------------------------------------- #
    # Append side (caller holds the apply lock)
    # -------------------------------------------------------------- #

    def append_drain(self, version: int, row_updates, plans) -> bool:
        """WAL one acked drain; True when it became durable.

        Never raises: an append failure flags the manager failed (the
        on-disk log must stay a consistent prefix of acked history, so
        appending *past* a hole is worse than stopping) and serving
        continues RAM-only.
        """
        if self._failed or self._closed:
            return False
        try:
            packed = PlanBatch(list(plans)).packed()
            record = encode_batch_frame(int(version), row_updates, packed)
            self._wal.append(record, int(version))
        except Exception as exc:  # noqa: BLE001 - containment seam
            self._mark_failed("wal_append", exc)
            return False
        self._c_appends.inc()
        self._c_bytes.inc(len(record))
        self._durable_version = int(version)
        self._wal_lag_drains += 1
        self._set_flight_context()
        return True

    def append_add_node(self, version: int, node: int, num_nodes: int) -> bool:
        """WAL one live node arrival; True when it became durable."""
        if self._failed or self._closed:
            return False
        try:
            record = encode_add_node_frame(int(version), node, num_nodes)
            self._wal.append(record, int(version))
        except Exception as exc:  # noqa: BLE001 - containment seam
            self._mark_failed("wal_append", exc)
            return False
        self._c_appends.inc()
        self._c_bytes.inc(len(record))
        self._durable_version = int(version)
        self._wal_lag_drains += 1
        self._set_flight_context()
        return True

    def maybe_checkpoint(self, engine) -> bool:
        """Checkpoint when the WAL lag reached the configured interval."""
        if self._failed or self._closed:
            return False
        if self._wal_lag_drains < self.config.checkpoint_interval:
            return False
        return self.checkpoint(engine)

    def checkpoint(self, engine) -> bool:
        """Publish a checkpoint of the engine's current state.

        Caller must hold the apply lock (the service's seams all do).
        A checkpoint failure does **not** poison the WAL — the chain
        from the previous checkpoint is still complete — so it only
        counts an error and resets the lag clock to avoid retrying on
        every drain.
        """
        if self._closed:
            return False
        version = int(engine.version)
        history = None
        if self.config.svd_history:
            history = self._summarize_interval(
                version, int(engine.score_store.num_nodes)
            )
        try:
            with self._mutex:
                write_checkpoint(
                    self.data_dir,
                    version=version,
                    score_store=engine.score_store,
                    transition_store=engine.transition_store,
                    damping=self._damping or engine.config.damping,
                    iterations=self._iterations or engine.config.iterations,
                    history=history,
                )
                retained = [v for v in self._retained if v != version]
                retained.append(version)
                retained.sort()
                keep = retained[-int(self.config.retain_checkpoints) :]
                dropped = [v for v in retained if v not in keep]
                write_manifest(self.data_dir, keep)
                self._retained = keep
                for old in dropped:
                    self._remove_checkpoint(old)
                # Frames at or before the oldest retained checkpoint can
                # never be replayed again; rotate so the live segment
                # stays prunable next time.
                self._wal.rotate(version)
                self._wal.prune(min(keep))
                self._view_cache = None
        except Exception as exc:  # noqa: BLE001 - containment seam
            self._record_error("checkpoint", exc)
            self._wal_lag_drains = 0
            return False
        self._last_checkpoint_version = version
        self._wal_lag_drains = 0
        self._c_checkpoints.inc()
        self._set_flight_context()
        return True

    def resync(self, engine) -> bool:
        """Re-anchor the log after an in-process failover.

        The drain the pool died under was finished by journal replay,
        not acked through the WAL seam, so the log tail no longer
        describes how the live state was reached.  A full checkpoint
        recaptures the state and rotates the WAL past the gap.  Unlike
        :meth:`checkpoint`, failure here marks the manager failed —
        appending past the gap would silently diverge on recovery.
        """
        if self._failed or self._closed:
            return False
        if self.checkpoint(engine):
            return True
        self._mark_failed(
            "resync",
            RuntimeError(
                "post-failover checkpoint failed; the WAL tail no longer "
                "matches the live state"
            ),
        )
        return False

    def _summarize_interval(
        self, version: int, num_nodes: int
    ) -> Optional[dict]:
        since = (
            self._last_checkpoint_version
            if self._last_checkpoint_version is not None
            else -1
        )
        try:
            batches = [
                frame.packed
                for frame in self._wal.frames(
                    after_version=since, through_version=version
                )
                if frame.kind == KIND_BATCH and frame.packed is not None
            ]
            if not batches:
                return None
            return summarize_history(
                batches,
                num_nodes,
                max_rank=self.config.svd_max_rank,
                threshold=self.config.svd_threshold,
            )
        except Exception as exc:  # noqa: BLE001 - history is optional
            self._record_error("history", exc)
            return None

    def _remove_checkpoint(self, version: int) -> None:
        from .checkpoint import _remove_tree

        _remove_tree(checkpoint_path(self.data_dir, version))

    def _mark_failed(self, what: str, exc: BaseException) -> None:
        self._failed = True
        self._failed_reason = f"{what}: {type(exc).__name__}: {exc}"
        self._errors += 1
        flight = self._telemetry.flight
        flight.record(
            "durability_failed", stage=what, error=type(exc).__name__
        )
        flight.dump("durability")

    def _record_error(self, what: str, exc: BaseException) -> None:
        self._errors += 1
        self._telemetry.flight.record(
            "durability_error", stage=what, error=type(exc).__name__
        )

    # -------------------------------------------------------------- #
    # Time travel
    # -------------------------------------------------------------- #

    def view_at(self, version: int, config):
        """A :class:`~repro.serving.snapshot.SnapshotView` at ``version``.

        Materialized from the nearest retained checkpoint at or before
        ``version`` plus WAL replay — the identical arithmetic the live
        drains ran, so scores and rankings are bit-identical to what
        the service served at that version.
        """
        from ..serving.snapshot import SnapshotView

        version = int(version)
        cached = self._view_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        # Serialized against checkpoint publication so a concurrent
        # retention prune can never delete the base mid-materialize.
        with self._mutex:
            state = self._materialize(target_version=version)
        view = SnapshotView(
            scores=state.store.snapshot(),
            transitions=TransitionStore.from_graph(state.graph).snapshot(),
            config=config,
            version=state.version,
        )
        self._view_cache = (version, view)
        return view

    def _materialize(self, target_version: Optional[int]) -> _Materialized:
        manifest = read_manifest(self.data_dir)
        if manifest is None:
            raise HistoryUnavailableError(
                "no durable history yet (no checkpoint published in "
                f"{self.data_dir!r})"
            )
        retained = [int(v) for v in manifest["retained"]]
        if target_version is None:
            base_version = max(retained)
        else:
            candidates = [v for v in retained if v <= target_version]
            if not candidates:
                raise HistoryUnavailableError(
                    f"version {target_version} predates the oldest "
                    f"retained checkpoint (v{min(retained)}); it was "
                    "pruned by the retention policy"
                )
            base_version = max(candidates)
        data = load_checkpoint(checkpoint_path(self.data_dir, base_version))
        store = self._store_from_checkpoint(data)
        graph = graph_from_packed(data.packed_q)
        damping = float(data.meta.get("damping", self._damping))
        version = data.version
        for frame in self._wal.frames(
            after_version=base_version, through_version=target_version
        ):
            if frame.kind == KIND_BATCH:
                for plan in frame.packed.plans():
                    store.apply_plan(plan)
                for row_update in frame.row_updates:
                    row_update.apply_to(graph)
            else:
                node = graph.add_node()
                store.add_node()
                store.set_entry(node, node, 1.0 - damping)
            version = frame.version
        if target_version is not None and version != target_version:
            raise HistoryUnavailableError(
                f"version {target_version} is not in the durable history "
                f"(replay from checkpoint v{base_version} reached "
                f"v{version})"
            )
        return _Materialized(
            version=version, store=store, graph=graph, meta=data.meta
        )

    def _store_from_checkpoint(self, data) -> ScoreStore:
        """Rebuild a shard-exact ScoreStore from saved blocks.

        The dense staging array is float64 (promotion is exact), the
        store is built float64, then each shard is demoted back to its
        saved dtype — a value cast of values that *were* that dtype,
        so every bit survives.  Replayed plans then scatter with the
        same per-shard cast points as the live drains did.
        """
        n = int(data.meta["num_nodes"])
        shard_rows = int(data.meta["shard_rows"])
        dense = np.empty((n, n), dtype=np.float64)
        base = 0
        for block in data.shards:
            dense[base : base + block.shape[0], :] = block
            base += block.shape[0]
        store = ScoreStore(dense, shard_rows=shard_rows, dtype="float64")
        for index, name in enumerate(data.meta.get("shard_dtypes", [])):
            if name != "float64":
                store.set_shard_dtype(index, name)
        return store

    # -------------------------------------------------------------- #
    # Observability / lifecycle
    # -------------------------------------------------------------- #

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def durable_version(self) -> int:
        return self._durable_version

    @property
    def last_checkpoint_version(self) -> Optional[int]:
        return self._last_checkpoint_version

    def retained_versions(self) -> List[int]:
        """Checkpoint versions currently answerable by :meth:`view_at`."""
        return list(self._retained)

    def wal_bytes(self) -> int:
        """Total bytes across live WAL segments."""
        return self._wal.total_bytes()

    def wal_lag_drains(self) -> int:
        """Acked drains WAL'd since the last checkpoint."""
        return self._wal_lag_drains

    def report(self) -> dict:
        """The ``metrics_report()["durability"]`` / ``/health`` payload."""
        return {
            "enabled": True,
            "data_dir": self.data_dir,
            "fsync": self.config.fsync,
            "failed": self._failed,
            "failed_reason": self._failed_reason,
            "errors": self._errors,
            "durable_version": self._durable_version,
            "last_checkpoint_version": self._last_checkpoint_version,
            "retained_checkpoints": list(self._retained),
            "wal_bytes": self._wal.total_bytes(),
            "wal_lag_drains": self._wal_lag_drains,
            "wal_appends": self._wal.appends,
            "wal_segments": len(self._wal.segments),
        }

    def sync(self) -> None:
        """Force appended frames to stable storage (tests/benchmarks)."""
        self._wal.sync()

    def close(self) -> None:
        """Flush, release the lock, unregister from the reaper."""
        if self._closed:
            return
        self._closed = True
        try:
            self._wal.close()
        finally:
            from ..cluster.shm import unregister_pool

            unregister_pool(self._shm_manifest)
            try:
                os.unlink(self._lock_path)
            except OSError:
                pass
