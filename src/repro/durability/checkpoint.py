"""Atomic factored checkpoints: base score shards + packed ``Q``.

A checkpoint is the replay base the WAL's delta frames build on: the
score shards exactly as the :class:`~repro.executor.score_store.ScoreStore`
holds them (per-shard storage dtype preserved — a float32 shard is
saved as float32 and restores bit-identically via the exact
float32→float64→float32 round trip) plus the packed
:class:`~repro.linalg.qstore.TransitionSnapshot` payload, from which
both ``Q`` *and* the graph are rebuilt (row ``i`` of the backward CSR
lists ``i``'s in-neighbors; ``TransitionStore.from_graph`` is
deterministic, so the rebuilt ``Q`` is bit-identical too).

Publication is atomic at two levels: each checkpoint is written into a
``checkpoints/tmp-*`` scratch directory, fsynced, and ``os.rename``d
to its final ``ckpt-<version>`` name; the data dir's ``MANIFEST`` is
then rewritten via the tmp + ``os.replace`` pattern.  A crash at any
byte offset leaves either the old manifest (pointing at complete
checkpoints) or the new one — never a half-written checkpoint that a
restart could load.

The optional ``history.npz`` is the git_theta idea applied to the
drain stream: every plan since the previous checkpoint contributes
factor pairs ``ξ·ηᵀ + η·ξᵀ``; stacked over the drains they form a
low-rank panel pair whose product is the whole inter-checkpoint score
delta.  QR-compress both panels, SVD the small core, truncate at a
rank/threshold, and the accumulated history survives as one compact
``R @ C`` pair per checkpoint — an audit trail (and a future
delta-shipping payload) that costs far less than the raw log.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import CorruptLogError
from ..graph import DynamicDiGraph

__all__ = [
    "CheckpointData",
    "checkpoint_path",
    "graph_from_packed",
    "list_checkpoints",
    "load_checkpoint",
    "read_manifest",
    "summarize_history",
    "write_checkpoint",
    "write_manifest",
]

MANIFEST_NAME = "MANIFEST"
CHECKPOINT_DIRNAME = "checkpoints"
_CKPT_PREFIX = "ckpt-"
_TMP_PREFIX = "tmp-"
MANIFEST_FORMAT = 1


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def checkpoint_path(data_dir: str, version: int) -> str:
    return os.path.join(
        data_dir, CHECKPOINT_DIRNAME, f"{_CKPT_PREFIX}{version:016d}"
    )


def list_checkpoints(data_dir: str) -> List[Tuple[int, str]]:
    """``(version, path)`` of every published checkpoint, ascending."""
    root = os.path.join(data_dir, CHECKPOINT_DIRNAME)
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(root)
    except OSError:
        return out
    for name in names:
        if not name.startswith(_CKPT_PREFIX):
            continue
        try:
            version = int(name[len(_CKPT_PREFIX) :])
        except ValueError:
            continue
        out.append((version, os.path.join(root, name)))
    out.sort()
    return out


# ------------------------------------------------------------------ #
# Manifest
# ------------------------------------------------------------------ #


def read_manifest(data_dir: str) -> Optional[dict]:
    """The published manifest, or None when the dir is fresh/unused."""
    path = os.path.join(data_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        # The manifest is written atomically, so a damaged one is not
        # crash residue — refuse to guess, like a mid-log CRC failure.
        raise CorruptLogError(
            f"unreadable durability manifest {path}: {exc}", path=path
        ) from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise CorruptLogError(
            f"unsupported manifest format {manifest.get('format')!r} "
            f"in {path}",
            path=path,
        )
    return manifest


def write_manifest(data_dir: str, retained_versions: List[int]) -> None:
    """Atomically publish the retained-checkpoint list."""
    payload = {
        "format": MANIFEST_FORMAT,
        "latest": max(retained_versions),
        "retained": sorted(retained_versions),
        "written_at": time.time(),
    }
    path = os.path.join(data_dir, MANIFEST_NAME)
    tmp = path + f".tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(data_dir)


# ------------------------------------------------------------------ #
# Checkpoint write / load
# ------------------------------------------------------------------ #


@dataclass
class CheckpointData:
    """One loaded checkpoint, ready to seed a replay."""

    version: int
    meta: dict
    #: Shard blocks in saved order, each in its storage dtype.
    shards: List[np.ndarray] = field(default_factory=list)
    #: ``TransitionStore.export_packed()`` payload.
    packed_q: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Optional SVD-truncated factor history (``history.npz`` payload).
    history: Optional[dict] = None


def write_checkpoint(
    data_dir: str,
    *,
    version: int,
    score_store,
    transition_store,
    damping: float,
    iterations: int,
    history: Optional[dict] = None,
) -> str:
    """Write and atomically publish one checkpoint; returns its path.

    Caller must hold the apply lock (or otherwise guarantee the stores
    are quiescent) — the shard blocks are copied here, so the lock is
    only held for the copy + serialization, not for later reads.
    """
    root = os.path.join(data_dir, CHECKPOINT_DIRNAME)
    os.makedirs(root, exist_ok=True)
    final = checkpoint_path(data_dir, version)
    tmp = os.path.join(root, f"{_TMP_PREFIX}{os.getpid()}-{version:016d}")
    os.makedirs(tmp, exist_ok=True)

    shard_arrays = {}
    shard_dtypes = []
    for index, (_base, block) in enumerate(score_store.iter_shard_blocks()):
        shard_arrays[f"shard_{index:05d}"] = np.ascontiguousarray(block)
        shard_dtypes.append(block.dtype.name)
    _savez(os.path.join(tmp, "scores.npz"), shard_arrays)

    packed = transition_store.export_packed()
    _savez(
        os.path.join(tmp, "transitions.npz"),
        {key: np.asarray(value) for key, value in packed.items()},
    )

    if history is not None:
        _savez(
            os.path.join(tmp, "history.npz"),
            {key: np.asarray(value) for key, value in history.items()},
        )

    meta = {
        "version": int(version),
        "num_nodes": int(score_store.num_nodes),
        "shard_rows": int(score_store.shard_rows),
        "shard_dtypes": shard_dtypes,
        "damping": float(damping),
        "iterations": int(iterations),
        "has_history": history is not None,
        "created_at": time.time(),
    }
    meta_path = os.path.join(tmp, "meta.json")
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    _fsync_dir(tmp)

    # Publish: one rename flips the whole directory from scratch to
    # final.  A stale final dir (a retried version) is replaced.
    if os.path.isdir(final):
        _remove_tree(final)
    os.rename(tmp, final)
    _fsync_dir(root)
    return final


def _savez(path: str, arrays: Dict[str, np.ndarray]) -> None:
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())


def _remove_tree(path: str) -> None:
    for dirpath, dirnames, filenames in os.walk(path, topdown=False):
        for name in filenames:
            try:
                os.unlink(os.path.join(dirpath, name))
            except OSError:
                pass
        for name in dirnames:
            try:
                os.rmdir(os.path.join(dirpath, name))
            except OSError:
                pass
    try:
        os.rmdir(path)
    except OSError:
        pass


def load_checkpoint(path: str) -> CheckpointData:
    """Load one published checkpoint directory."""
    try:
        with open(os.path.join(path, "meta.json"), "r", encoding="utf-8") as f:
            meta = json.load(f)
    except (OSError, ValueError) as exc:
        raise CorruptLogError(
            f"unreadable checkpoint meta in {path}: {exc}", path=path
        ) from None
    try:
        with np.load(os.path.join(path, "scores.npz")) as archive:
            shards = [
                archive[name] for name in sorted(archive.files)
            ]
        with np.load(os.path.join(path, "transitions.npz")) as archive:
            packed_q = {name: archive[name] for name in archive.files}
    except (OSError, ValueError) as exc:
        raise CorruptLogError(
            f"unreadable checkpoint arrays in {path}: {exc}", path=path
        ) from None
    history = None
    history_path = os.path.join(path, "history.npz")
    if meta.get("has_history") and os.path.exists(history_path):
        with np.load(history_path) as archive:
            history = {name: archive[name] for name in archive.files}
    return CheckpointData(
        version=int(meta["version"]),
        meta=meta,
        shards=shards,
        packed_q=packed_q,
        history=history,
    )


def graph_from_packed(packed_q: Dict[str, np.ndarray]) -> DynamicDiGraph:
    """Rebuild the graph from the packed backward-CSR structure.

    Row ``i`` of ``Q`` lists the in-neighbors of ``i``: every column
    ``j`` in row ``i`` is an edge ``j → i``.  The edge *weights* are
    redundant (``1/indegree``, re-derived by ``from_packed`` /
    ``from_graph``), so structure alone reproduces the store.
    """
    num_nodes = int(np.asarray(packed_q["num_nodes"]))
    indptr = np.asarray(packed_q["indptr"])
    indices = np.asarray(packed_q["indices"])
    graph = DynamicDiGraph(num_nodes)
    for target in range(num_nodes):
        for source in indices[indptr[target] : indptr[target + 1]]:
            graph.add_edge(int(source), target)
    return graph


# ------------------------------------------------------------------ #
# Factor-history summarization (git_theta-style)
# ------------------------------------------------------------------ #


def summarize_history(
    packed_batches,
    num_nodes: int,
    *,
    max_rank: int = 32,
    threshold: float = 1e-11,
) -> Optional[dict]:
    """SVD-truncate the factor pairs of a checkpoint interval.

    ``packed_batches`` is the interval's drains as
    :class:`~repro.incremental.plan.PackedPlanBatch` objects.  Each
    plan contributes ``ξ·ηᵀ + η·ξᵀ`` per factor pair, so the summed
    score delta restricted to the union support ``U`` factors exactly
    as ``L @ Rᵀ`` with ``2R`` columns.  Both panels are QR-compressed,
    the small ``2R×2R`` core is SVD'd, and singular values below
    ``threshold`` (relative to the largest) — or beyond ``max_rank`` —
    are dropped.  Returns the ``history.npz`` payload, or None when
    the interval carried no factors.
    """
    supports: List[np.ndarray] = []
    pairs: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    for packed in packed_batches:
        for plan in packed.plans():
            for (l_idx, l_val), (r_idx, r_val) in zip(
                plan.left_factors, plan.right_factors
            ):
                if l_idx.size == 0 or r_idx.size == 0:
                    continue
                supports.append(l_idx)
                supports.append(r_idx)
                pairs.append((l_idx, l_val, r_idx, r_val))
    if not pairs:
        return None
    union = np.unique(np.concatenate(supports))
    position = np.full(num_nodes, -1, dtype=np.int64)
    position[union] = np.arange(union.size)
    rank = len(pairs)
    left_panel = np.zeros((union.size, 2 * rank), dtype=np.float64)
    right_panel = np.zeros((union.size, 2 * rank), dtype=np.float64)
    for k, (l_idx, l_val, r_idx, r_val) in enumerate(pairs):
        rows = position[l_idx]
        cols = position[r_idx]
        # ξ·ηᵀ ...
        left_panel[rows, k] = l_val
        right_panel[cols, k] = r_val
        # ... plus its transpose η·ξᵀ.
        left_panel[cols, rank + k] = r_val
        right_panel[rows, rank + k] = l_val
    lq, lr = np.linalg.qr(left_panel)
    rq, rr = np.linalg.qr(right_panel)
    u, s, vh = np.linalg.svd(lr @ rr.T)
    if s.size and s[0] > 0:
        keep = int(np.count_nonzero(s > threshold * s[0]))
    else:
        keep = 0
    keep = max(1, min(int(max_rank), keep if keep else 1))
    left = lq @ (u[:, :keep] * s[:keep])
    right = vh[:keep] @ rq.T
    return {
        "support": union,
        "left": left,
        "right": right,
        "rank": np.int64(keep),
        "raw_rank": np.int64(2 * rank),
        "threshold": np.float64(threshold),
    }
