"""Checksummed append-only write-ahead log of factored score deltas.

The WAL is the crash-consistency half of :mod:`repro.durability`: every
acked drain appends one frame carrying (a) the drain's consolidated
:class:`~repro.incremental.row_update.RowUpdate` list — the graph/``Q``
surgery — and (b) the drain's plans in the
:class:`~repro.incremental.plan.PackedPlanBatch` wire encoding (the
same contiguous 8-byte-word block the cluster ships over shared
memory, bit-exact round-trip tested).  Replaying a frame therefore
reproduces exactly the state transition the live drain performed.

Frame layout (little-endian)::

    +------+-------------+------------+-----------------------------+
    | RWFR | length: u32 | crc32: u32 | payload (`length` bytes)    |
    +------+-------------+------------+-----------------------------+

    payload = kind: u32 | flags: u32 | version: u64 | body

Body of a ``KIND_BATCH`` frame::

    row_words: u64                  # int64 words describing RowUpdates
    <row_words * 8 bytes>           # n; then per row: target,
                                    #   n_added, n_removed, added..., removed...
    count: u64                      # plans in the packed batch
    lens_len, idx_len, val_len: u64 # PackedPlanBatch section lengths
    <packed word block>             # PackedPlanBatch.write_words bytes

Body of a ``KIND_ADD_NODE`` frame: ``node: u64 | num_nodes: u64``.

Damage semantics — the load-bearing distinction of the whole module:

* **Torn tail**: the *last* frame in the *last* segment is incomplete
  or fails its CRC, and no valid frame follows it.  That is the
  expected residue of a crash mid-append; the reader truncates at the
  last good frame boundary and recovery proceeds (the torn frame was
  never acked — acks happen after the append returns).
* **Mid-log corruption**: a frame fails but a *valid* frame exists
  after the damage (in this segment or a later one).  Truncating there
  would silently drop drains the service acknowledged, so the reader
  raises :class:`~repro.exceptions.CorruptLogError` instead — never
  silent divergence.

Fsync policy: ``always`` fsyncs every append (survives power loss),
``interval`` fsyncs at most once per configured window (bounded loss
on power failure), ``off`` never fsyncs.  All three policies flush to
the OS page cache on every append, so a SIGKILL — process death, not
machine death — loses nothing under any policy.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass
from time import monotonic
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigError, CorruptLogError
from ..incremental.plan import PackedPlanBatch
from ..incremental.row_update import RowUpdate

__all__ = [
    "FSYNC_POLICIES",
    "KIND_ADD_NODE",
    "KIND_BATCH",
    "WalFrame",
    "WriteAheadLog",
    "decode_frames",
    "encode_add_node_frame",
    "encode_batch_frame",
]

MAGIC = b"RWFR"
_HEADER = struct.Struct("<4sII")  # magic, payload length, crc32(payload)
_PAYLOAD_HEAD = struct.Struct("<IIQ")  # kind, flags, version
_U64 = struct.Struct("<Q")

KIND_BATCH = 1
KIND_ADD_NODE = 2

#: ``always`` → fsync every append; ``interval`` → fsync at most once
#: per ``fsync_interval`` seconds; ``off`` → flush to the OS only.
FSYNC_POLICIES = ("always", "interval", "off")

#: Segment files are ``wal-<seq>-v<start>.log``: every frame in the
#: segment has ``version > start`` (the version the log was at when the
#: segment was opened), which is what lets retention delete whole
#: segments against checkpoint versions without reading them.
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


@dataclass(frozen=True)
class WalFrame:
    """One decoded log record."""

    kind: int
    version: int
    #: ``KIND_BATCH`` only: the drain's consolidated graph surgery.
    row_updates: Tuple[RowUpdate, ...] = ()
    #: ``KIND_BATCH`` only: the drain's plans, packed.
    packed: Optional[PackedPlanBatch] = None
    #: ``KIND_ADD_NODE`` only.
    node: int = -1
    num_nodes: int = -1


# ------------------------------------------------------------------ #
# Frame encoding
# ------------------------------------------------------------------ #


def _frame(kind: int, version: int, body: bytes) -> bytes:
    payload = _PAYLOAD_HEAD.pack(kind, 0, version) + body
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, len(payload), crc) + payload


def _encode_row_updates(row_updates) -> np.ndarray:
    words: List[int] = [len(row_updates)]
    for update in row_updates:
        words.append(update.target)
        words.append(len(update.added))
        words.append(len(update.removed))
        words.extend(update.added)
        words.extend(update.removed)
    return np.asarray(words, dtype=np.int64)


def _decode_row_updates(words: np.ndarray) -> Tuple[RowUpdate, ...]:
    out: List[RowUpdate] = []
    cursor = 1
    for _ in range(int(words[0])):
        target = int(words[cursor])
        n_added = int(words[cursor + 1])
        n_removed = int(words[cursor + 2])
        cursor += 3
        added = tuple(int(v) for v in words[cursor : cursor + n_added])
        cursor += n_added
        removed = tuple(int(v) for v in words[cursor : cursor + n_removed])
        cursor += n_removed
        out.append(RowUpdate(target=target, added=added, removed=removed))
    return tuple(out)


def encode_batch_frame(version: int, row_updates, packed: PackedPlanBatch) -> bytes:
    """Serialize one acked drain as a complete framed record."""
    row_words = _encode_row_updates(row_updates)
    lens_len, idx_len, val_len = packed.section_lengths()
    block = np.empty(packed.word_count(), dtype=np.int64)
    packed.write_words(block)
    body = b"".join(
        (
            _U64.pack(row_words.size),
            row_words.tobytes(),
            _U64.pack(packed.count),
            _U64.pack(lens_len),
            _U64.pack(idx_len),
            _U64.pack(val_len),
            block.tobytes(),
        )
    )
    return _frame(KIND_BATCH, version, body)


def encode_add_node_frame(version: int, node: int, num_nodes: int) -> bytes:
    """Serialize one live ``add_node`` as a framed record."""
    return _frame(KIND_ADD_NODE, version, _U64.pack(node) + _U64.pack(num_nodes))


def _decode_payload(payload: bytes) -> WalFrame:
    kind, _flags, version = _PAYLOAD_HEAD.unpack_from(payload, 0)
    at = _PAYLOAD_HEAD.size
    if kind == KIND_ADD_NODE:
        node = _U64.unpack_from(payload, at)[0]
        num_nodes = _U64.unpack_from(payload, at + 8)[0]
        return WalFrame(
            kind=kind, version=version, node=int(node), num_nodes=int(num_nodes)
        )
    if kind != KIND_BATCH:
        raise ValueError(f"unknown WAL frame kind {kind}")
    row_words = _U64.unpack_from(payload, at)[0]
    at += 8
    rows = np.frombuffer(payload, dtype=np.int64, count=row_words, offset=at)
    at += row_words * 8
    count = _U64.unpack_from(payload, at)[0]
    lens_len = _U64.unpack_from(payload, at + 8)[0]
    idx_len = _U64.unpack_from(payload, at + 16)[0]
    val_len = _U64.unpack_from(payload, at + 24)[0]
    at += 32
    total = count * 2 + lens_len + idx_len + val_len
    block = np.frombuffer(payload, dtype=np.int64, count=total, offset=at)
    packed = PackedPlanBatch.from_words(
        block, int(count), (int(lens_len), int(idx_len), int(val_len))
    )
    return WalFrame(
        kind=kind,
        version=version,
        row_updates=_decode_row_updates(rows),
        packed=packed,
    )


# ------------------------------------------------------------------ #
# Segment scanning
# ------------------------------------------------------------------ #


def _scan(buffer: bytes) -> Tuple[List[WalFrame], int, Optional[int]]:
    """Decode frames from one segment's bytes.

    Returns ``(frames, good_bytes, bad_offset)`` where ``good_bytes``
    is the end of the last frame that decoded cleanly and
    ``bad_offset`` is where decoding stopped (None when the whole
    buffer was consumed).
    """
    frames: List[WalFrame] = []
    offset = 0
    size = len(buffer)
    while offset < size:
        if size - offset < _HEADER.size:
            return frames, offset, offset
        magic, length, crc = _HEADER.unpack_from(buffer, offset)
        if magic != MAGIC:
            return frames, offset, offset
        end = offset + _HEADER.size + length
        if end > size:
            return frames, offset, offset
        payload = buffer[offset + _HEADER.size : end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            return frames, offset, offset
        try:
            frames.append(_decode_payload(payload))
        except Exception:
            return frames, offset, offset
        offset = end
    return frames, offset, None


def _valid_frame_after(buffer: bytes, start: int) -> bool:
    """Whether any byte range after ``start`` parses as a valid frame.

    The mid-log-corruption probe: a flipped byte inside one frame must
    not silently swallow the (still intact) frames behind it, so the
    reader hunts for the next ``MAGIC`` whose header, length, and CRC
    all check out before deciding the damage was merely a torn tail.
    """
    cursor = buffer.find(MAGIC, start + 1)
    while cursor != -1:
        frames, _good, bad = _scan(buffer[cursor:])
        if frames:
            return True
        if bad is None:
            return False
        cursor = buffer.find(MAGIC, cursor + 1)
    return False


def decode_frames(
    buffer: bytes, *, path: str = "", final_segment: bool = True
) -> Tuple[List[WalFrame], int]:
    """Decode a whole segment, applying the damage semantics.

    Returns ``(frames, good_bytes)``.  Raises
    :class:`~repro.exceptions.CorruptLogError` on mid-log corruption —
    damage in a non-final segment, or damage in the final segment with
    a valid frame after it.  A torn tail (final segment, nothing valid
    after the damage) is reported via ``good_bytes < len(buffer)``.
    """
    frames, good, bad = _scan(buffer)
    if bad is None:
        return frames, good
    if not final_segment or _valid_frame_after(buffer, bad):
        raise CorruptLogError(
            f"corrupt WAL frame at byte {bad} of {path or 'segment'}: "
            "valid frames follow the damage, refusing to truncate "
            "acknowledged history",
            path=path,
            offset=bad,
        )
    return frames, good


# ------------------------------------------------------------------ #
# The log
# ------------------------------------------------------------------ #


def _segment_name(seq: int, start_version: int) -> str:
    return f"{_SEGMENT_PREFIX}{seq:08d}-v{start_version:016d}{_SEGMENT_SUFFIX}"


def _parse_segment_name(name: str) -> Optional[Tuple[int, int]]:
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    stem = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    try:
        seq_text, version_text = stem.split("-v", 1)
        return int(seq_text), int(version_text)
    except ValueError:
        return None


class WriteAheadLog:
    """Rotating segmented WAL under ``<directory>``.

    Single-writer by contract (the durability manager holds the data
    dir lock); reads for recovery and time travel may run concurrently
    with appends because appends only ever extend the newest segment
    and readers stop at their target version.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        rotate_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        self.rotate_bytes = int(rotate_bytes)
        self._handle = None
        self._segment_path: Optional[str] = None
        self._segment_bytes = 0
        self._last_fsync = monotonic()
        self.appends = 0
        self.bytes_appended = 0
        # ``interval`` policy: the periodic fsync runs on this timer
        # thread, never inline in append(), so the drain path only pays
        # write + flush.  The handle lock serializes the timer's fsync
        # against rotate/close swapping the handle out from under it.
        self._handle_lock = threading.Lock()
        self._dirty = False
        self._syncer: Optional[threading.Thread] = None
        self._syncer_stop = threading.Event()
        os.makedirs(directory, exist_ok=True)
        self._segments: List[Tuple[int, int, str]] = self._discover()
        self._repair_tail()

    # -------------------------------------------------------------- #
    # Discovery / recovery-side reads
    # -------------------------------------------------------------- #

    def _discover(self) -> List[Tuple[int, int, str]]:
        found = []
        for name in os.listdir(self.directory):
            parsed = _parse_segment_name(name)
            if parsed is not None:
                found.append((*parsed, os.path.join(self.directory, name)))
        found.sort()
        return found

    def _repair_tail(self) -> None:
        """Truncate a torn tail in the newest segment (crash residue).

        Earlier segments are validated too — but lazily, by
        :meth:`frames`, because reading them here would make startup
        O(log size) even when no replay is needed.  The newest segment
        is the only one a crash mid-append can tear.
        """
        if not self._segments:
            return
        _seq, _start, path = self._segments[-1]
        with open(path, "rb") as handle:
            buffer = handle.read()
        _frames, good = decode_frames(buffer, path=path, final_segment=True)
        if good < len(buffer):
            with open(path, "r+b") as handle:
                handle.truncate(good)

    @property
    def segments(self) -> List[str]:
        """Segment paths, oldest first."""
        return [path for _seq, _start, path in self._segments]

    def total_bytes(self) -> int:
        """On-disk WAL footprint across all live segments."""
        total = 0
        for _seq, _start, path in self._segments:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def tail_offset(self) -> int:
        """Byte offset of the append cursor in the newest segment."""
        return self._segment_bytes

    def frames(
        self,
        *,
        after_version: int = -1,
        through_version: Optional[int] = None,
    ) -> Iterator[WalFrame]:
        """Yield frames with ``after_version < version``, in order.

        Stops after ``through_version`` when given (frames past it in
        an actively-appending final segment are never even decoded,
        which is what makes concurrent time-travel reads safe).
        """
        segments = list(self._segments)
        for position, (_seq, start, path) in enumerate(segments):
            if through_version is not None and start >= through_version:
                break
            with open(path, "rb") as handle:
                buffer = handle.read()
            final = position == len(segments) - 1
            decoded, _good = decode_frames(
                buffer, path=path, final_segment=final
            )
            for frame in decoded:
                if frame.version <= after_version:
                    continue
                if (
                    through_version is not None
                    and frame.version > through_version
                ):
                    return
                yield frame

    # -------------------------------------------------------------- #
    # Append side
    # -------------------------------------------------------------- #

    def _open_segment(self, start_version: int) -> None:
        seq = self._segments[-1][0] + 1 if self._segments else 1
        name = _segment_name(seq, start_version)
        path = os.path.join(self.directory, name)
        # Unbuffered: one write() syscall per append puts the frame in
        # the page cache directly (SIGKILL-safe), no userspace copy.
        self._handle = open(path, "ab", buffering=0)
        self._segment_path = path
        self._segment_bytes = 0
        self._segments.append((seq, start_version, path))

    def open_for_append(self, start_version: int) -> None:
        """Position the append cursor (resuming the newest segment)."""
        self._start_syncer()
        if self._handle is not None:
            return
        if self._segments:
            _seq, _start, path = self._segments[-1]
            self._handle = open(path, "ab", buffering=0)
            self._segment_path = path
            self._segment_bytes = os.path.getsize(path)
        else:
            self._open_segment(start_version)

    def append(self, record: bytes, last_version: int) -> int:
        """Append one framed record; returns the post-append tail offset.

        Every append flushes to the OS (SIGKILL-safe under any policy);
        the fsync policy decides when the bytes are forced to stable
        storage — inline for ``always``, on the background timer thread
        for ``interval`` (so a drain never stalls on the disk; the
        power-loss exposure stays bounded by ``fsync_interval`` plus
        one fsync duration).  Rotation happens *before* the append so a
        frame never straddles segments; ``last_version`` names the
        version already durable when the fresh segment opens.
        """
        if self._handle is None:
            self.open_for_append(last_version)
        if self._segment_bytes >= self.rotate_bytes:
            self.rotate(last_version)
        self._handle.write(record)
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
            self._last_fsync = monotonic()
        elif self.fsync == "interval":
            self._dirty = True
        self._segment_bytes += len(record)
        self.appends += 1
        self.bytes_appended += len(record)
        return self._segment_bytes

    def _start_syncer(self) -> None:
        if self.fsync != "interval" or self._syncer is not None:
            return
        self._syncer_stop.clear()
        self._syncer = threading.Thread(
            target=self._syncer_loop, name="wal-fsync", daemon=True
        )
        self._syncer.start()

    def _syncer_loop(self) -> None:
        while not self._syncer_stop.wait(self.fsync_interval):
            if not self._dirty:
                continue
            with self._handle_lock:
                if self._handle is None:
                    continue
                self._dirty = False
                try:
                    os.fsync(self._handle.fileno())
                except OSError:
                    # Surfacing happens on the append path (write will
                    # fail too); the timer must never crash the process.
                    pass
            self._last_fsync = monotonic()

    def _stop_syncer(self) -> None:
        if self._syncer is None:
            return
        self._syncer_stop.set()
        self._syncer.join(timeout=5.0)
        self._syncer = None

    def rotate(self, last_version: int) -> None:
        """Close the live segment and open a fresh one."""
        with self._handle_lock:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync != "off":
                    os.fsync(self._handle.fileno())
                self._dirty = False
                self._handle.close()
                self._handle = None
        self._open_segment(last_version)

    def prune(self, keep_after_version: int) -> int:
        """Delete whole segments no retained checkpoint still needs.

        A segment is deletable when the *next* segment starts at or
        before ``keep_after_version`` — every frame a replay from that
        version could want then lives in a later segment.  Returns the
        number of segments removed.
        """
        removed = 0
        while len(self._segments) > 1:
            _next_seq, next_start, _next_path = self._segments[1]
            if next_start > keep_after_version:
                break
            _seq, _start, path = self._segments.pop(0)
            try:
                os.unlink(path)
            except OSError:
                pass
            removed += 1
        return removed

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        with self._handle_lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._dirty = False
                self._last_fsync = monotonic()

    def close(self) -> None:
        self._stop_syncer()
        with self._handle_lock:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync != "off":
                    os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
