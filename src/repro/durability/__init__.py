"""Durable low-rank persistence for the serving stack.

Three pieces, one data directory:

* :mod:`repro.durability.wal` — the checksummed append-only
  write-ahead log of factored deltas (each acked drain's
  ``PackedPlanBatch`` words plus its consolidated row updates, framed
  with length + CRC32, with configurable fsync and rotation).
* :mod:`repro.durability.checkpoint` — atomic base checkpoints: the
  score shards dtype-exact, the packed ``Q`` snapshot, an optional
  SVD-truncated factor history, published by manifest rename.
* :mod:`repro.durability.manager` — the orchestration: recovery on
  startup (bit-identical to the last acked drain), per-drain appends
  on the ack path, periodic checkpoints with retention, and
  time-travel materialization of any retained historical version.

Enable it with ``SimRankService(graph, durability="/path/to/dir")``
(or a full :class:`~repro.serving.config.DurabilityConfig`), or
``python -m repro serve ... --data-dir /path/to/dir``.
"""

from .checkpoint import (
    CheckpointData,
    graph_from_packed,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    summarize_history,
    write_checkpoint,
    write_manifest,
)
from .manager import DurabilityManager, RecoveredState
from .wal import (
    FSYNC_POLICIES,
    KIND_ADD_NODE,
    KIND_BATCH,
    WalFrame,
    WriteAheadLog,
    decode_frames,
    encode_add_node_frame,
    encode_batch_frame,
)

__all__ = [
    "CheckpointData",
    "DurabilityManager",
    "FSYNC_POLICIES",
    "KIND_ADD_NODE",
    "KIND_BATCH",
    "RecoveredState",
    "WalFrame",
    "WriteAheadLog",
    "decode_frames",
    "encode_add_node_frame",
    "encode_batch_frame",
    "graph_from_packed",
    "list_checkpoints",
    "load_checkpoint",
    "read_manifest",
    "summarize_history",
    "write_checkpoint",
    "write_manifest",
]
