"""Single source of truth for the score-matrix storage dtype.

Every layer that materializes score values — the in-process
:class:`~repro.executor.score_store.ScoreStore` shards, the cluster's
shared-memory segments, and the crash-replay rebuild path — used to
hardcode its own ``_FLOAT_DTYPE = np.float64``.  This module is the one
place that decides which float dtypes are legal score *storage* types
and what the default is, so a precision change is a parameter, not a
four-file edit.

Two invariants the rest of the stack relies on:

* ``float64`` is the default and the bit-identity reference: with no
  explicit dtype anywhere, every code path must produce bit-identical
  results to the pre-dtype-seam implementation.
* Plan *values* always travel as float64 (the packed wire format
  bit-copies them through int64 words); reduced precision applies to
  shard **storage**, where the scatter-add casts on store.  That keeps
  the in-process and worker-side apply arithmetic bit-identical at any
  storage dtype.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .exceptions import ConfigError

__all__ = [
    "DEFAULT_FLOAT_DTYPE",
    "SUPPORTED_FLOAT_DTYPES",
    "dtype_name",
    "resolve_dtype",
]

#: The bit-identity reference dtype; every layer defaults to this.
DEFAULT_FLOAT_DTYPE = np.dtype(np.float64)

#: Score storage dtypes the stack accepts end to end.  The mapping is
#: ordered widest-first so reports list the reference dtype first; a
#: quantized cold tier would register here.
SUPPORTED_FLOAT_DTYPES = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}

DTypeLike = Union[str, np.dtype, type, None]


def resolve_dtype(dtype: DTypeLike = None) -> np.dtype:
    """Normalize a user-facing dtype spec to a supported ``np.dtype``.

    Accepts ``None`` (the float64 default), a name (``"float32"``), a
    ``np.dtype``, or a scalar type (``np.float32``).  Anything outside
    :data:`SUPPORTED_FLOAT_DTYPES` raises
    :class:`~repro.exceptions.ConfigError` (a ``ValueError``) — the score
    store is not a place for silent exotic dtypes.
    """
    if dtype is None:
        return DEFAULT_FLOAT_DTYPE
    if isinstance(dtype, str):
        try:
            return SUPPORTED_FLOAT_DTYPES[dtype]
        except KeyError:
            raise ConfigError(
                f"unsupported score dtype {dtype!r}; expected one of "
                f"{sorted(SUPPORTED_FLOAT_DTYPES)}"
            ) from None
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_FLOAT_DTYPES:
        raise ConfigError(
            f"unsupported score dtype {resolved.name!r}; expected one of "
            f"{sorted(SUPPORTED_FLOAT_DTYPES)}"
        )
    return resolved


def dtype_name(dtype: DTypeLike) -> str:
    """The canonical serializable name (``"float64"``/``"float32"``)."""
    return resolve_dtype(dtype).name
