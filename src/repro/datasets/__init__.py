"""Synthetic evolving-graph datasets standing in for the paper's corpora.

The paper evaluates on DBLP (co-citation), cit-HepPh (reference network)
and YouTube (related-video graph), sliced into timestamped snapshots.
Those corpora are not shipped here; :mod:`repro.datasets.citation` and
:mod:`repro.datasets.video` generate scaled-down graphs with the same
structural fingerprints (skewed in-degrees, timestamped arrival, rank
deficiency), and :mod:`repro.datasets.registry` names ready-made
configurations used by the benchmarks.  See DESIGN.md §4 for the
substitution rationale.
"""

from .citation import citation_network, cith_like, dblp_like
from .video import youtube_like
from .registry import DatasetSpec, get_dataset, list_datasets

__all__ = [
    "citation_network",
    "dblp_like",
    "cith_like",
    "youtube_like",
    "DatasetSpec",
    "get_dataset",
    "list_datasets",
]
