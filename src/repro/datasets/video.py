"""YouTube-like related-video network simulator.

In the paper's YOUTU dataset a video ``u`` links to ``v`` when ``v``
appears in ``u``'s related-video list; snapshots are sliced by *video
age*.  The simulator mimics the generative process: videos arrive over
time, each publishing a related list that mixes (i) popular videos
(preferential), (ii) same-community videos (homophily over a latent
topic), and (iii) reciprocal back-links (related lists are often
mutual) — producing a non-DAG graph with cycles, unlike the citation
simulators, which matters for exercising the algorithms on cyclic ``Q``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from ..graph.snapshots import TimestampedGraph


def youtube_like(
    num_videos: int = 900,
    num_ages: int = 6,
    related_list_size: int = 5,
    num_topics: int = 12,
    reciprocity: float = 0.3,
    seed: int = 20140403,
) -> TimestampedGraph:
    """Generate a timestamped related-video graph.

    Parameters
    ----------
    num_videos:
        Number of videos (nodes), arriving uniformly over the ages.
    num_ages:
        Number of age cohorts; snapshot timestamps are ``0..num_ages-1``.
    related_list_size:
        Mean size of each video's related list (its out-degree).
    num_topics:
        Number of latent communities driving homophily.
    reciprocity:
        Probability that a related link also spawns the reverse link.
    seed:
        RNG seed.
    """
    if num_ages < 1:
        raise GraphError(f"num_ages must be >= 1, got {num_ages}")
    if num_videos < num_ages:
        raise GraphError(
            f"need at least one video per age ({num_ages}), got {num_videos}"
        )
    rng = np.random.default_rng(seed)
    graph = TimestampedGraph(num_videos)
    age_of = np.minimum(
        (np.arange(num_videos) * num_ages) // num_videos, num_ages - 1
    )
    topic_of = rng.integers(num_topics, size=num_videos)
    popularity = np.ones(num_videos)
    existing: set = set()

    def try_add(source: int, target: int, timestamp: int) -> bool:
        if source == target or (source, target) in existing:
            return False
        graph.add_edge(source, target, timestamp=timestamp)
        existing.add((source, target))
        popularity[target] += 1.0
        return True

    for video in range(1, num_videos):
        age = int(age_of[video])
        want = max(1, int(rng.poisson(related_list_size)))
        want = min(want, video)
        same_topic = np.nonzero(topic_of[:video] == topic_of[video])[0]
        for _ in range(want):
            if same_topic.size and rng.random() < 0.5:
                target = int(rng.choice(same_topic))
            else:
                weights = popularity[:video]
                target = int(rng.choice(video, p=weights / weights.sum()))
            if try_add(video, target, age) and rng.random() < reciprocity:
                try_add(target, video, age)
    return graph
