"""The 15-node motivating-example graph (paper Fig. 1, reconstructed).

The paper's Fig. 1 shows a 15-node citation fragment of DBLP with an
inserted edge ``(i, j)``, but only publishes the drawing plus a handful
of structural facts (e.g. ``d_j = 2`` with in-neighbors ``{h, k}``, and
the columns ``[S]_{:,i}``, ``[S]_{:,j}`` supported on ``{f, i, j}``).
This module builds a fixed 15-node citation graph consistent with those
facts; absolute scores differ from the paper's drawing, but the table's
*behaviour* is reproduced: inserting ``(i, j)`` changes a handful of
pairs, Inc-SR matches the batch recomputation exactly, and Inc-SVD —
even with a lossless SVD — does not (see ``fig1`` in the harness).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate

#: Node labels in paper order; index = node id.
NODE_LABELS = "abcdefghijklmno"

#: Citation edges (citing -> cited) of the example graph, by label.
EXAMPLE_EDGES: List[Tuple[str, str]] = [
    # j is referenced by h and k (the paper states d_j = 2, I(j) = {h, k}).
    ("h", "j"), ("k", "j"),
    # i shares referees with j, plus one more.
    ("h", "i"), ("k", "i"), ("g", "i"),
    # f shares referees with i and j.
    ("g", "f"), ("h", "f"),
    # the referee layer itself is cited by older papers.
    ("l", "g"), ("m", "g"),
    ("l", "h"), ("m", "h"), ("n", "h"),
    ("n", "k"), ("o", "k"),
    # the (a, b) pair of the table: common citer c.
    ("c", "a"), ("d", "a"),
    ("c", "b"), ("e", "b"),
    # the (m, l) pair: common citer a.
    ("a", "l"), ("b", "l"),
    ("a", "m"), ("c", "m"),
    # periphery closing the graph.
    ("d", "n"), ("e", "o"),
    ("o", "c"), ("o", "d"),
    ("n", "e"),
]


def label_to_index() -> Dict[str, int]:
    """Mapping from the paper's letter labels to node ids."""
    return {label: index for index, label in enumerate(NODE_LABELS)}


def example_graph() -> DynamicDiGraph:
    """The old graph ``G`` of Fig. 1 (before the dashed edge)."""
    mapping = label_to_index()
    edges = [(mapping[s], mapping[t]) for s, t in EXAMPLE_EDGES]
    return DynamicDiGraph.from_edges(len(NODE_LABELS), edges)


def example_update() -> EdgeUpdate:
    """The dashed insertion ``(i, j)`` of Fig. 1."""
    mapping = label_to_index()
    return EdgeUpdate.insert(mapping["i"], mapping["j"])


#: The node pairs listed in the Fig. 1 table, by label.
TABLE_PAIRS: List[Tuple[str, str]] = [
    ("a", "b"),
    ("a", "d"),
    ("i", "f"),
    ("k", "g"),
    ("k", "h"),
    ("j", "f"),
    ("m", "l"),
    ("j", "b"),
]
