"""Evolving citation-network simulators (DBLP-like and CITH-like).

Papers arrive in yearly cohorts; each paper cites earlier papers with a
preferential-attachment bias (well-cited papers attract more citations)
and a recency bias (most references go to recent years).  The result is
a timestamped DAG whose snapshots-by-year mirror how the paper extracts
DBLP/cit-HepPh workloads ("by virtue of the year of the papers, we
extract dense snapshots", Sec. VI-A).

DBLP-like and CITH-like differ the way the real corpora do: CITH
(cit-HepPh) has a substantially higher edge/node ratio (~12) than DBLP
(~7), so :func:`cith_like` uses longer reference lists.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import GraphError
from ..graph.snapshots import TimestampedGraph


def citation_network(
    num_papers: int,
    num_years: int,
    references_per_paper: int,
    recency_bias: float = 0.6,
    seed: Optional[int] = None,
) -> TimestampedGraph:
    """Generate a timestamped citation graph.

    Parameters
    ----------
    num_papers:
        Total number of papers (nodes); spread uniformly over the years.
    num_years:
        Number of yearly cohorts; snapshot timestamps are ``0..num_years-1``.
    references_per_paper:
        Mean out-degree (actual reference counts are Poisson-ish around
        this, truncated to the available earlier papers).
    recency_bias:
        Probability that a reference targets the most recent two cohorts
        rather than a preferential pick over all earlier papers.
    seed:
        RNG seed for reproducibility.
    """
    if num_years < 1:
        raise GraphError(f"num_years must be >= 1, got {num_years}")
    if num_papers < num_years:
        raise GraphError(
            f"need at least one paper per year ({num_years}), got {num_papers}"
        )
    if references_per_paper < 1:
        raise GraphError(
            f"references_per_paper must be >= 1, got {references_per_paper}"
        )
    rng = np.random.default_rng(seed)
    graph = TimestampedGraph(num_papers)
    year_of = np.minimum(
        (np.arange(num_papers) * num_years) // num_papers, num_years - 1
    )
    citation_weight = np.ones(num_papers)

    for paper in range(num_papers):
        year = int(year_of[paper])
        earlier = paper  # papers 0..paper-1 exist already
        if earlier == 0:
            continue
        want = int(rng.poisson(references_per_paper))
        want = max(1, min(want, earlier))
        chosen: set = set()
        recent_floor = int(
            np.searchsorted(year_of[:earlier], max(0, year - 2), side="left")
        )
        for _ in range(want):
            target: Optional[int] = None
            if rng.random() < recency_bias and recent_floor < earlier:
                candidate = int(rng.integers(recent_floor, earlier))
                if candidate not in chosen:
                    target = candidate
            if target is None:
                weights = citation_weight[:earlier]
                target = int(rng.choice(earlier, p=weights / weights.sum()))
                if target in chosen:
                    continue
            chosen.add(target)
            citation_weight[target] += 1.0
            graph.add_edge(paper, target, timestamp=year)
    return graph


def dblp_like(
    num_papers: int = 600,
    num_years: int = 8,
    seed: int = 20140401,
) -> TimestampedGraph:
    """DBLP-style co-citation graph: moderate density (~7 refs/paper)."""
    return citation_network(
        num_papers=num_papers,
        num_years=num_years,
        references_per_paper=7,
        recency_bias=0.55,
        seed=seed,
    )


def cith_like(
    num_papers: int = 800,
    num_years: int = 8,
    seed: int = 20140402,
) -> TimestampedGraph:
    """cit-HepPh-style reference network: denser (~12 refs/paper)."""
    return citation_network(
        num_papers=num_papers,
        num_years=num_years,
        references_per_paper=12,
        recency_bias=0.7,
        seed=seed,
    )
