"""Named dataset configurations used by the benchmark harness.

Each entry maps a short name (``"dblp"``, ``"cith"``, ``"youtu"``,
optionally suffixed ``-tiny``/``-small``) to a factory returning a
:class:`~repro.graph.snapshots.TimestampedGraph`, plus the evaluation
parameters the paper pairs with that dataset (damping, iterations).
The ``youtu`` entries use ``K = 5`` exactly as the paper does for its
large dataset (Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..config import SimRankConfig
from ..exceptions import ConfigError
from ..graph.snapshots import TimestampedGraph
from .citation import cith_like, dblp_like
from .video import youtube_like


@dataclass(frozen=True)
class DatasetSpec:
    """A named evolving-graph workload with its evaluation settings."""

    name: str
    factory: Callable[[], TimestampedGraph]
    config: SimRankConfig
    description: str

    def build(self) -> TimestampedGraph:
        """Materialize the timestamped graph (deterministic per name)."""
        return self.factory()


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="dblp-tiny",
        factory=lambda: dblp_like(num_papers=220, num_years=6),
        config=SimRankConfig(damping=0.6, iterations=15),
        description="DBLP-like citation graph, test scale (~220 nodes)",
    )
)
_register(
    DatasetSpec(
        name="dblp",
        factory=lambda: dblp_like(num_papers=600, num_years=8),
        config=SimRankConfig(damping=0.6, iterations=15),
        description="DBLP-like citation graph, bench scale (~600 nodes)",
    )
)
_register(
    DatasetSpec(
        name="cith-tiny",
        factory=lambda: cith_like(num_papers=260, num_years=6),
        config=SimRankConfig(damping=0.6, iterations=15),
        description="cit-HepPh-like reference network, test scale",
    )
)
_register(
    DatasetSpec(
        name="cith",
        factory=lambda: cith_like(num_papers=800, num_years=8),
        config=SimRankConfig(damping=0.6, iterations=15),
        description="cit-HepPh-like reference network, bench scale",
    )
)
_register(
    DatasetSpec(
        name="youtu-tiny",
        factory=lambda: youtube_like(num_videos=300, num_ages=5),
        config=SimRankConfig(damping=0.6, iterations=5),
        description="YouTube-like related-video graph, test scale",
    )
)
_register(
    DatasetSpec(
        name="youtu",
        factory=lambda: youtube_like(num_videos=900, num_ages=6),
        config=SimRankConfig(damping=0.6, iterations=5),
        description="YouTube-like related-video graph, bench scale "
        "(K=5 as in the paper's YOUTU runs)",
    )
)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name; raise ``ConfigError`` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown dataset {name!r}; known: {known}") from None


def list_datasets() -> List[str]:
    """Sorted names of all registered datasets."""
    return sorted(_REGISTRY)
