"""Synthetic graph and update-stream generators.

The paper evaluates on (i) real snapshot graphs (DBLP, cit-HepPh, YouTube)
and (ii) synthetic graphs produced by GraphGen following the *linkage
generation model* of Garg et al. (IMC 2009, reference [20]).  This module
provides laptop-scale stand-ins:

* :func:`erdos_renyi_digraph` — uniform random digraphs (test fodder).
* :func:`preferential_attachment_digraph` — scale-free in-degree digraphs.
* :func:`linkage_model_digraph` — preferential attachment + locality
  (friend-of-friend closure), echoing the evolution dynamics of [20].
* :func:`random_insertions` / :func:`random_deletions` /
  :func:`random_update_batch` — update-stream samplers.

All generators take an explicit ``seed`` and are deterministic for a given
seed, which the benchmarks rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import GraphError
from .digraph import DynamicDiGraph
from .updates import EdgeUpdate, UpdateBatch


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_digraph(
    num_nodes: int, edge_probability: float, seed: Optional[int] = None
) -> DynamicDiGraph:
    """G(n, p) digraph without self-loops.

    Each ordered pair ``(u, v)``, ``u != v``, receives an edge
    independently with probability ``edge_probability``.
    """
    if not (0.0 <= edge_probability <= 1.0):
        raise GraphError(
            f"edge probability must be in [0, 1], got {edge_probability}"
        )
    rng = _rng(seed)
    graph = DynamicDiGraph(num_nodes)
    mask = rng.random((num_nodes, num_nodes)) < edge_probability
    np.fill_diagonal(mask, False)
    sources, targets = np.nonzero(mask)
    for source, target in zip(sources.tolist(), targets.tolist()):
        graph.add_edge(source, target)
    return graph


def preferential_attachment_digraph(
    num_nodes: int,
    out_degree: int,
    seed: Optional[int] = None,
) -> DynamicDiGraph:
    """Scale-free digraph: each new node cites ``out_degree`` earlier nodes.

    Targets are chosen proportionally to ``1 + in_degree``, producing the
    skewed in-degree distribution typical of citation graphs.  Edges point
    from newer to older nodes (like paper citations), so the graph is a
    DAG under the node ordering.
    """
    if out_degree < 1:
        raise GraphError(f"out_degree must be >= 1, got {out_degree}")
    if num_nodes < 2:
        raise GraphError(f"need at least 2 nodes, got {num_nodes}")
    rng = _rng(seed)
    graph = DynamicDiGraph(num_nodes)
    weights = np.ones(num_nodes)
    for node in range(1, num_nodes):
        k = min(out_degree, node)
        probabilities = weights[:node] / weights[:node].sum()
        targets = rng.choice(node, size=k, replace=False, p=probabilities)
        for target in targets.tolist():
            graph.add_edge(node, target)
            weights[target] += 1.0
    return graph


def linkage_model_digraph(
    num_nodes: int,
    out_degree: int,
    locality: float = 0.5,
    seed: Optional[int] = None,
) -> DynamicDiGraph:
    """Preferential attachment with triadic/locality closure (ref. [20]).

    Each arriving node first links to one node chosen preferentially by
    in-degree; each further link is, with probability ``locality``, a
    *copying* step (an out-neighbor of an already-linked node — the
    friend-of-friend closure observed in social aggregation networks),
    otherwise another preferential step.
    """
    if not (0.0 <= locality <= 1.0):
        raise GraphError(f"locality must be in [0, 1], got {locality}")
    if out_degree < 1:
        raise GraphError(f"out_degree must be >= 1, got {out_degree}")
    rng = _rng(seed)
    graph = DynamicDiGraph(num_nodes)
    weights = np.ones(num_nodes)

    def preferential_target(limit: int, taken: set) -> Optional[int]:
        candidates = [v for v in range(limit) if v not in taken]
        if not candidates:
            return None
        local = weights[candidates]
        probabilities = local / local.sum()
        return int(rng.choice(candidates, p=probabilities))

    for node in range(1, num_nodes):
        taken: set = set()
        first = preferential_target(node, taken)
        if first is None:
            continue
        graph.add_edge(node, first)
        weights[first] += 1.0
        taken.add(first)
        for _ in range(min(out_degree, node) - 1):
            target: Optional[int] = None
            if rng.random() < locality and taken:
                anchor = int(rng.choice(sorted(taken)))
                hops = [
                    v for v in graph.out_neighbors(anchor) if v not in taken
                ]
                if hops:
                    target = int(rng.choice(hops))
            if target is None:
                target = preferential_target(node, taken)
            if target is None:
                break
            graph.add_edge(node, target)
            weights[target] += 1.0
            taken.add(target)
    return graph


# ---------------------------------------------------------------------- #
# Update-stream samplers
# ---------------------------------------------------------------------- #


def random_insertions(
    graph: DynamicDiGraph,
    count: int,
    seed: Optional[int] = None,
    max_attempts_factor: int = 50,
) -> UpdateBatch:
    """Sample ``count`` distinct non-existing edges as insertion updates.

    Sampling is rejection-based over uniform node pairs, skipping
    self-loops and existing/already-sampled edges.
    """
    rng = _rng(seed)
    n = graph.num_nodes
    if n < 2:
        raise GraphError("need at least 2 nodes to sample insertions")
    chosen: List[Tuple[int, int]] = []
    seen = graph.edge_set()
    attempts = 0
    limit = max(1, count) * max_attempts_factor
    while len(chosen) < count:
        attempts += 1
        if attempts > limit:
            raise GraphError(
                f"could not sample {count} new edges after {limit} attempts"
            )
        source = int(rng.integers(n))
        target = int(rng.integers(n))
        if source == target or (source, target) in seen:
            continue
        seen.add((source, target))
        chosen.append((source, target))
    return UpdateBatch(EdgeUpdate.insert(s, t) for s, t in chosen)


def random_deletions(
    graph: DynamicDiGraph, count: int, seed: Optional[int] = None
) -> UpdateBatch:
    """Sample ``count`` distinct existing edges as deletion updates."""
    rng = _rng(seed)
    edges = sorted(graph.edge_set())
    if count > len(edges):
        raise GraphError(
            f"cannot delete {count} edges from a graph with {len(edges)}"
        )
    picked = rng.choice(len(edges), size=count, replace=False)
    return UpdateBatch(
        EdgeUpdate.delete(*edges[int(index)]) for index in sorted(picked)
    )


def random_update_batch(
    graph: DynamicDiGraph,
    insertions: int,
    deletions: int,
    seed: Optional[int] = None,
) -> UpdateBatch:
    """A mixed batch: ``deletions`` removals then ``insertions`` additions.

    Deletions are sampled from the original edge set and insertions from
    the complement, so the batch is always applicable to ``graph``.
    """
    delete_batch = random_deletions(graph, deletions, seed=seed)
    insert_batch = random_insertions(
        graph, insertions, seed=None if seed is None else seed + 1
    )
    return UpdateBatch(list(delete_batch) + list(insert_batch))
