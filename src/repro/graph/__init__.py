"""Dynamic directed-graph substrate for incremental SimRank.

This subpackage provides everything the algorithms need from the graph
side: a mutable digraph with O(1) edge insertion/deletion and degree
queries (:mod:`repro.graph.digraph`), construction and incremental
maintenance of the backward transition matrix ``Q``
(:mod:`repro.graph.transition`), typed edge-update streams
(:mod:`repro.graph.updates`), synthetic generators used by the benchmarks
(:mod:`repro.graph.generators`), timestamped snapshot graphs
(:mod:`repro.graph.snapshots`), and edge-list I/O (:mod:`repro.graph.io`).
"""

from .digraph import DynamicDiGraph
from .transition import (
    adjacency_matrix,
    backward_transition_matrix,
    transition_row,
    update_transition_matrix,
)
from .updates import EdgeUpdate, UpdateBatch, UpdateKind, graph_delta
from .snapshots import TimestampedGraph

__all__ = [
    "DynamicDiGraph",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateKind",
    "TimestampedGraph",
    "adjacency_matrix",
    "backward_transition_matrix",
    "transition_row",
    "update_transition_matrix",
    "graph_delta",
]
