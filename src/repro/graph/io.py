"""Plain-text edge-list I/O.

Two formats, both whitespace-separated with ``#`` comments:

* plain: ``source target`` per line (SNAP-style, as used by cit-HepPh);
* timed: ``source target timestamp`` per line, loading into a
  :class:`~repro.graph.snapshots.TimestampedGraph`.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..exceptions import GraphError
from .digraph import DynamicDiGraph
from .snapshots import TimestampedGraph


def _parse_lines(path: str, expected_fields: int) -> List[Tuple[int, ...]]:
    rows: List[Tuple[int, ...]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != expected_fields:
                raise GraphError(
                    f"{path}:{line_number}: expected {expected_fields} "
                    f"fields, got {len(fields)}"
                )
            try:
                rows.append(tuple(int(field) for field in fields))
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_number}: non-integer field in {line!r}"
                ) from exc
    return rows


def load_edge_list(path: str, num_nodes: Optional[int] = None) -> DynamicDiGraph:
    """Load a plain edge list; infer the node count when not given."""
    rows = _parse_lines(path, expected_fields=2)
    inferred = 1 + max((max(s, t) for s, t in rows), default=-1)
    n = inferred if num_nodes is None else num_nodes
    if n < inferred:
        raise GraphError(
            f"num_nodes={n} too small for edges referencing node {inferred - 1}"
        )
    return DynamicDiGraph.from_edges(n, rows)


def save_edge_list(graph: DynamicDiGraph, path: str) -> None:
    """Write the graph as a plain edge list (sorted, with a size header)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for source, target in graph.edges():
            handle.write(f"{source} {target}\n")


def load_timed_edge_list(
    path: str, num_nodes: Optional[int] = None
) -> TimestampedGraph:
    """Load a timed edge list into a :class:`TimestampedGraph`."""
    rows = _parse_lines(path, expected_fields=3)
    inferred = 1 + max((max(s, t) for s, t, _ in rows), default=-1)
    n = inferred if num_nodes is None else num_nodes
    if n < inferred:
        raise GraphError(
            f"num_nodes={n} too small for edges referencing node {inferred - 1}"
        )
    return TimestampedGraph.from_timed_edges(n, rows)


def save_timed_edge_list(graph: TimestampedGraph, path: str) -> None:
    """Write a timed edge list, one ``source target timestamp`` per line."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for (source, target), timestamp in sorted(graph._edges.items()):
            handle.write(f"{source} {target} {timestamp}\n")
