"""Typed edge-update streams over link-evolving graphs.

The paper's incremental algorithms process *unit updates* — one edge
insertion or one edge deletion at a time (Sec. V).  A *batch update*
``ΔG`` is a sequence of unit updates; :class:`UpdateBatch` models it and
knows how to be applied to a :class:`~repro.graph.digraph.DynamicDiGraph`.
:func:`graph_delta` recovers an update batch from two graph snapshots,
which is exactly how the paper derives its real-data workloads (edge
differences between consecutive "year" snapshots).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import GraphError
from .digraph import DynamicDiGraph


class UpdateKind(enum.Enum):
    """Whether a unit update inserts or deletes an edge."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class EdgeUpdate:
    """A unit update: insert or delete the directed edge ``(source, target)``.

    The paper writes the edge as ``(i, j)`` with ``i`` the source and ``j``
    the target; the in-degree that matters for Theorem 1 is ``d_j``, the
    in-degree of :attr:`target` in the *old* graph.
    """

    kind: UpdateKind
    source: int
    target: int

    @classmethod
    def insert(cls, source: int, target: int) -> "EdgeUpdate":
        """Shorthand for an insertion update."""
        return cls(UpdateKind.INSERT, source, target)

    @classmethod
    def delete(cls, source: int, target: int) -> "EdgeUpdate":
        """Shorthand for a deletion update."""
        return cls(UpdateKind.DELETE, source, target)

    @property
    def is_insert(self) -> bool:
        """True iff this update inserts an edge."""
        return self.kind is UpdateKind.INSERT

    @property
    def edge(self) -> Tuple[int, int]:
        """The affected ``(source, target)`` pair."""
        return (self.source, self.target)

    def inverse(self) -> "EdgeUpdate":
        """The update that undoes this one."""
        kind = UpdateKind.DELETE if self.is_insert else UpdateKind.INSERT
        return EdgeUpdate(kind, self.source, self.target)

    def apply_to(self, graph: DynamicDiGraph) -> None:
        """Mutate ``graph`` according to this update."""
        if self.is_insert:
            graph.add_edge(self.source, self.target)
        else:
            graph.remove_edge(self.source, self.target)

    def __str__(self) -> str:
        sign = "+" if self.is_insert else "-"
        return f"{sign}({self.source}->{self.target})"


class UpdateBatch:
    """An ordered sequence of unit updates (the paper's ``ΔG``).

    The batch is a thin immutable wrapper over a list of
    :class:`EdgeUpdate`; the incremental engine consumes it one unit update
    at a time, matching the paper's observation that "batch update ... can
    be decomposed into a sequence of unit updates" (Sec. V).
    """

    def __init__(self, updates: Iterable[EdgeUpdate]) -> None:
        self._updates: Tuple[EdgeUpdate, ...] = tuple(updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self._updates[index]

    @property
    def num_insertions(self) -> int:
        """Number of insertion updates in the batch."""
        return sum(1 for update in self._updates if update.is_insert)

    @property
    def num_deletions(self) -> int:
        """Number of deletion updates in the batch."""
        return len(self._updates) - self.num_insertions

    def apply_to(self, graph: DynamicDiGraph) -> None:
        """Apply every unit update to ``graph`` in order."""
        for update in self._updates:
            update.apply_to(graph)

    def applied(self, graph: DynamicDiGraph) -> DynamicDiGraph:
        """Return a copy of ``graph`` with the batch applied."""
        result = graph.copy()
        self.apply_to(result)
        return result

    def inverse(self) -> "UpdateBatch":
        """The batch that undoes this one (reversed order, inverted kinds)."""
        return UpdateBatch(update.inverse() for update in reversed(self._updates))

    def validate_against(self, graph: DynamicDiGraph) -> None:
        """Check the batch is applicable to ``graph`` without mutating it.

        Raises :class:`~repro.exceptions.GraphError` on the first update
        that would fail (inserting an existing edge, deleting a missing
        edge, or referencing an unknown node).
        """
        scratch = graph.copy()
        try:
            self.apply_to(scratch)
        except GraphError as exc:
            raise GraphError(f"batch not applicable: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"UpdateBatch(n={len(self)}, +{self.num_insertions}, "
            f"-{self.num_deletions})"
        )


def graph_delta(old: DynamicDiGraph, new: DynamicDiGraph) -> UpdateBatch:
    """Compute an :class:`UpdateBatch` turning ``old`` into ``new``.

    Deletions are emitted before insertions so that applying the batch
    never trips the duplicate-edge guard.  Both graphs must share the same
    node universe.
    """
    if old.num_nodes != new.num_nodes:
        raise GraphError(
            "graph_delta requires equal node universes, got "
            f"{old.num_nodes} vs {new.num_nodes}"
        )
    old_edges = old.edge_set()
    new_edges = new.edge_set()
    deletions = [
        EdgeUpdate.delete(s, t) for (s, t) in sorted(old_edges - new_edges)
    ]
    insertions = [
        EdgeUpdate.insert(s, t) for (s, t) in sorted(new_edges - old_edges)
    ]
    return UpdateBatch(deletions + insertions)


def interleave(batches: Sequence[UpdateBatch]) -> UpdateBatch:
    """Round-robin merge of several batches into one.

    Used by ablation benchmarks to check that the final similarity matrix
    does not depend on how a mixed workload is interleaved.
    """
    queues: List[List[EdgeUpdate]] = [list(batch) for batch in batches]
    merged: List[EdgeUpdate] = []
    while any(queues):
        for queue in queues:
            if queue:
                merged.append(queue.pop(0))
    return UpdateBatch(merged)
