"""Backward transition matrix ``Q`` construction and maintenance.

``Q`` is the row-normalized transpose of the adjacency matrix:
``[Q]_{i,j} = 1/|I(i)|`` iff the edge ``j -> i`` exists, else 0
(Sec. III, Eq. (2) of the paper).  Rows of nodes with no in-links are all
zero, so ``Q`` is row-substochastic in general.

The incremental algorithms never rebuild ``Q`` from scratch: a unit update
``(i, j)`` only rewrites row ``j``.  The *engine's* hot path keeps ``Q``
in a :class:`~repro.linalg.qstore.TransitionStore` (persistent dual
CSR/CSC slabs with O(row) surgery and no scipy object churn);
:func:`update_transition_matrix` remains the reference single-row rewrite
on plain scipy CSR arrays — used by tests, ablations, and the frozen
seed baseline in :mod:`repro.bench.legacy` — and :func:`transition_row`
builds one row directly from the graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..exceptions import DimensionError
from .digraph import DynamicDiGraph
from .updates import EdgeUpdate


def adjacency_matrix(graph: DynamicDiGraph) -> sp.csr_matrix:
    """The ``n x n`` 0/1 adjacency matrix ``A`` with ``A[i, j] = 1`` iff ``i -> j``."""
    n = graph.num_nodes
    rows = []
    cols = []
    for source, target in graph.edges():
        rows.append(source)
        cols.append(target)
    data = np.ones(len(rows), dtype=np.float64)
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def backward_transition_matrix(graph: DynamicDiGraph) -> sp.csr_matrix:
    """Build ``Q`` (row-normalized ``Aᵀ``) for the current graph.

    Row ``i`` of the result holds ``1/|I(i)|`` at each in-neighbor of
    ``i``; rows of in-degree-zero nodes are empty.
    """
    n = graph.num_nodes
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices = []
    data = []
    for node, in_list in enumerate(graph.in_neighbor_lists()):
        degree = len(in_list)
        indptr[node + 1] = indptr[node] + degree
        if degree:
            indices.extend(in_list)
            data.extend([1.0 / degree] * degree)
    return sp.csr_matrix(
        (np.asarray(data, dtype=np.float64), np.asarray(indices, dtype=np.int64), indptr),
        shape=(n, n),
    )


def transition_row(graph: DynamicDiGraph, node: int) -> sp.csr_matrix:
    """The single row ``[Q]_{node,:}`` as a ``1 x n`` CSR matrix."""
    n = graph.num_nodes
    in_list = sorted(graph.in_neighbors(node))
    degree = len(in_list)
    if degree == 0:
        return sp.csr_matrix((1, n), dtype=np.float64)
    data = np.full(degree, 1.0 / degree)
    indices = np.asarray(in_list, dtype=np.int64)
    indptr = np.asarray([0, degree], dtype=np.int64)
    return sp.csr_matrix((data, indices, indptr), shape=(1, n))


def update_transition_matrix(
    q_matrix: sp.csr_matrix,
    update: EdgeUpdate,
    new_graph: DynamicDiGraph,
) -> sp.csr_matrix:
    """Return ``Q̃`` after a unit update, rewriting only row ``update.target``.

    Parameters
    ----------
    q_matrix:
        The old ``Q`` (CSR), matching the graph *before* the update.
    update:
        The unit update that was applied.
    new_graph:
        The graph *after* the update (used to read the fresh in-neighbor
        list of the target node).
    """
    n = new_graph.num_nodes
    if q_matrix.shape != (n, n):
        raise DimensionError(
            f"Q has shape {q_matrix.shape}, expected ({n}, {n})"
        )
    target = update.target
    new_row = transition_row(new_graph, target)
    # Splice the new row into the CSR arrays directly: everything outside
    # row `target` is byte-copied, which keeps the per-update maintenance
    # cost at O(nnz) with NumPy-level copies (no LIL round-trip).
    start, end = int(q_matrix.indptr[target]), int(q_matrix.indptr[target + 1])
    data = np.concatenate(
        (q_matrix.data[:start], new_row.data, q_matrix.data[end:])
    )
    indices = np.concatenate(
        (q_matrix.indices[:start], new_row.indices, q_matrix.indices[end:])
    )
    indptr = q_matrix.indptr.copy()
    shift = new_row.nnz - (end - start)
    indptr[target + 1 :] += shift
    return sp.csr_matrix((data, indices, indptr), shape=(n, n))


def verify_transition_matrix(
    q_matrix: sp.csr_matrix,
    graph: DynamicDiGraph,
    atol: float = 1e-12,
) -> Optional[str]:
    """Cross-check an incrementally maintained ``Q`` against the graph.

    Returns ``None`` when consistent, otherwise a human-readable
    description of the first discrepancy.  Used by tests and by the
    engine's (opt-in) paranoid mode.
    """
    expected = backward_transition_matrix(graph)
    difference = (q_matrix - expected).tocoo()
    if difference.nnz == 0:
        return None
    magnitudes = np.abs(difference.data)
    worst = int(np.argmax(magnitudes))
    if magnitudes[worst] <= atol:
        return None
    return (
        f"Q mismatch at ({difference.row[worst]}, {difference.col[worst]}): "
        f"got delta {difference.data[worst]:+.3e}"
    )
