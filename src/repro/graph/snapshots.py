"""Timestamped graphs and snapshot extraction.

The paper builds its real-data workloads by slicing evolving graphs on an
attribute: DBLP/cit-HepPh by paper *year*, YouTube by *video age*
(Sec. VI-A), then taking edge differences between consecutive snapshots.
:class:`TimestampedGraph` stores edges tagged with an integer timestamp
and reproduces that pipeline: :meth:`snapshot_at` materializes the graph
of all edges with timestamp ``<= t`` and :meth:`delta_between` returns the
update batch between two snapshot times.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..exceptions import GraphError
from .digraph import DynamicDiGraph
from .updates import EdgeUpdate, UpdateBatch

TimedEdge = Tuple[int, int, int]  # (source, target, timestamp)


class TimestampedGraph:
    """An edge set over a fixed node universe, each edge carrying a timestamp.

    Edges are immutable once added; evolution is modeled as the arrival of
    edges over time (insert-only), which matches citation graphs, plus an
    optional expiry map for workloads with deletions.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = num_nodes
        self._edges: Dict[Tuple[int, int], int] = {}
        self._expiry: Dict[Tuple[int, int], int] = {}

    @property
    def num_nodes(self) -> int:
        """Size of the node universe."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Total number of distinct edges ever added."""
        return len(self._edges)

    def add_edge(self, source: int, target: int, timestamp: int) -> None:
        """Record that edge ``(source, target)`` arrives at ``timestamp``."""
        if not (0 <= source < self._num_nodes and 0 <= target < self._num_nodes):
            raise GraphError(
                f"edge ({source}, {target}) outside node universe "
                f"0..{self._num_nodes - 1}"
            )
        key = (source, target)
        if key in self._edges:
            raise GraphError(f"edge {key} already has a timestamp")
        self._edges[key] = timestamp

    def expire_edge(self, source: int, target: int, timestamp: int) -> None:
        """Record that an existing edge disappears at ``timestamp``."""
        key = (source, target)
        if key not in self._edges:
            raise GraphError(f"cannot expire unknown edge {key}")
        if timestamp <= self._edges[key]:
            raise GraphError(
                f"expiry {timestamp} must be after arrival {self._edges[key]}"
            )
        self._expiry[key] = timestamp

    @classmethod
    def from_timed_edges(
        cls, num_nodes: int, timed_edges: Iterable[TimedEdge]
    ) -> "TimestampedGraph":
        """Build from an iterable of ``(source, target, timestamp)``."""
        graph = cls(num_nodes)
        for source, target, timestamp in timed_edges:
            graph.add_edge(source, target, timestamp)
        return graph

    def timestamps(self) -> List[int]:
        """Sorted list of distinct arrival timestamps."""
        return sorted(set(self._edges.values()))

    def _alive_at(self, key: Tuple[int, int], time: int) -> bool:
        if self._edges[key] > time:
            return False
        expiry = self._expiry.get(key)
        return expiry is None or expiry > time

    def snapshot_at(self, time: int) -> DynamicDiGraph:
        """Graph of all edges alive at ``time`` (arrival <= time < expiry)."""
        graph = DynamicDiGraph(self._num_nodes)
        for (source, target) in sorted(self._edges):
            if self._alive_at((source, target), time):
                graph.add_edge(source, target)
        return graph

    def delta_between(self, old_time: int, new_time: int) -> UpdateBatch:
        """Update batch transforming the ``old_time`` snapshot into ``new_time``'s.

        Deletions (expiries) come first, then insertions (arrivals), both
        in sorted edge order for determinism.
        """
        if new_time < old_time:
            raise GraphError(
                f"new_time {new_time} must be >= old_time {old_time}"
            )
        deletions: List[EdgeUpdate] = []
        insertions: List[EdgeUpdate] = []
        for key in sorted(self._edges):
            old_alive = self._alive_at(key, old_time)
            new_alive = self._alive_at(key, new_time)
            if old_alive and not new_alive:
                deletions.append(EdgeUpdate.delete(*key))
            elif not old_alive and new_alive:
                insertions.append(EdgeUpdate.insert(*key))
        return UpdateBatch(deletions + insertions)

    def snapshot_series(
        self, times: Sequence[int]
    ) -> List[Tuple[DynamicDiGraph, UpdateBatch]]:
        """For each time, the snapshot plus the delta from the previous time.

        The first entry's delta is the batch from the empty graph.
        """
        series: List[Tuple[DynamicDiGraph, UpdateBatch]] = []
        previous: DynamicDiGraph = DynamicDiGraph(self._num_nodes)
        for time in times:
            snapshot = self.snapshot_at(time)
            from .updates import graph_delta

            series.append((snapshot, graph_delta(previous, snapshot)))
            previous = snapshot
        return series

    def __repr__(self) -> str:
        return (
            f"TimestampedGraph(num_nodes={self._num_nodes}, "
            f"num_edges={self.num_edges})"
        )
