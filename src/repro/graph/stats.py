"""Descriptive statistics for graphs and snapshots.

Used by the CLI ``info`` command and by the dataset validity tests: the
paper's claims lean on structural properties (skewed in-degrees,
rank-deficient ``Q``, small snapshot deltas), and these helpers make
them measurable on any graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .digraph import DynamicDiGraph


@dataclass(frozen=True)
class GraphStats:
    """A summary of one graph's structure."""

    num_nodes: int
    num_edges: int
    average_in_degree: float
    max_in_degree: int
    max_out_degree: int
    num_sources: int  # in-degree 0 (their Q rows are empty)
    num_sinks: int  # out-degree 0
    in_degree_gini: float  # skew of the in-degree distribution

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (for printing/serialization)."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "average_in_degree": self.average_in_degree,
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "num_sources": self.num_sources,
            "num_sinks": self.num_sinks,
            "in_degree_gini": self.in_degree_gini,
        }


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed)."""
    data = np.sort(np.asarray(values, dtype=np.float64))
    if data.size == 0:
        return 0.0
    total = data.sum()
    if total == 0.0:
        return 0.0
    n = data.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * data).sum()) / (n * total) - (n + 1) / n)


def graph_stats(graph: DynamicDiGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary for ``graph``."""
    n = graph.num_nodes
    in_degrees = np.asarray([graph.in_degree(v) for v in range(n)])
    out_degrees = np.asarray([graph.out_degree(v) for v in range(n)])
    return GraphStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        average_in_degree=graph.average_in_degree(),
        max_in_degree=int(in_degrees.max(initial=0)),
        max_out_degree=int(out_degrees.max(initial=0)),
        num_sources=int(np.sum(in_degrees == 0)),
        num_sinks=int(np.sum(out_degrees == 0)),
        in_degree_gini=gini_coefficient(in_degrees),
    )


def in_degree_histogram(graph: DynamicDiGraph) -> Dict[int, int]:
    """``{in_degree: node count}`` over all nodes."""
    histogram: Dict[int, int] = {}
    for node in range(graph.num_nodes):
        degree = graph.in_degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def snapshot_growth(snapshot_sizes: List[int]) -> List[float]:
    """Relative edge growth between consecutive snapshots.

    The paper motivates incremental computation with 5-10% weekly link
    churn; this helper computes the analogous per-step growth series for
    a timestamped dataset.
    """
    growth: List[float] = []
    for previous, current in zip(snapshot_sizes, snapshot_sizes[1:]):
        if previous == 0:
            growth.append(float("inf") if current else 0.0)
        else:
            growth.append((current - previous) / previous)
    return growth
