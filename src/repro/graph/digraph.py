"""A mutable directed graph tuned for link-evolving workloads.

The paper's algorithms need, per unit update, fast access to:

* the in-degree ``d_j`` of the update's target node (Theorem 1),
* the in-neighbor set ``I(v)`` (to build rows of ``Q``), and
* the out-neighbor set ``O(v)`` (to grow affected areas, Theorem 4).

:class:`DynamicDiGraph` therefore stores both adjacency directions as
dictionaries of sets over a dense integer node universe ``0..n-1``.  Nodes
are integers; higher layers may maintain their own label mapping (see
:meth:`DynamicDiGraph.from_labeled_edges`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)

Edge = Tuple[int, int]


class DynamicDiGraph:
    """Directed graph over nodes ``0..n-1`` with O(1) edge updates.

    Parameters
    ----------
    num_nodes:
        Size of the node universe.  Nodes exist from the start; edges are
        added and removed dynamically, matching the paper's *link-evolving*
        setting (node set fixed, edge set changing).

    Examples
    --------
    >>> g = DynamicDiGraph(3)
    >>> g.add_edge(0, 1)
    >>> g.add_edge(2, 1)
    >>> sorted(g.in_neighbors(1))
    [0, 2]
    >>> g.in_degree(1)
    2
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._succ: Dict[int, Set[int]] = {v: set() for v in range(num_nodes)}
        self._pred: Dict[int, Set[int]] = {v: set() for v in range(num_nodes)}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Edge]) -> "DynamicDiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls(num_nodes)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    @classmethod
    def from_labeled_edges(
        cls, edges: Iterable[Tuple[object, object]]
    ) -> Tuple["DynamicDiGraph", Dict[object, int]]:
        """Build a graph from arbitrary hashable labels.

        Returns the graph together with the ``label -> index`` mapping in
        first-seen order.
        """
        labels: Dict[object, int] = {}
        pairs: List[Edge] = []
        for source, target in edges:
            for label in (source, target):
                if label not in labels:
                    labels[label] = len(labels)
            pairs.append((labels[source], labels[target]))
        return cls.from_edges(len(labels), pairs), labels

    def copy(self) -> "DynamicDiGraph":
        """Return an independent deep copy of this graph."""
        clone = DynamicDiGraph(self._num_nodes)
        clone._succ = {v: set(nbrs) for v, nbrs in self._succ.items()}
        clone._pred = {v: set(nbrs) for v, nbrs in self._pred.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------ #
    # Size queries
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the (fixed) node universe."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Current number of directed edges."""
        return self._num_edges

    def __len__(self) -> int:
        return self._num_nodes

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self._num_nodes

    # ------------------------------------------------------------------ #
    # Node / edge queries
    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise NodeNotFoundError(node)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        self._check_node(source)
        self._check_node(target)
        return target in self._succ[source]

    def out_neighbors(self, node: int) -> FrozenSet[int]:
        """The out-neighbor set ``O(node)`` as an immutable view."""
        self._check_node(node)
        return frozenset(self._succ[node])

    def in_neighbors(self, node: int) -> FrozenSet[int]:
        """The in-neighbor set ``I(node)`` as an immutable view."""
        self._check_node(node)
        return frozenset(self._pred[node])

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node``."""
        self._check_node(node)
        return len(self._succ[node])

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node`` (``d_node`` in the paper)."""
        self._check_node(node)
        return len(self._pred[node])

    def average_in_degree(self) -> float:
        """Average in-degree ``d`` of the graph (0.0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return self._num_edges / self._num_nodes

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges in node order."""
        for source in range(self._num_nodes):
            for target in sorted(self._succ[source]):
                yield (source, target)

    def edge_set(self) -> Set[Edge]:
        """All edges as a set (materialized)."""
        return set(self.edges())

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_edge(self, source: int, target: int) -> None:
        """Insert edge ``source -> target``; raise if it already exists."""
        self._check_node(source)
        self._check_node(target)
        if target in self._succ[source]:
            raise EdgeExistsError(source, target)
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._num_edges += 1

    def remove_edge(self, source: int, target: int) -> None:
        """Delete edge ``source -> target``; raise if it does not exist."""
        self._check_node(source)
        self._check_node(target)
        if target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1

    def add_node(self) -> int:
        """Grow the node universe by one isolated node; return its id.

        The paper treats the node set as fixed; this extension point lets
        the engine support node arrival by expanding matrices lazily.
        """
        node = self._num_nodes
        self._num_nodes += 1
        self._succ[node] = set()
        self._pred[node] = set()
        return node

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for baselines/tests)."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(self._num_nodes))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph) -> Tuple["DynamicDiGraph", Dict[object, int]]:
        """Convert from any networkx directed graph; returns label mapping."""
        labels = {node: index for index, node in enumerate(nx_graph.nodes())}
        graph = cls(len(labels))
        for source, target in nx_graph.edges():
            graph.add_edge(labels[source], labels[target])
        return graph, labels

    def in_neighbor_lists(self) -> List[List[int]]:
        """Sorted in-neighbor list per node (used to build ``Q`` rows)."""
        return [sorted(self._pred[v]) for v in range(self._num_nodes)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiGraph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes and self._succ == other._succ
        )

    def __repr__(self) -> str:
        return (
            f"DynamicDiGraph(num_nodes={self._num_nodes}, "
            f"num_edges={self._num_edges})"
        )
