"""PROSE-style precision autotuning for the sharded score store.

The score store's dtype seam (:mod:`repro.dtypes`) makes reduced
precision a *storage* property: planning and the union-support GEMM
stay float64, and float32 only enters where blocks are scattered into
shard buffers.  That keeps the arithmetic deterministic — which is what
makes an accuracy-gated search meaningful: replaying the same seeded
calibration stream against the same initial state always produces the
same scores, so a demotion decision is reproducible.

:class:`PrecisionAutotuner` searches the demotion space the way
profile-guided precision tuners (PROSE, Precimonious-style delta
debugging) do:

1. Replay a seeded calibration update stream at full float64 — the
   reference leg.
2. Try demoting the *whole* store to float32 and replay the identical
   stream.  If NDCG@k and top-k overlap against the reference stay
   above the configured gates, accept the uniform demotion (the common
   case: SimRank top-k rankings are separated by far more than
   float32's epsilon).
3. Otherwise bisect: split the shard set in half and recursively try
   demoting each subset on top of what has already been accepted,
   keeping every subset that passes the gates and splitting every
   subset that fails.  The result is a maximal *accepted* per-shard
   demotion set under the greedy order.

The output is a :class:`PrecisionPlan` — a small, JSON-serializable
record of the decision (store dtype, per-shard overrides, gates, seed,
measured accuracy) that
:class:`repro.serving.service.SimRankService` consumes via
``precision="auto"`` and that survives service restarts on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import SimRankConfig
from ..dtypes import dtype_name, resolve_dtype
from ..exceptions import ConfigError
from ..executor.score_store import DEFAULT_SHARD_ROWS
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate
from ..incremental.engine import DynamicSimRank
from ..linalg.qstore import TransitionStore
from ..metrics.ndcg import ndcg_at_k
from ..metrics.topk import top_k_overlap
from ..simrank.base import default_config
from ..simrank.matrix import matrix_simrank

__all__ = [
    "PrecisionGates",
    "PrecisionPlan",
    "PrecisionAutotuner",
    "calibration_updates",
    "DEFAULT_CALIBRATION_UPDATES",
]

#: Length of the default seeded calibration stream.  Small on purpose:
#: each candidate evaluation replays the whole stream, and the gates
#: compare *final* matrices, so a couple dozen updates already walk the
#: incremental kernel through enough affected-area scatter to expose
#: float32 drift.
DEFAULT_CALIBRATION_UPDATES = 24


@dataclass(frozen=True)
class PrecisionGates:
    """Accuracy floors a demotion must clear against the float64 leg."""

    #: Ranking depth for the NDCG gate.
    ndcg_k: int = 100
    #: Minimum NDCG@``ndcg_k`` (approximate ranking graded by the
    #: reference scores).
    min_ndcg: float = 0.99
    #: Ranking depth for the top-k set-overlap gate.
    topk_k: int = 100
    #: Minimum fraction of the reference top-``topk_k`` pairs the
    #: demoted store must retain.
    min_topk_overlap: float = 0.98

    def passes(self, ndcg: float, overlap: float) -> bool:
        return ndcg >= self.min_ndcg and overlap >= self.min_topk_overlap

    def to_dict(self) -> dict:
        return {
            "ndcg_k": self.ndcg_k,
            "min_ndcg": self.min_ndcg,
            "topk_k": self.topk_k,
            "min_topk_overlap": self.min_topk_overlap,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PrecisionGates":
        return cls(
            ndcg_k=int(payload["ndcg_k"]),
            min_ndcg=float(payload["min_ndcg"]),
            topk_k=int(payload["topk_k"]),
            min_topk_overlap=float(payload["min_topk_overlap"]),
        )


@dataclass
class PrecisionPlan:
    """A reproducible record of an accepted precision configuration.

    ``store_dtype`` is the uniform storage dtype; ``shard_dtypes`` maps
    shard index -> dtype name for per-shard overrides on top of it
    (in-process executor only — the shard-worker pool is uniform-dtype
    by design, so a partial plan conservatively stays at
    ``store_dtype`` there).  ``metrics`` records the measured accuracy
    of every candidate the search evaluated plus the accepted
    configuration's numbers.
    """

    store_dtype: str = "float64"
    shard_dtypes: Dict[int, str] = field(default_factory=dict)
    gates: PrecisionGates = field(default_factory=PrecisionGates)
    seed: int = 7
    calibration_updates: int = DEFAULT_CALIBRATION_UPDATES
    num_nodes: int = 0
    shard_rows: int = DEFAULT_SHARD_ROWS
    metrics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        resolve_dtype(self.store_dtype)
        for name in self.shard_dtypes.values():
            resolve_dtype(name)

    @property
    def uniform(self) -> bool:
        """Whether the plan is a single store-wide dtype (no overrides)."""
        return not self.shard_dtypes

    def demoted_shards(self) -> List[int]:
        """Shard indices the plan stores below float64."""
        return sorted(
            index
            for index, name in self.shard_dtypes.items()
            if resolve_dtype(name).itemsize < 8
        )

    def apply_to(self, store) -> int:
        """Apply the per-shard overrides to an in-process score store.

        The uniform ``store_dtype`` must already have been chosen at
        store construction; this only retypes the override shards.
        Returns the number of shards whose dtype changed.
        """
        changed = 0
        for index, name in sorted(self.shard_dtypes.items()):
            if store.set_shard_dtype(index, name):
                changed += 1
        return changed

    # ---------------------------------------------------------- #
    # Serialization
    # ---------------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "store_dtype": self.store_dtype,
            "shard_dtypes": {
                str(index): name
                for index, name in sorted(self.shard_dtypes.items())
            },
            "gates": self.gates.to_dict(),
            "seed": self.seed,
            "calibration_updates": self.calibration_updates,
            "num_nodes": self.num_nodes,
            "shard_rows": self.shard_rows,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PrecisionPlan":
        return cls(
            store_dtype=str(payload.get("store_dtype", "float64")),
            shard_dtypes={
                int(index): str(name)
                for index, name in payload.get("shard_dtypes", {}).items()
            },
            gates=PrecisionGates.from_dict(
                payload.get("gates", PrecisionGates().to_dict())
            ),
            seed=int(payload.get("seed", 7)),
            calibration_updates=int(
                payload.get("calibration_updates", DEFAULT_CALIBRATION_UPDATES)
            ),
            num_nodes=int(payload.get("num_nodes", 0)),
            shard_rows=int(payload.get("shard_rows", DEFAULT_SHARD_ROWS)),
            metrics=dict(payload.get("metrics", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PrecisionPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "PrecisionPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def calibration_updates(
    graph: DynamicDiGraph, count: int, seed: int
) -> List[EdgeUpdate]:
    """A seeded stream of valid edge insertions for calibration replay.

    Deterministic for a (graph, count, seed) triple: candidate pairs are
    drawn from one :func:`numpy.random.default_rng` stream, skipping
    self-loops, existing edges, and earlier picks.  Raises
    :class:`~repro.exceptions.ConfigError` if the graph is too small or
    too dense to host ``count`` new edges.
    """
    n = graph.num_nodes
    if n < 2:
        raise ConfigError("calibration needs a graph with >= 2 nodes")
    existing = {(int(a), int(b)) for a, b in graph.edges()}
    capacity = n * (n - 1) - len(existing)
    if capacity < count:
        raise ConfigError(
            f"graph has room for only {capacity} new edges, "
            f"calibration wants {count}"
        )
    rng = np.random.default_rng(seed)
    updates: List[EdgeUpdate] = []
    while len(updates) < count:
        source = int(rng.integers(n))
        target = int(rng.integers(n))
        if source == target or (source, target) in existing:
            continue
        existing.add((source, target))
        updates.append(EdgeUpdate.insert(source, target))
    return updates


class PrecisionAutotuner:
    """Accuracy-gated search over score-store precision configurations.

    Parameters
    ----------
    graph:
        The initial graph (copied by every replay engine; never
        mutated).
    config:
        SimRank damping/iterations shared by every leg.
    initial_scores:
        Optional precomputed ``S`` for ``graph``; computed once with the
        batch algorithm when omitted (and exposed as
        :attr:`initial_scores` so callers can reuse it).
    shard_rows:
        Row-block size of the replay stores — per-shard decisions are
        made at this granularity, so it should match the store the plan
        will be applied to.
    gates:
        Accuracy floors (:class:`PrecisionGates`; defaults match the
        repo's CI gates: NDCG@100 >= 0.99, top-100 overlap >= 0.98).
    seed:
        Seeds the calibration stream; recorded in the plan so the
        search is reproducible.
    num_updates:
        Calibration stream length.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: SimRankConfig = None,
        initial_scores: Optional[np.ndarray] = None,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        gates: Optional[PrecisionGates] = None,
        seed: int = 7,
        num_updates: int = DEFAULT_CALIBRATION_UPDATES,
    ) -> None:
        self._graph = graph.copy()
        self._config = default_config(config)
        self._shard_rows = int(shard_rows)
        self.gates = gates if gates is not None else PrecisionGates()
        self.seed = int(seed)
        self.num_updates = int(num_updates)
        if initial_scores is None:
            store = TransitionStore.from_graph(self._graph)
            initial_scores = matrix_simrank(store.csr_matrix(), self._config)
        self._initial_scores = np.asarray(initial_scores, dtype=np.float64)
        self._updates = calibration_updates(
            self._graph, self.num_updates, self.seed
        )
        self._reference: Optional[np.ndarray] = None

    @property
    def initial_scores(self) -> np.ndarray:
        """The (possibly just computed) initial score matrix."""
        return self._initial_scores

    @property
    def num_shards(self) -> int:
        n = self._graph.num_nodes
        return (n + self._shard_rows - 1) // self._shard_rows

    # ---------------------------------------------------------- #
    # Replay legs
    # ---------------------------------------------------------- #

    def _replay(self, store_dtype, shard_dtypes: Dict[int, str]) -> np.ndarray:
        """Final scores after the calibration stream at one configuration."""
        engine = DynamicSimRank(
            self._graph,
            self._config,
            initial_scores=self._initial_scores,
            shard_rows=self._shard_rows,
            score_dtype=dtype_name(resolve_dtype(store_dtype)),
        )
        for index, name in sorted(shard_dtypes.items()):
            engine.score_store.set_shard_dtype(index, name)
        for update in self._updates:
            engine.apply(update)
        return engine.similarities()

    def _reference_scores(self) -> np.ndarray:
        if self._reference is None:
            self._reference = np.asarray(
                self._replay("float64", {}), dtype=np.float64
            )
        return self._reference

    def _measure(self, approximate: np.ndarray) -> dict:
        reference = self._reference_scores()
        ndcg = float(ndcg_at_k(approximate, reference, k=self.gates.ndcg_k))
        overlap = float(
            top_k_overlap(approximate, reference, k=self.gates.topk_k)
        )
        return {
            "ndcg": ndcg,
            "topk_overlap": overlap,
            "passed": self.gates.passes(ndcg, overlap),
        }

    # ---------------------------------------------------------- #
    # Search
    # ---------------------------------------------------------- #

    def run(self) -> PrecisionPlan:
        """Search for the largest demotion the gates accept.

        Fully deterministic: the calibration stream is seeded, replay
        arithmetic is deterministic at every dtype, and the bisection
        visits subsets in a fixed order — the same inputs always yield
        the same plan.
        """
        self._reference_scores()
        attempts: List[dict] = []

        # Leg 1: whole-store float32 (the common acceptance).
        uniform = self._measure(self._replay("float32", {}))
        attempts.append({"candidate": "store:float32", **uniform})
        if uniform["passed"]:
            return self._plan("float32", {}, uniform, attempts)

        # Leg 2: PROSE-style bisection over shard subsets — keep every
        # subset that passes on top of the accepted set, split every
        # subset that fails.
        accepted: Dict[int, str] = {}
        accepted_metrics: Optional[dict] = None
        stack: List[List[int]] = [list(range(self.num_shards))]
        while stack:
            group = stack.pop()
            trial = dict(accepted)
            trial.update({index: "float32" for index in group})
            measured = self._measure(self._replay("float64", trial))
            attempts.append(
                {"candidate": f"shards:{group}", **measured}
            )
            if measured["passed"]:
                accepted = trial
                accepted_metrics = measured
            elif len(group) > 1:
                middle = len(group) // 2
                stack.append(group[middle:])
                stack.append(group[:middle])
        return self._plan("float64", accepted, accepted_metrics, attempts)

    def _plan(
        self,
        store_dtype: str,
        shard_dtypes: Dict[int, str],
        accepted: Optional[dict],
        attempts: List[dict],
    ) -> PrecisionPlan:
        metrics = {
            "reference_dtype": "float64",
            "attempts": attempts,
            "accepted": (
                {key: accepted[key] for key in ("ndcg", "topk_overlap")}
                if accepted is not None
                else None
            ),
        }
        return PrecisionPlan(
            store_dtype=store_dtype,
            shard_dtypes=dict(shard_dtypes),
            gates=self.gates,
            seed=self.seed,
            calibration_updates=self.num_updates,
            num_nodes=self._graph.num_nodes,
            shard_rows=self._shard_rows,
            metrics=metrics,
        )
