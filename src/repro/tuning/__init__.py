"""Accuracy-gated configuration search (the precision autotuner).

The package currently hosts one tuner:
:class:`~repro.tuning.precision.PrecisionAutotuner`, a PROSE-style
greedy/bisection search that demotes score-store shards (or the whole
store) to float32 and accepts a demotion only if ranking accuracy
against a float64 reference leg stays above configurable gates.  Its
output is a serializable :class:`~repro.tuning.precision.PrecisionPlan`
consumed by :class:`repro.serving.service.SimRankService`.
"""

from .precision import (
    DEFAULT_CALIBRATION_UPDATES,
    PrecisionAutotuner,
    PrecisionGates,
    PrecisionPlan,
    calibration_updates,
)

__all__ = [
    "PrecisionAutotuner",
    "PrecisionGates",
    "PrecisionPlan",
    "calibration_updates",
    "DEFAULT_CALIBRATION_UPDATES",
]
