"""networkx-friendly convenience wrappers.

Lets users who live in networkx consume this library without touching
the internal graph type: similarity dictionaries keyed by the original
node labels, plus an incremental session wrapper.
"""

from __future__ import annotations

from typing import Dict, Hashable

from .config import SimRankConfig
from .graph.digraph import DynamicDiGraph
from .graph.updates import EdgeUpdate
from .incremental.engine import DynamicSimRank
from .simrank.matrix import matrix_simrank


def simrank_similarity(
    nx_graph,
    config: SimRankConfig = None,
) -> Dict[Hashable, Dict[Hashable, float]]:
    """All-pairs matrix-form SimRank of a networkx DiGraph.

    Mirrors the call shape of :func:`networkx.simrank_similarity` but
    computes the matrix form used throughout this package (see
    :mod:`repro.simrank.base` for the convention difference).
    """
    graph, labels = DynamicDiGraph.from_networkx(nx_graph)
    scores = matrix_simrank(graph, config)
    names = {index: label for label, index in labels.items()}
    return {
        names[a]: {names[b]: float(scores[a, b]) for b in range(len(names))}
        for a in range(len(names))
    }


class NetworkxDynamicSimRank:
    """An incremental SimRank session addressed by networkx node labels.

    Wraps :class:`~repro.incremental.engine.DynamicSimRank`, translating
    labels to internal indices.  The node set is fixed at construction
    (the paper's link-evolving setting).
    """

    def __init__(self, nx_graph, config: SimRankConfig = None,
                 algorithm: str = "inc-sr") -> None:
        graph, labels = DynamicDiGraph.from_networkx(nx_graph)
        self._labels: Dict[Hashable, int] = labels
        self._engine = DynamicSimRank(graph, config, algorithm=algorithm)

    def _index(self, label: Hashable) -> int:
        from .exceptions import NodeNotFoundError

        try:
            return self._labels[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Insert an edge and update similarities incrementally."""
        self._engine.apply(
            EdgeUpdate.insert(self._index(source), self._index(target))
        )

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Delete an edge and update similarities incrementally."""
        self._engine.apply(
            EdgeUpdate.delete(self._index(source), self._index(target))
        )

    def similarity(self, node_a: Hashable, node_b: Hashable) -> float:
        """Current SimRank score of a labeled pair."""
        return self._engine.similarity(self._index(node_a), self._index(node_b))

    def top_k(self, k: int) -> list:
        """Top-k most similar labeled pairs."""
        names = {index: label for label, index in self._labels.items()}
        return [
            (names[a], names[b], score) for a, b, score in self._engine.top_k(k)
        ]

    @property
    def engine(self) -> DynamicSimRank:
        """The underlying index-based engine (escape hatch)."""
        return self._engine
