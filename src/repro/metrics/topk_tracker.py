"""Incrementally maintained top-k similar pair set.

Applications like recommenders only watch the top of the ranking.  This
tracker keeps the current top-k pair list synchronized with a
:class:`~repro.incremental.engine.DynamicSimRank` engine and reports
*churn* — which pairs entered or left the top-k after each update batch.
Because the engine's ΔS has small support (Theorem 4), most updates
leave the top-k untouched; the tracker makes that observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..exceptions import DimensionError
from .topk import ScoredPair, top_k_pairs

Pair = Tuple[int, int]


@dataclass
class TopKChurn:
    """Difference between two consecutive top-k snapshots."""

    entered: List[ScoredPair]
    left: List[Pair]

    @property
    def changed(self) -> bool:
        """Whether the top-k membership moved at all."""
        return bool(self.entered or self.left)


class TopKTracker:
    """Watches an engine's similarity matrix and tracks the top-k pairs.

    Parameters
    ----------
    engine:
        A :class:`~repro.incremental.engine.DynamicSimRank` (or anything
        exposing ``similarities()``).
    k:
        Size of the maintained ranking.
    """

    def __init__(self, engine, k: int) -> None:
        if k < 1:
            raise DimensionError(f"k must be >= 1, got {k}")
        self._engine = engine
        self._k = int(k)
        self._current: List[ScoredPair] = self._rank()

    def _rank(self) -> List[ScoredPair]:
        """Current top-k via the engine's shard-heap path when available.

        :meth:`DynamicSimRank.top_k` serves from the incrementally
        maintained :class:`~repro.executor.topk_index.ShardTopK` (no
        dense scan) and is ranking-identical to the brute-force pass;
        plain score sources without ``top_k`` fall back to it.
        """
        ranker = getattr(self._engine, "top_k", None)
        if callable(ranker):
            return ranker(self._k)
        return top_k_pairs(self._engine.similarities(), self._k)

    @property
    def k(self) -> int:
        """The ranking size."""
        return self._k

    def current(self) -> List[ScoredPair]:
        """The top-k list as of the last :meth:`refresh`."""
        return list(self._current)

    def current_pairs(self) -> Set[Pair]:
        """Membership set of the current ranking."""
        return {(a, b) for a, b, _ in self._current}

    def refresh(self) -> TopKChurn:
        """Re-rank from the engine; return the churn.

        Call after applying updates to the engine.  With a
        :class:`~repro.incremental.engine.DynamicSimRank` engine the
        re-rank rides the shard-local incremental index — each update
        plan's affected supports patched the per-shard heaps already, so
        the common case is a pure k-way merge with no score scan at all.
        """
        previous_pairs = self.current_pairs()
        self._current = self._rank()
        new_pairs = self.current_pairs()
        entered = [
            (a, b, score)
            for a, b, score in self._current
            if (a, b) not in previous_pairs
        ]
        left = sorted(previous_pairs - new_pairs)
        return TopKChurn(entered=entered, left=left)
