"""Element-wise error norms between similarity matrices."""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError


def _pair(a_matrix: np.ndarray, b_matrix: np.ndarray):
    a_dense = np.asarray(a_matrix, dtype=np.float64)
    b_dense = np.asarray(b_matrix, dtype=np.float64)
    if a_dense.shape != b_dense.shape:
        raise DimensionError(
            f"shape mismatch {a_dense.shape} vs {b_dense.shape}"
        )
    return a_dense, b_dense


def max_abs_error(a_matrix: np.ndarray, b_matrix: np.ndarray) -> float:
    """``max |A − B|`` — the paper's accuracy guarantee is stated in this norm."""
    a_dense, b_dense = _pair(a_matrix, b_matrix)
    if a_dense.size == 0:
        return 0.0
    return float(np.max(np.abs(a_dense - b_dense)))


def mean_abs_error(a_matrix: np.ndarray, b_matrix: np.ndarray) -> float:
    """Mean absolute element-wise difference."""
    a_dense, b_dense = _pair(a_matrix, b_matrix)
    if a_dense.size == 0:
        return 0.0
    return float(np.mean(np.abs(a_dense - b_dense)))


def frobenius_error(a_matrix: np.ndarray, b_matrix: np.ndarray) -> float:
    """Frobenius norm ``||A − B||_F``."""
    a_dense, b_dense = _pair(a_matrix, b_matrix)
    return float(np.linalg.norm(a_dense - b_dense))
