"""NDCG over node-pair rankings (the paper's Fig. 4 exactness metric).

The paper assesses the top-30 most similar node-pairs produced by each
algorithm against a high-iteration Batch baseline, using NDCG₃₀ with the
baseline scores as graded relevance.  Formally, for a ranking
``p_1, ..., p_k`` of node pairs and relevance ``rel(p)``:

    DCG@k  = Σ_{i=1..k} rel(p_i) / log₂(i + 1)
    NDCG@k = DCG@k / IDCG@k

where IDCG@k is the DCG of the ideal (relevance-sorted) ranking.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import DimensionError
from .topk import top_k_pairs


def dcg(relevances: Sequence[float]) -> float:
    """Discounted cumulative gain of an ordered relevance list."""
    values = np.asarray(list(relevances), dtype=np.float64)
    if values.size == 0:
        return 0.0
    discounts = np.log2(np.arange(2, values.size + 2))
    return float(np.sum(values / discounts))


def ndcg_of_pairs(
    ranked_pairs: List[Tuple[int, int]],
    baseline: np.ndarray,
    k: int,
) -> float:
    """NDCG@k of a pair ranking, graded by ``baseline`` scores.

    ``ranked_pairs`` is the algorithm's top list (best first); the ideal
    ranking is derived from ``baseline`` itself.  Returns 1.0 when the
    baseline has no positive mass (nothing to rank).
    """
    if k < 1:
        raise DimensionError(f"k must be >= 1, got {k}")
    baseline_matrix = np.asarray(baseline)
    gains = [
        float(baseline_matrix[a, b]) for a, b in ranked_pairs[:k]
    ]
    ideal_pairs = top_k_pairs(baseline_matrix, k)
    ideal_gains = [score for (_, _, score) in ideal_pairs]
    ideal = dcg(ideal_gains)
    if ideal <= 0.0:
        return 1.0
    return dcg(gains) / ideal


def ndcg_at_k(
    approximate: np.ndarray, baseline: np.ndarray, k: int = 30
) -> float:
    """NDCG@k of ``approximate``'s top-k pairs against ``baseline`` truth.

    This is the paper's evaluation protocol: rank pairs by the candidate
    algorithm's scores, grade them by the (K=35) Batch baseline scores.
    """
    approx_matrix = np.asarray(approximate)
    baseline_matrix = np.asarray(baseline)
    if approx_matrix.shape != baseline_matrix.shape:
        raise DimensionError(
            f"shape mismatch {approx_matrix.shape} vs {baseline_matrix.shape}"
        )
    ranked = [(a, b) for (a, b, _) in top_k_pairs(approx_matrix, k)]
    return ndcg_of_pairs(ranked, baseline_matrix, k)
