"""Intermediate-memory accounting for the Fig. 3 experiment.

The paper's "memory space" excludes the final ``n²`` score output and
counts only intermediate structures.  Two complementary tools:

* analytic estimators of each algorithm's working set, derived from the
  data structures this implementation actually allocates; and
* :func:`measure_peak_bytes`, a :mod:`tracemalloc`-based harness that
  measures the real allocation peak of an arbitrary callable.
"""

from __future__ import annotations

import tracemalloc
from typing import Callable, Tuple, TypeVar

from ..dtypes import resolve_dtype
from ..linalg.qstore import DEFAULT_SLACK

T = TypeVar("T")

_FLOAT_BYTES = 8
_INDEX_BYTES = 8


def transition_store_bytes(num_nodes: int, num_edges: int) -> int:
    """Working set of the dual CSR/CSC :class:`TransitionStore`.

    Both layouts hold the ``nnz`` entries plus
    :data:`~repro.linalg.qstore.DEFAULT_SLACK` spare slots per segment
    and three per-segment metadata vectors (start/length/capacity) —
    the price of O(row) update surgery instead of O(nnz) rebuilds.  The
    slabs are *structure-only* (indices, no values): every value of row
    ``r`` is supplied by the single factored ``row_weight`` vector, so
    the per-entry cost is one index, not index + float.
    """
    entries = (num_edges + DEFAULT_SLACK * num_nodes) * _INDEX_BYTES
    metadata = 3 * num_nodes * _INDEX_BYTES
    row_weights = num_nodes * _FLOAT_BYTES
    return 2 * (entries + metadata) + row_weights


def inc_usr_intermediate_bytes(num_nodes: int, num_edges: int, iterations: int) -> int:
    """Working set of Algorithm 1 (Inc-uSR), excluding ``S`` itself.

    Counts the dual-layout ``Q`` store, the six pooled workspace
    vectors (u, v, w, γ, scratch, xcol — see
    :class:`~repro.incremental.workspace.UpdateWorkspace`), the factor
    stack of ``K + 1`` vector pairs, and — dominating everything — the
    dense ``n x n`` accumulator ``M_k`` plus the transient ``n x n``
    outer-product block this implementation allocates each iteration
    (line 17 of Algorithm 1).
    """
    q_bytes = transition_store_bytes(num_nodes, num_edges)
    scratch = 6 * num_nodes * _FLOAT_BYTES
    factor_stack = 2 * (iterations + 1) * num_nodes * _FLOAT_BYTES
    dense_accumulator = 2 * num_nodes * num_nodes * _FLOAT_BYTES
    return q_bytes + scratch + factor_stack + dense_accumulator


def inc_sr_intermediate_bytes(
    num_nodes: int,
    num_edges: int,
    iterations: int,
    average_area: float,
    average_row_support: float,
) -> int:
    """Working set of Algorithm 2 (Inc-SR).

    The factor stack shrinks from full ``n``-vectors to the affected
    supports, plus one transient ``|A_k|x|B_k|`` outer-product block
    (``average_area`` entries); the ΔS entries themselves are written
    into the score matrix, which — like the paper's accounting — is
    excluded as output space.
    """
    q_bytes = transition_store_bytes(num_nodes, num_edges)
    scratch = 6 * num_nodes * _FLOAT_BYTES
    support = int(average_row_support)
    factor_stack = 2 * (iterations + 1) * support * (_FLOAT_BYTES + _INDEX_BYTES)
    transient_block = int(average_area) * _FLOAT_BYTES
    return q_bytes + scratch + factor_stack + transient_block


def inc_svd_intermediate_bytes(num_nodes: int, rank: int) -> int:
    """Working set of Inc-SVD at target rank ``r``.

    Counts ``U``/``V`` (2·n·r), ``Σ`` (r), the Kronecker-lifted scoring
    system (r⁴ matrix entries of the ``r²×r²`` solve) and the ``n·r``
    densification buffer of ``U·M``.
    """
    factors = (2 * num_nodes * rank + rank) * _FLOAT_BYTES
    kron_system = (rank**4) * _FLOAT_BYTES
    densify = num_nodes * rank * _FLOAT_BYTES
    return factors + kron_system + densify


def score_store_bytes(num_nodes: int, dtype=None) -> int:
    """Allocated bytes of a freshly sharded score store.

    Independent of the shard size: shards are allocated tight at build
    time (each holds exactly its live ``rows × n`` float block), so the
    total is the plain ``n²`` score footprint at the store's storage
    ``dtype`` (float64 default; a float32 store halves it).  Growth
    slack appears only after node arrivals, and copy-on-write
    divergence is costed separately by :func:`snapshot_overhead_bytes`.
    """
    return num_nodes * num_nodes * resolve_dtype(dtype).itemsize


def snapshot_overhead_bytes(
    divergent_shards: int, shard_rows: int, num_nodes: int, dtype=None
) -> int:
    """Extra resident bytes one pinned snapshot costs the writer.

    Copy-on-write means a snapshot is free until the writer touches a
    shard; each divergent shard then keeps one retained copy of its
    ``shard_rows × n`` block alive for the snapshot — at the shard's
    storage ``dtype`` (float64 default), since copy-on-write clones
    preserve precision.  The worst case (writer touched everything) is
    one full ``n²`` retained version; the typical incremental case is
    the few shards overlapping the updates' affected rows.
    """
    rows = min(divergent_shards * shard_rows, num_nodes)
    return rows * num_nodes * resolve_dtype(dtype).itemsize


def batch_intermediate_bytes(num_nodes: int, num_edges: int) -> int:
    """Working set of the matrix-form Batch iteration (one dense temp)."""
    q_bytes = num_edges * (_FLOAT_BYTES + _INDEX_BYTES) + (num_nodes + 1) * _INDEX_BYTES
    dense_temp = num_nodes * num_nodes * _FLOAT_BYTES
    return q_bytes + dense_temp


def measure_peak_bytes(function: Callable[[], T]) -> Tuple[T, int]:
    """Run ``function`` under tracemalloc; return ``(result, peak_bytes)``.

    The peak is relative to the start of the call, so pre-existing
    allocations (e.g. the input ``S``) are not charged to the algorithm.
    """
    tracemalloc.start()
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        result = function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, max(0, peak - baseline)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (``1.5 MB`` style, powers of 1024)."""
    size = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if size < 1024.0 or unit == "TB":
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} TB"
