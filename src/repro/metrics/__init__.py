"""**Paper-evaluation** metrics — accuracy and memory of the algorithm.

This package answers "is the reproduction faithful?": the quantities
the source paper's experiments report, computed offline over score
matrices and rankings.

* :mod:`repro.metrics.topk` — top-k node-pair extraction.
* :mod:`repro.metrics.topk_tracker` — incrementally refreshed top-k
  churn tracking (rides the engine's shard-local heap index).
* :mod:`repro.metrics.ndcg` — NDCG@k over node-pair rankings (Fig. 4).
* :mod:`repro.metrics.error` — element-wise error norms between score
  matrices.
* :mod:`repro.metrics.memory` — intermediate-memory accounting (Fig. 3).

It is deliberately distinct from :mod:`repro.telemetry`, which answers
"is the *service* healthy right now?" — runtime counters, gauges,
latency histograms, request traces, and the crash flight recorder.
Rule of thumb: a number a figure in the paper could plot belongs here;
a number an operator would watch on a dashboard belongs in
:mod:`repro.telemetry`.  Serving-side gauges (writer queue depth,
backpressure counters, top-k ``heap_hit_rate``) are reported by
:meth:`repro.serving.service.SimRankService.metrics_report`, whose
``telemetry`` section is rendered by the telemetry registry.
"""

from .error import frobenius_error, max_abs_error, mean_abs_error
from .memory import score_store_bytes, snapshot_overhead_bytes
from .ndcg import ndcg_at_k, ndcg_of_pairs
from .topk import top_k_overlap, top_k_pairs
from .topk_tracker import TopKChurn, TopKTracker

__all__ = [
    "top_k_pairs",
    "top_k_overlap",
    "TopKTracker",
    "TopKChurn",
    "score_store_bytes",
    "snapshot_overhead_bytes",
    "ndcg_at_k",
    "ndcg_of_pairs",
    "max_abs_error",
    "mean_abs_error",
    "frobenius_error",
]
