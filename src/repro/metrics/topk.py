"""Top-k node-pair extraction from a similarity matrix.

SimRank matrices are symmetric, so pairs are canonicalized to
``a < b`` (the diagonal is excluded unless asked for).  Ties are broken
deterministically by pair order so the rankings — and hence the NDCG
numbers built on them — are reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import DimensionError

ScoredPair = Tuple[int, int, float]


def top_k_pairs(
    s_matrix: np.ndarray, k: int, include_self: bool = False
) -> List[ScoredPair]:
    """The ``k`` highest-scoring node pairs ``(a, b, score)`` with ``a < b``.

    Parameters
    ----------
    s_matrix:
        Symmetric similarity matrix.
    k:
        Number of pairs to return (fewer if the graph is tiny).
    include_self:
        When True, diagonal pairs ``(a, a)`` participate as well.
    """
    scores = np.asarray(s_matrix)
    if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
        raise DimensionError(f"S must be square, got {scores.shape}")
    if k < 0:
        raise DimensionError(f"k must be >= 0, got {k}")
    n = scores.shape[0]
    offset = 0 if include_self else 1
    rows, cols = np.triu_indices(n, k=offset)
    values = scores[rows, cols]
    if values.size == 0 or k == 0:
        return []
    k_eff = min(k, values.size)
    # argsort on (-score, row, col) gives a deterministic total order.
    order = np.lexsort((cols, rows, -values))[:k_eff]
    return [
        (int(rows[index]), int(cols[index]), float(values[index]))
        for index in order
    ]


def top_k_overlap(
    approximate: np.ndarray,
    baseline: np.ndarray,
    k: int,
    include_self: bool = False,
) -> float:
    """Fraction of the baseline's top-``k`` pairs the approximation keeps.

    Set overlap over canonical ``(a, b)`` pair identities (scores are
    ignored — only membership matters), so a reduced-precision matrix
    that reorders pairs *within* the top-k still scores 1.0.  Returns
    1.0 when the baseline has no ranked pairs at all.
    """
    baseline_pairs = {(a, b) for a, b, _ in top_k_pairs(baseline, k, include_self)}
    if not baseline_pairs:
        return 1.0
    approx_pairs = {
        (a, b) for a, b, _ in top_k_pairs(approximate, k, include_self)
    }
    return len(baseline_pairs & approx_pairs) / len(baseline_pairs)


def pair_rank_scores(
    s_matrix: np.ndarray, pairs: List[Tuple[int, int]]
) -> np.ndarray:
    """Scores of specific (a, b) pairs under a (possibly different) matrix."""
    scores = np.asarray(s_matrix)
    return np.asarray([scores[a, b] for a, b in pairs], dtype=np.float64)
