"""Iterative Sylvester-equation solvers.

Two flavors:

* :func:`sylvester_series` — the generic truncated series
  ``X_K = Σ_{k=0..K} A^k · C · B^k`` for ``X = A·X·B + C``; this is what a
  *batch* recomputation of SimRank does, using matrix-matrix products.
* :func:`rank_one_sylvester_series` — the paper's specialization
  (Sec. V-A): when ``C = c·u·wᵀ`` is rank one, each series term is an
  outer product of two iterated vectors, so the whole solve uses only
  matrix-vector and vector-vector products.  This function implements the
  iteration "ξ_{k+1} = c·Ã·ξ_k, η_{k+1} = Ã·η_k, M_{k+1} = ξ·ηᵀ + M_k"
  in a form that also exposes the low-rank factor stack (one vector pair
  per iteration) so callers can avoid materializing ``M`` at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from ..exceptions import DimensionError

MatVec = Callable[[np.ndarray], np.ndarray]


def sylvester_series(
    a_matrix,
    b_matrix,
    c_matrix: np.ndarray,
    iterations: int,
) -> np.ndarray:
    """Truncated series solution of ``X = A·X·B + C``.

    Iterates ``X_{k+1} = A·X_k·B + C`` starting from ``X_0 = C``, which
    equals the partial sum ``Σ_{k=0..K} A^k C B^k`` after ``K`` steps.
    ``A``/``B`` may be sparse; ``C`` and the result are dense.
    """
    if iterations < 0:
        raise DimensionError(f"iterations must be >= 0, got {iterations}")
    a_sparse = sp.csr_matrix(a_matrix)
    b_sparse = sp.csr_matrix(b_matrix)
    current = np.array(c_matrix, dtype=np.float64, copy=True)
    if a_sparse.shape[0] != current.shape[0] or b_sparse.shape[1] != current.shape[1]:
        raise DimensionError(
            f"incompatible shapes A{a_sparse.shape} C{current.shape} "
            f"B{b_sparse.shape}"
        )
    constant = np.asarray(c_matrix, dtype=np.float64)
    for _ in range(iterations):
        current = a_sparse @ current @ b_sparse + constant
    return current


@dataclass
class RankOneSeriesResult:
    """Outcome of :func:`rank_one_sylvester_series`.

    Attributes
    ----------
    matrix:
        The accumulated ``M_K`` (dense ``n x n``), or ``None`` when the
        caller asked for factors only.
    left_factors, right_factors:
        Lists of the per-iteration vectors ``ξ_k`` and ``η_k`` such that
        ``M_K = Σ_k ξ_k · η_kᵀ``; length ``K + 1`` including the k=0 term.
    """

    matrix: Optional[np.ndarray]
    left_factors: List[np.ndarray]
    right_factors: List[np.ndarray]

    def reconstruct(self) -> np.ndarray:
        """Materialize ``M_K`` from the factor stack."""
        n = self.left_factors[0].shape[0]
        result = np.zeros((n, n))
        for left, right in zip(self.left_factors, self.right_factors):
            result += np.outer(left, right)
        return result


def rank_one_sylvester_series(
    matvec: MatVec,
    u_vector: np.ndarray,
    w_vector: np.ndarray,
    damping: float,
    iterations: int,
    materialize: bool = True,
) -> RankOneSeriesResult:
    """Solve ``M = c·Ã·M·Ãᵀ + c·u·wᵀ`` by the paper's vector iteration.

    Parameters
    ----------
    matvec:
        A function computing ``Ã @ x`` for a dense vector ``x``.  For the
        incremental algorithms this applies the *updated* transition
        matrix ``Q̃ = Q + u·vᵀ`` without materializing it
        (``Q̃·x = Q·x + (vᵀx)·u``).
    u_vector, w_vector:
        The rank-one right-hand side factors (dense 1-D arrays).
    damping:
        The scalar ``c`` (the SimRank damping factor ``C``).
    iterations:
        Number of series terms beyond the zeroth, i.e. the paper's ``K``.
    materialize:
        When True, accumulate the dense ``M_K``; when False, only the
        factor stack is kept (memory ``O(K·n)`` instead of ``O(n²)``).

    Notes
    -----
    The k-th stored pair is ``ξ_k = c^{k+1}·Ã^k·u`` and ``η_k = Ã^k·w``,
    so ``M_K = Σ_{k=0..K} ξ_k·η_kᵀ = Σ c^{k+1} Ã^k u wᵀ (Ãᵀ)^k`` exactly
    as in Eq. (15) of the paper.
    """
    u_dense = np.asarray(u_vector, dtype=np.float64).ravel()
    w_dense = np.asarray(w_vector, dtype=np.float64).ravel()
    if u_dense.shape != w_dense.shape:
        raise DimensionError(
            f"u and w must share a shape, got {u_dense.shape} vs {w_dense.shape}"
        )
    if iterations < 0:
        raise DimensionError(f"iterations must be >= 0, got {iterations}")

    n = u_dense.shape[0]
    xi = damping * u_dense
    eta = w_dense.copy()
    left_factors = [xi.copy()]
    right_factors = [eta.copy()]
    accumulated = np.outer(xi, eta) if materialize else None

    for _ in range(iterations):
        xi = damping * matvec(xi)
        eta = matvec(eta)
        left_factors.append(xi.copy())
        right_factors.append(eta.copy())
        if accumulated is not None:
            accumulated += np.outer(xi, eta)

    return RankOneSeriesResult(
        matrix=accumulated,
        left_factors=left_factors,
        right_factors=right_factors,
    )


def updated_matvec(
    q_matrix: sp.csr_matrix, u_vector: np.ndarray, v_vector: np.ndarray
) -> MatVec:
    """Matvec for ``Q̃ = Q + u·vᵀ`` without materializing ``Q̃``.

    This is the trick noted after Theorem 3: ``Q̃·x = Q·x + (vᵀ·x)·u``,
    saving the memory for a second sparse matrix.
    """
    u_dense = np.asarray(u_vector, dtype=np.float64).ravel()
    v_dense = np.asarray(v_vector, dtype=np.float64).ravel()

    def apply(x: np.ndarray) -> np.ndarray:
        return q_matrix @ x + (v_dense @ x) * u_dense

    return apply
