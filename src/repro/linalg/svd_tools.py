"""SVD utilities for the Inc-SVD baseline and the rank study (Fig. 2b).

The paper's Section IV analysis hinges on the distinction between a
*lossless* SVD (target rank = matrix rank, zero reconstruction error) and
a *low-rank* SVD (target rank below the matrix rank).  These helpers
compute truncated SVDs of sparse matrices, numerical ranks, and the
fraction ``r/n`` reported in Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np
import scipy.sparse as sp

from ..exceptions import DimensionError

#: Singular values below this (relative to the largest) count as zero.
RANK_TOLERANCE = 1e-10


@dataclass(frozen=True)
class SVDFactors:
    """A (possibly truncated) SVD ``X ≈ U · diag(sigma) · Vᵀ``."""

    u: np.ndarray
    sigma: np.ndarray
    v: np.ndarray  # columns are right singular vectors (n x r)

    @property
    def rank(self) -> int:
        """Number of retained singular triplets."""
        return int(self.sigma.shape[0])

    def reconstruct(self) -> np.ndarray:
        """Materialize ``U · diag(sigma) · Vᵀ`` densely."""
        return (self.u * self.sigma) @ self.v.T

    def truncated(self, rank: int) -> "SVDFactors":
        """Keep only the top ``rank`` singular triplets."""
        if rank < 1:
            raise DimensionError(f"rank must be >= 1, got {rank}")
        r = min(rank, self.rank)
        return SVDFactors(
            u=self.u[:, :r].copy(),
            sigma=self.sigma[:r].copy(),
            v=self.v[:, :r].copy(),
        )


def truncated_svd(matrix, rank: int) -> SVDFactors:
    """Top-``rank`` SVD of a dense or sparse matrix.

    Uses a dense LAPACK SVD (graphs at reproduction scale are small
    enough); singular triplets are returned in non-increasing order and
    trailing numerically-zero triplets inside the requested rank are kept,
    matching the paper's "target rank given by the user" semantics.
    """
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
    if dense.ndim != 2:
        raise DimensionError(f"expected a matrix, got ndim={dense.ndim}")
    if rank < 1:
        raise DimensionError(f"rank must be >= 1, got {rank}")
    u, sigma, vt = np.linalg.svd(dense, full_matrices=False)
    r = min(rank, sigma.shape[0])
    return SVDFactors(u=u[:, :r], sigma=sigma[:r], v=vt[:r].T)


def numerical_rank(matrix, tolerance: float = RANK_TOLERANCE) -> int:
    """Numerical rank: singular values above ``tolerance * sigma_max``."""
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
    sigma = np.linalg.svd(dense, compute_uv=False)
    if sigma.size == 0 or sigma[0] == 0.0:
        return 0
    return int(np.sum(sigma > tolerance * sigma[0]))


def lossless_rank(matrix, tolerance: float = RANK_TOLERANCE) -> int:
    """Target rank needed for a *lossless* SVD (alias of numerical rank)."""
    return numerical_rank(matrix, tolerance=tolerance)


def lossless_rank_fraction(matrix, tolerance: float = RANK_TOLERANCE) -> float:
    """``rank(X)/n`` as a fraction in [0, 1] — the quantity plotted in Fig. 2b."""
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
    n = min(dense.shape)
    if n == 0:
        return 0.0
    return numerical_rank(dense, tolerance=tolerance) / n


def reconstruction_error(matrix, factors: SVDFactors) -> float:
    """Spectral-norm error ``||X - U·Σ·Vᵀ||₂`` of a truncated SVD."""
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
    residual = dense - factors.reconstruct()
    return float(np.linalg.norm(residual, ord=2))
