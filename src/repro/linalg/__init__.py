"""Linear-algebra machinery shared by the SimRank algorithms.

* :mod:`repro.linalg.kron` — ``vec``/``unvec`` helpers and the exact
  Sylvester solve via Kronecker lifting (the test oracle).
* :mod:`repro.linalg.sylvester` — iterative Sylvester solvers, including
  the rank-one specialization at the heart of the paper (Sec. V-A).
* :mod:`repro.linalg.svd_tools` — truncated/lossless SVD utilities used by
  the Inc-SVD baseline and the Fig. 2b rank study.
* :mod:`repro.linalg.qstore` — :class:`TransitionStore`, the persistent
  dual CSR/CSC ``Q`` store behind the engine's zero-rebuild update path.
"""

from .kron import unvec, vec, solve_sylvester_kron
from .qstore import TransitionStore
from .sylvester import (
    rank_one_sylvester_series,
    sylvester_series,
)
from .svd_tools import lossless_rank, truncated_svd

__all__ = [
    "vec",
    "unvec",
    "solve_sylvester_kron",
    "sylvester_series",
    "rank_one_sylvester_series",
    "truncated_svd",
    "lossless_rank",
    "TransitionStore",
]
