"""Path-counting utilities behind the paper's pruning theory (Sec. V-B).

Lemma 1: ``[A^k]_{i,j}`` counts length-k directed paths from ``i`` to
``j``.  Corollary 1: ``[Q^k·(Qᵀ)^k]_{i,j}`` accumulates the weights of
the *symmetric in-link paths* of length 2k,

    i ← … ← x → … → j        (k backward steps, then k forward steps),

and Eq. (34) re-reads SimRank as the damped weighted sum of those paths:

    [S]_{a,b} = (1−C)·Σ_k C^k·[Q^k·(Qᵀ)^k]_{a,b}.

These helpers make each of those statements executable; the test suite
uses them to validate the series interpretation that justifies the
affected-area pruning (Theorem 4).
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from ..config import SimRankConfig
from ..exceptions import DimensionError
from ..graph.digraph import DynamicDiGraph
from ..graph.transition import adjacency_matrix, backward_transition_matrix
from ..simrank.base import default_config


def count_paths(graph: DynamicDiGraph, source: int, target: int, length: int) -> int:
    """Number of directed paths of exactly ``length`` edges (Lemma 1)."""
    if length < 0:
        raise DimensionError(f"length must be >= 0, got {length}")
    a_matrix = adjacency_matrix(graph)
    power = sp.identity(graph.num_nodes, format="csr")
    for _ in range(length):
        power = power @ a_matrix
    return int(power[source, target])


def count_symmetric_in_link_paths(
    graph: DynamicDiGraph, node_a: int, node_b: int, half_length: int
) -> int:
    """Number of symmetric in-link paths of length ``2·half_length``.

    These are walks ``a ← … ← x → … → b`` with ``half_length`` steps on
    each side (Definition 1); counted via ``[(Aᵀ)^k·A^k]_{a,b}``.
    """
    if half_length < 0:
        raise DimensionError(f"half_length must be >= 0, got {half_length}")
    a_matrix = adjacency_matrix(graph)
    power = sp.identity(graph.num_nodes, format="csr")
    for _ in range(half_length):
        power = power @ a_matrix
    gram = power.T @ power  # (A^k)ᵀ A^k = (Aᵀ)^k ... positions flipped
    return int(gram[node_a, node_b])


def symmetric_path_weight(
    graph: DynamicDiGraph, node_a: int, node_b: int, half_length: int
) -> float:
    """The weighted count ``[Q^k·(Qᵀ)^k]_{a,b}`` (Corollary 1)."""
    q_matrix = backward_transition_matrix(graph)
    power = sp.identity(graph.num_nodes, format="csr")
    for _ in range(half_length):
        power = power @ q_matrix
    gram = power @ power.T
    return float(gram[node_a, node_b])


def simrank_from_paths(
    graph: DynamicDiGraph, config: SimRankConfig = None
) -> np.ndarray:
    """All-pairs SimRank evaluated literally as the path series (Eq. (34)).

    Slow (dense Gram per term); exists so tests can assert it coincides
    with the fixed-point iteration — the identity the pruning theory
    rests on.
    """
    cfg = default_config(config)
    q_matrix = backward_transition_matrix(graph)
    n = graph.num_nodes
    power = np.eye(n)
    scores = np.zeros((n, n))
    weight = 1.0
    for _ in range(cfg.iterations + 1):
        scores += weight * (power @ power.T)
        weight *= cfg.damping
        power = q_matrix @ power
    return (1.0 - cfg.damping) * scores


def zero_weight_pairs_are_unreachable(
    graph: DynamicDiGraph, half_length: int
) -> List[tuple]:
    """Pairs whose symmetric-path weight is zero at ``half_length``.

    The support complement used by Theorem 4: if no symmetric in-link
    path of length 2k exists, the k-th series term contributes nothing.
    Returns pairs ``(a, b)`` with ``a < b`` and zero weight.
    """
    q_matrix = backward_transition_matrix(graph)
    power = sp.identity(graph.num_nodes, format="csr")
    for _ in range(half_length):
        power = power @ q_matrix
    gram = (power @ power.T).toarray()
    zero_pairs = []
    n = graph.num_nodes
    for a in range(n):
        for b in range(a + 1, n):
            if gram[a, b] == 0.0:
                zero_pairs.append((a, b))
    return zero_pairs
