"""Kronecker-product lifting for exact Sylvester solves.

The Sylvester equation ``X = A·X·B + C`` (footnote 14 of the paper) is
linear in ``X``; vectorizing both sides with the column-stacking operator
``vec`` gives ``vec(X) = (Bᵀ ⊗ A)·vec(X) + vec(C)``, i.e. a single sparse
linear system.  For SimRank specifically (``A = C·Q``, ``B = Qᵀ``,
``C = (1-C)·Iₙ``) this yields the *exact* fixed point, which the test
suite uses as ground truth on small graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..exceptions import DimensionError


def vec(matrix: np.ndarray) -> np.ndarray:
    """Column-stacking vectorization: ``vec(X)[i + n*j] = X[i, j]``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise DimensionError(f"vec expects a matrix, got ndim={matrix.ndim}")
    return matrix.reshape(-1, order="F")


def unvec(vector: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`vec` for a ``rows x cols`` matrix."""
    vector = np.asarray(vector)
    if vector.size != rows * cols:
        raise DimensionError(
            f"cannot unvec length-{vector.size} vector into {rows}x{cols}"
        )
    return vector.reshape(rows, cols, order="F")


def solve_sylvester_kron(
    a_matrix, b_matrix, c_matrix: np.ndarray
) -> np.ndarray:
    """Exactly solve ``X = A·X·B + C`` via the Kronecker-lifted linear system.

    ``A`` and ``B`` may be dense or scipy-sparse; the solve is performed
    with a sparse LU factorization of ``I - Bᵀ ⊗ A``.  Complexity is
    ``O(n^6)`` worst case, so this is strictly a small-graph oracle.
    """
    a_sparse = sp.csr_matrix(a_matrix)
    b_sparse = sp.csr_matrix(b_matrix)
    n, n2 = a_sparse.shape
    if n != n2 or b_sparse.shape != (n, n):
        raise DimensionError(
            f"A and B must be square and equal-sized, got {a_sparse.shape} "
            f"and {b_sparse.shape}"
        )
    c_dense = np.asarray(c_matrix, dtype=np.float64)
    if c_dense.shape != (n, n):
        raise DimensionError(
            f"C must have shape ({n}, {n}), got {c_dense.shape}"
        )
    system = sp.identity(n * n, format="csc") - sp.kron(
        b_sparse.T, a_sparse, format="csc"
    )
    solution = spla.spsolve(system, vec(c_dense))
    return unvec(solution, n, n)


def exact_simrank_kron(q_matrix, damping: float) -> np.ndarray:
    """Exact matrix-form SimRank ``S = C·Q·S·Qᵀ + (1-C)·I`` on a small graph.

    This is the fixed point of Eq. (2) of the paper, computed without
    iteration; used as the oracle for convergence tests.
    """
    q_sparse = sp.csr_matrix(q_matrix)
    n = q_sparse.shape[0]
    identity = np.eye(n)
    return solve_sylvester_kron(
        damping * q_sparse, q_sparse.T, (1.0 - damping) * identity
    )
