"""Persistent dual-layout transition-matrix store — the update hot path.

The incremental algorithms read ``Q`` two ways per unit update:

* **by row** (CSR order) for the dense mat-vec ``w = Q·[S]_{:,i}`` of
  Theorem 2 (line 3 of Algorithm 1); and
* **by column** (CSC order) for the pruned affected-area gathers of
  Algorithm 2, which touch exactly the columns in ``supp(ξ_k)``.

The seed implementation kept ``Q`` as a scipy CSR matrix, converting to
CSC *per update* and rebuilding the full CSR arrays with
``np.concatenate`` to splice one row — O(nnz) maintenance for an O(row)
logical change.  :class:`TransitionStore` removes both costs by owning
``Q`` in **both layouts simultaneously** as *structure-only* slab arrays
with per-row slack.

Factored values
---------------
``Q`` is row-normalized (``[Q]_{r,c} = 1/d_r`` for every in-neighbor
``c`` of ``r``), so all nonzeros of a row share one value.  The store
exploits that: the slabs hold **indices only**, and a single per-row
weight vector ``row_weight[r] = 1/d_r`` supplies every value.  A unit
update therefore touches exactly *one* structural entry per layout
(insert or delete the changed edge) plus one scalar weight — the
re-weighting of the target's surviving in-edges, which a value-carrying
mirror would rewrite entry-by-entry, is free.  The in-degree vector is
the CSR ``length`` array itself, cached by construction.

Layout
------
Each direction is a :class:`_SlabLayout`: three per-segment vectors
``start``/``length``/``capacity`` plus a shared ``indices`` buffer.
Segment ``i`` occupies ``indices[start[i] : start[i]+length[i]]``
(sorted) with ``capacity[i] - length[i]`` slack slots behind it.

Slack policy
------------
Segments are laid out with :data:`DEFAULT_SLACK` spare slots each at
build time.  A segment rewrite that fits its capacity is an in-place
write; one that does not relocates the segment to the tail of the
buffer with its capacity doubled (geometric growth), abandoning the old
slots.  Because per-segment capacity only ever doubles, total abandoned
space is bounded by the live capacity, so the buffer holds at most
~3x nnz entries plus the initial slack — no compaction pass is ever
required on the hot path (an explicit :meth:`TransitionStore.compact`
exists for hygiene).  Buffer exhaustion grows the shared array by
doubling, so all surgery is amortized O(row).

Interop
-------
:meth:`TransitionStore.csr_matrix` / :meth:`csc_matrix` materialize
packed scipy views lazily and cache them until the next mutation, so
code that wants a real scipy object between updates (tests,
persistence, the Batch comparator) pays the packing cost once, never
per update.  :meth:`matvec` (also exposed as ``store @ x``) and
:meth:`gather_columns` serve the two hot read patterns directly from
the slabs without materializing any scipy object at all, bit-identical
to the scipy results (products are formed per entry before summation,
in the same order).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import DimensionError, GraphError

#: Spare slots appended to every segment at build time.  Unit updates
#: change a row's nnz by one, so a handful of slack slots absorbs many
#: updates before the first relocation.
DEFAULT_SLACK = 4

_INDEX_DTYPE = np.int64


class _SlabLayout:
    """One direction (rows or columns) of the dual store.

    Holds sparsity *structure* only: each segment is a sorted run of
    indices inside a shared buffer that may contain holes left behind by
    relocated segments.  All mutators keep ``length``/``capacity``
    consistent and never move more than one segment at a time.
    """

    __slots__ = ("start", "length", "capacity", "indices", "used", "n")

    def __init__(
        self,
        n: int,
        seg_lengths: np.ndarray,
        indices: np.ndarray,
        slack: int,
    ) -> None:
        self.n = int(n)
        lengths = np.array(seg_lengths, dtype=_INDEX_DTYPE)
        caps = lengths + int(slack)
        starts = np.zeros(self.n, dtype=_INDEX_DTYPE)
        if self.n:
            np.cumsum(caps[:-1], out=starts[1:])
        total = int(caps.sum())
        buffer = np.zeros(max(total, 1), dtype=_INDEX_DTYPE)
        # Scatter the packed input into the slacked layout in one pass.
        if indices.size:
            buffer[_segment_positions(starts, lengths)] = indices
        self.start = starts
        self.length = lengths
        self.capacity = caps
        self.indices = buffer
        self.used = total

    # -------------------------------------------------------------- #
    # Reads
    # -------------------------------------------------------------- #

    def segment(self, seg: int) -> np.ndarray:
        """View of segment ``seg``'s sorted indices; do not resize."""
        lo = self.start[seg]
        return self.indices[lo : lo + self.length[seg]]

    def packed(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copy out canonical ``(indices, indptr)`` CSR-style arrays."""
        lengths = self.length[: self.n]
        indptr = np.zeros(self.n + 1, dtype=_INDEX_DTYPE)
        np.cumsum(lengths, out=indptr[1:])
        if self.n == 0 or indptr[-1] == 0:
            return np.zeros(0, dtype=_INDEX_DTYPE), indptr
        positions = _segment_positions(self.start[: self.n], lengths)
        return self.indices[positions], indptr

    def matvec(
        self, x: np.ndarray, weights: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Dense ``diag(weights)·pattern @ x`` written into ``out``.

        ``weights[i]`` is the shared value of every nonzero in segment
        ``i``; products are formed per entry before the per-segment
        summation, matching scipy's CSR mat-vec bit for bit.
        """
        out[: self.n] = 0.0
        active = np.flatnonzero(self.length[: self.n])
        if active.size == 0:
            return out
        counts = self.length[active]
        positions = _segment_positions(self.start[active], counts)
        values = np.repeat(weights[active], counts) * x[self.indices[positions]]
        bounds = np.zeros(active.size, dtype=_INDEX_DTYPE)
        np.cumsum(counts[:-1], out=bounds[1:])
        out[active] = np.add.reduceat(values, bounds)
        return out

    def matvec_indexed(
        self, x: np.ndarray, index_weights: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Dense ``pattern·diag(index_weights) @ x`` written into ``out``.

        The per-*index* twin of :meth:`matvec`: entry weights come from
        the touched index (``index_weights[index]``) rather than the
        owning segment.  On the CSC layout with the row weights this is
        exactly ``Qᵀ @ x`` — the transpose mat-vec of the walk-vector
        queries — served straight from the slabs.
        """
        out[: self.n] = 0.0
        active = np.flatnonzero(self.length[: self.n])
        if active.size == 0:
            return out
        counts = self.length[active]
        positions = _segment_positions(self.start[active], counts)
        touched = self.indices[positions]
        values = index_weights[touched] * x[touched]
        bounds = np.zeros(active.size, dtype=_INDEX_DTYPE)
        np.cumsum(counts[:-1], out=bounds[1:])
        out[active] = np.add.reduceat(values, bounds)
        return out

    def gather(
        self, segs: np.ndarray, seg_values: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse ``Σ_k seg_values[k] · weights[touched] · pattern`` sums.

        Gathers the entries of the given segments, scales each by its
        own per-*index* weight (``weights[index]``) times the owning
        segment's coefficient, and returns ``(indices, sums)`` with the
        index array sorted and unique.  This is the pruned core's
        ``Q·ξ`` gather over CSC slabs, with cost ``O(t log t)`` in the
        number of touched nonzeros ``t`` — independent of ``n``.
        """
        counts = self.length[segs]
        total = int(counts.sum())
        if total == 0:
            return (
                np.zeros(0, dtype=_INDEX_DTYPE),
                np.zeros(0, dtype=np.float64),
            )
        positions = _segment_positions(self.start[segs], counts)
        touched = self.indices[positions]
        contributions = weights[touched] * np.repeat(seg_values, counts)
        return self._accumulate_touched(touched, contributions)

    def gather_pair(
        self,
        segs_a: np.ndarray,
        vals_a: np.ndarray,
        segs_b: np.ndarray,
        vals_b: np.ndarray,
        weights: np.ndarray,
    ) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
        """Two :meth:`gather` calls fused into one pass.

        The pruned iteration advances ξ and η together every step;
        building one combined position/contribution vector and splitting
        afterwards halves the fixed per-call overhead, which dominates
        once the supports are modest.
        """
        counts_a = self.length[segs_a]
        counts_b = self.length[segs_b]
        total_a = int(counts_a.sum())
        total_b = int(counts_b.sum())
        empty = (np.zeros(0, dtype=_INDEX_DTYPE), np.zeros(0, dtype=np.float64))
        if total_a == 0 and total_b == 0:
            return empty, empty
        counts = np.concatenate((counts_a, counts_b))
        starts = np.concatenate((self.start[segs_a], self.start[segs_b]))
        positions = _segment_positions(starts, counts)
        touched = self.indices[positions]
        contributions = weights[touched] * np.repeat(
            np.concatenate((vals_a, vals_b)), counts
        )
        first = (
            self._accumulate_touched(touched[:total_a], contributions[:total_a])
            if total_a
            else empty
        )
        second = (
            self._accumulate_touched(touched[total_a:], contributions[total_a:])
            if total_b
            else empty
        )
        return first, second

    def _accumulate_touched(
        self, touched: np.ndarray, contributions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reduce raw (index, contribution) pairs to sorted unique sums."""
        if 8 * touched.size >= self.n:
            # Dense scatter-add: for large gathers the O(n) bincount +
            # support scan beats the O(t log t) sort's constant factor.
            dense = np.bincount(touched, weights=contributions, minlength=self.n)
            support = np.nonzero(dense)[0]
            return support, dense[support]
        order = np.argsort(touched, kind="stable")
        touched = touched[order]
        contributions = contributions[order]
        boundaries = np.concatenate(
            ([0], np.flatnonzero(touched[1:] != touched[:-1]) + 1)
        )
        return touched[boundaries], np.add.reduceat(contributions, boundaries)

    # -------------------------------------------------------------- #
    # Surgery
    # -------------------------------------------------------------- #

    def set_segment(self, seg: int, new_indices: np.ndarray) -> None:
        """Replace segment ``seg`` wholesale (indices must be sorted)."""
        need = new_indices.size
        if need > self.capacity[seg]:
            self._relocate(seg, need)
        lo = self.start[seg]
        self.indices[lo : lo + need] = new_indices
        self.length[seg] = need

    def insert_entry(self, seg: int, key: int) -> None:
        """Insert ``key`` into segment ``seg``, keeping it sorted."""
        count = int(self.length[seg])
        if count + 1 > self.capacity[seg]:
            self._relocate(seg, count + 1)
        lo = int(self.start[seg])
        keys = self.indices[lo : lo + count]
        offset = int(np.searchsorted(keys, key))
        hi = lo + count
        self.indices[lo + offset + 1 : hi + 1] = self.indices[lo + offset : hi]
        self.indices[lo + offset] = key
        self.length[seg] = count + 1

    def remove_entry(self, seg: int, key: int) -> None:
        """Remove the entry ``key`` from segment ``seg``."""
        count = int(self.length[seg])
        lo = int(self.start[seg])
        keys = self.indices[lo : lo + count]
        offset = int(np.searchsorted(keys, key))
        if offset >= count or keys[offset] != key:
            raise GraphError(f"entry {key} missing from segment {seg}")
        hi = lo + count
        self.indices[lo + offset : hi - 1] = self.indices[lo + offset + 1 : hi]
        self.length[seg] = count - 1

    def append_segment(self) -> None:
        """Add one empty segment at the end (node arrival); amortized O(1).

        The per-segment metadata arrays grow geometrically, so a long
        stream of node arrivals costs O(1) amortized per node (plus the
        one-off cost when the shared entry buffer doubles).
        """
        if self.n == self.start.size:
            grown = max(2 * self.start.size, 8)
            for name in ("start", "length", "capacity"):
                old = getattr(self, name)
                fresh = np.zeros(grown, dtype=_INDEX_DTYPE)
                fresh[: self.n] = old[: self.n]
                setattr(self, name, fresh)
        cap = DEFAULT_SLACK
        if self.used + cap > self.indices.size:
            self._grow(self.used + cap)
        self.start[self.n] = self.used
        self.length[self.n] = 0
        self.capacity[self.n] = cap
        self.used += cap
        self.n += 1

    def compact(self, slack: int = DEFAULT_SLACK) -> None:
        """Repack all segments contiguously, restoring uniform slack."""
        indices, indptr = self.packed()
        rebuilt = _SlabLayout(self.n, np.diff(indptr), indices, slack)
        self.start = rebuilt.start
        self.length = rebuilt.length
        self.capacity = rebuilt.capacity
        self.indices = rebuilt.indices
        self.used = rebuilt.used

    # -------------------------------------------------------------- #
    # Accounting / internals
    # -------------------------------------------------------------- #

    @property
    def nnz(self) -> int:
        return int(self.length[: self.n].sum())

    def buffer_bytes(self) -> int:
        """Bytes held by the buffers (live entries *and* slack)."""
        return (
            self.indices.nbytes
            + self.start.nbytes
            + self.length.nbytes
            + self.capacity.nbytes
        )

    def slack_bytes(self) -> int:
        """Bytes of allocated-but-unoccupied entry slots (slack + holes)."""
        return int(self.indices.size - self.nnz) * self.indices.itemsize

    def _relocate(self, seg: int, need: int) -> None:
        new_cap = max(2 * int(self.capacity[seg]), need, DEFAULT_SLACK)
        if self.used + new_cap > self.indices.size:
            self._grow(self.used + new_cap)
        lo = int(self.start[seg])
        count = int(self.length[seg])
        new_lo = self.used
        self.indices[new_lo : new_lo + count] = self.indices[lo : lo + count]
        self.start[seg] = new_lo
        self.capacity[seg] = new_cap
        self.used += new_cap

    def _grow(self, minimum: int) -> None:
        size = max(2 * self.indices.size, minimum, 16)
        buffer = np.zeros(size, dtype=_INDEX_DTYPE)
        buffer[: self.used] = self.indices[: self.used]
        self.indices = buffer


def _segment_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Buffer positions of all entries of the given segments, in order.

    Fully vectorized range concatenation: for segments with starts
    ``s_k`` and lengths ``c_k`` returns
    ``[s_0, s_0+1, ..., s_0+c_0-1, s_1, ...]``.
    """
    total = int(counts.sum())
    head = np.repeat(
        starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    return head + np.arange(total, dtype=_INDEX_DTYPE)


class TransitionStore:
    """``Q`` resident in CSR *and* CSC with O(row) update surgery.

    Build once with :meth:`from_graph` (or :meth:`from_csr`), then keep
    it in sync with the evolving graph via :meth:`insert_edge` /
    :meth:`remove_edge` (unit updates), :meth:`set_row` (composite row
    updates), and :meth:`add_node`.  See the module docstring for the
    factored-value representation, layout, and slack policy.
    """

    def __init__(
        self,
        rows: _SlabLayout,
        cols: _SlabLayout,
        row_weight: np.ndarray,
        num_nodes: int,
    ) -> None:
        self._rows = rows
        self._cols = cols
        self._row_weight = row_weight
        self._n = int(num_nodes)
        self._csr_cache: Optional[sp.csr_matrix] = None
        self._csc_cache: Optional[sp.csc_matrix] = None
        #: Monotone counter bumped by every mutation; lets callers that
        #: hold derived state (caches, snapshots) detect staleness.
        self.version = 0

    # -------------------------------------------------------------- #
    # Construction
    # -------------------------------------------------------------- #

    @classmethod
    def from_graph(cls, graph, slack: int = DEFAULT_SLACK) -> "TransitionStore":
        """Build the dual store from a :class:`DynamicDiGraph`."""
        n = graph.num_nodes
        row_lengths = np.zeros(n, dtype=_INDEX_DTYPE)
        parts = []
        for node, in_list in enumerate(graph.in_neighbor_lists()):
            row_lengths[node] = len(in_list)
            if in_list:
                parts.append(np.asarray(in_list, dtype=_INDEX_DTYPE))
        indices = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=_INDEX_DTYPE)
        )
        indptr = np.zeros(n + 1, dtype=_INDEX_DTYPE)
        np.cumsum(row_lengths, out=indptr[1:])
        return cls._from_structure(n, indices, indptr, row_lengths, slack)

    @classmethod
    def from_csr(
        cls,
        q_matrix: sp.spmatrix,
        slack: int = DEFAULT_SLACK,
        csc_hint: Optional[sp.csc_matrix] = None,
    ) -> "TransitionStore":
        """Build the dual store from a prebuilt ``Q`` (any scipy format).

        ``Q`` must be row-uniform (every nonzero of row ``r`` equal to
        ``1/nnz(row r)``), which every backward transition matrix is;
        anything else raises :class:`GraphError`.  ``csc_hint`` may
        supply an already-converted CSC view of the same matrix to skip
        the internal transpose pass.
        """
        csr = sp.csr_matrix(q_matrix).copy()
        if csr.shape[0] != csr.shape[1]:
            raise DimensionError(f"Q must be square, got {csr.shape}")
        csr.sort_indices()
        n = csr.shape[0]
        lengths = np.diff(csr.indptr).astype(_INDEX_DTYPE)
        expected = np.repeat(
            np.where(lengths > 0, 1.0 / np.maximum(lengths, 1), 0.0), lengths
        )
        if not np.array_equal(csr.data, expected):
            raise GraphError(
                "TransitionStore requires a row-normalized Q "
                "(uniform 1/in-degree rows)"
            )
        return cls._from_structure(
            n,
            csr.indices.astype(_INDEX_DTYPE),
            csr.indptr.astype(_INDEX_DTYPE),
            lengths,
            slack,
            csc_hint=csc_hint,
        )

    @classmethod
    def _from_structure(
        cls,
        n: int,
        indices: np.ndarray,
        indptr: np.ndarray,
        lengths: np.ndarray,
        slack: int,
        csc_hint: Optional[sp.csc_matrix] = None,
    ) -> "TransitionStore":
        if csc_hint is not None and csc_hint.shape == (n, n):
            csc = csc_hint if csc_hint.has_sorted_indices else csc_hint.copy()
            csc.sort_indices()
        else:
            pattern = sp.csr_matrix(
                (np.ones(indices.size, dtype=np.int8), indices, indptr),
                shape=(n, n),
            )
            csc = pattern.tocsc()
            csc.sort_indices()
        rows = _SlabLayout(n, lengths, indices, slack)
        cols = _SlabLayout(
            n, np.diff(csc.indptr), csc.indices.astype(_INDEX_DTYPE), slack
        )
        weights = np.zeros(max(n, 1), dtype=np.float64)
        nonzero = lengths > 0
        weights[: n][nonzero] = 1.0 / lengths[nonzero]
        return cls(rows, cols, weights, n)

    # -------------------------------------------------------------- #
    # Shape / degree reads
    # -------------------------------------------------------------- #

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._n)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return self._rows.nnz

    def in_degree(self, node: int) -> int:
        """``d_node``: nnz of CSR row ``node`` (cached, O(1))."""
        return int(self._rows.length[node])

    def in_degrees(self) -> np.ndarray:
        """The full in-degree vector (a copy; O(n))."""
        return self._rows.length[: self._n].copy()

    def row_weight(self, node: int) -> float:
        """The shared value ``1/d_node`` of row ``node`` (0 when empty)."""
        return float(self._row_weight[node])

    def row(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ``node`` as (sorted column indices view, values copy)."""
        indices = self._rows.segment(node)
        return indices, np.full(indices.size, self._row_weight[node])

    def column(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column ``node`` as (sorted row indices view, values copy)."""
        indices = self._cols.segment(node)
        return indices, self._row_weight[indices]

    # -------------------------------------------------------------- #
    # Hot-path reads
    # -------------------------------------------------------------- #

    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense ``Q @ x``; pass ``out`` to reuse a workspace buffer."""
        if out is None:
            out = np.zeros(self._n, dtype=np.float64)
        return self._rows.matvec(x, self._row_weight, out)

    def __matmul__(self, x):
        if isinstance(x, np.ndarray) and x.ndim == 1:
            return self.matvec(x)
        # Fall back to the packed scipy view for matrix operands.
        return self.csr_matrix() @ x

    def rmatvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense ``Qᵀ @ x`` served from the CSC slabs; no transpose built.

        The walk-vector queries iterate ``(Qᵀ)^k e_a``; this serves each
        step directly from the column layout (a CSC column of ``Q`` *is*
        a CSR row of ``Qᵀ``), so no ``O(nnz)`` transpose conversion is
        ever paid.  Pass ``out`` to reuse a workspace buffer.
        """
        if out is None:
            out = np.zeros(self._n, dtype=np.float64)
        return self._cols.matvec_indexed(x, self._row_weight, out)

    def gather_columns(
        self, indices: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``Q @ x`` for sparse ``x = (indices, values)``, as sparse output.

        Returns sorted unique row indices and their sums — exactly the
        affected-area gather of Algorithm 2, with cost independent of
        ``n``.
        """
        return self._cols.gather(indices, values, self._row_weight)

    def gather_columns_pair(
        self,
        indices_a: np.ndarray,
        values_a: np.ndarray,
        indices_b: np.ndarray,
        values_b: np.ndarray,
    ):
        """Two :meth:`gather_columns` fused into one pass (ξ and η)."""
        return self._cols.gather_pair(
            indices_a, values_a, indices_b, values_b, self._row_weight
        )

    # -------------------------------------------------------------- #
    # Surgery
    # -------------------------------------------------------------- #

    def insert_edge(self, source: int, target: int) -> None:
        """Mirror the edge insertion ``source -> target`` (O(row)).

        One structural insert per layout plus the target's weight
        update; the re-weighting of surviving in-edges is implicit in
        the factored representation.
        """
        self._rows.insert_entry(target, source)
        self._cols.insert_entry(source, target)
        self._row_weight[target] = 1.0 / self._rows.length[target]
        self._invalidate()

    def remove_edge(self, source: int, target: int) -> None:
        """Mirror the edge deletion ``source -> target`` (O(row))."""
        self._rows.remove_entry(target, source)
        self._cols.remove_entry(source, target)
        degree = self._rows.length[target]
        self._row_weight[target] = 1.0 / degree if degree else 0.0
        self._invalidate()

    def set_row(self, target: int, sources: Iterable[int]) -> None:
        """Rewrite row ``target`` to ``1/d`` over ``sources`` (O(row)).

        ``sources`` is the new in-neighbor set of ``target``; an empty
        iterable clears the row.  Used by the consolidated-batch path,
        where one call replaces a whole group of unit updates.
        """
        new_idx = np.asarray(sorted(sources), dtype=_INDEX_DTYPE)
        old_idx = self._rows.segment(target).copy()
        self._rows.set_segment(target, new_idx)
        for source in np.setdiff1d(old_idx, new_idx, assume_unique=True):
            self._cols.remove_entry(int(source), target)
        for source in np.setdiff1d(new_idx, old_idx, assume_unique=True):
            self._cols.insert_entry(int(source), target)
        degree = new_idx.size
        self._row_weight[target] = 1.0 / degree if degree else 0.0
        self._invalidate()

    def set_row_from_graph(self, graph, target: int) -> None:
        """Sync row ``target`` from the (already mutated) graph."""
        self.set_row(target, graph.in_neighbors(target))

    def apply_update(self, update) -> None:
        """Mirror one :class:`EdgeUpdate` that was applied to the graph."""
        if update.is_insert:
            self.insert_edge(update.source, update.target)
        else:
            self.remove_edge(update.source, update.target)

    def add_node(self) -> int:
        """Append one empty row and column; returns the new node id."""
        self._rows.append_segment()
        self._cols.append_segment()
        if self._n >= self._row_weight.size:
            fresh = np.zeros(max(2 * self._row_weight.size, 8))
            fresh[: self._n] = self._row_weight[: self._n]
            self._row_weight = fresh
        self._row_weight[self._n] = 0.0
        self._n += 1
        self._invalidate()
        return self._n - 1

    def copy(self) -> "TransitionStore":
        """An independent deep copy (fresh slabs, compacted slack)."""
        return TransitionStore.from_csr(
            self.csr_matrix(), csc_hint=self.csc_matrix()
        )

    def replace_from_graph(self, graph) -> None:
        """Rebuild the whole store from ``graph`` (batch/recovery path)."""
        rebuilt = TransitionStore.from_graph(graph)
        self._rows = rebuilt._rows
        self._cols = rebuilt._cols
        self._row_weight = rebuilt._row_weight
        self._n = rebuilt._n
        self._invalidate()

    def compact(self) -> None:
        """Repack both layouts, reclaiming relocation holes."""
        self._rows.compact()
        self._cols.compact()
        self._invalidate()

    def _invalidate(self) -> None:
        self._csr_cache = None
        self._csc_cache = None
        self.version += 1

    # -------------------------------------------------------------- #
    # Scipy interop (lazy, cached between mutations)
    # -------------------------------------------------------------- #

    def csr_matrix(self) -> sp.csr_matrix:
        """Packed scipy CSR view; cached until the next mutation.

        The returned matrix shares no hot-path state, so mutating it
        cannot corrupt the store — but callers should treat it as
        read-only, since repeated calls between updates return the same
        object.
        """
        if self._csr_cache is None:
            indices, indptr = self._rows.packed()
            data = np.repeat(
                self._row_weight[: self._n], self._rows.length[: self._n]
            )
            self._csr_cache = sp.csr_matrix(
                (data, indices, indptr), shape=self.shape
            )
        return self._csr_cache

    def csc_matrix(self) -> sp.csc_matrix:
        """Packed scipy CSC view; cached until the next mutation."""
        if self._csc_cache is None:
            indices, indptr = self._cols.packed()
            self._csc_cache = sp.csc_matrix(
                (self._row_weight[indices], indices, indptr), shape=self.shape
            )
        return self._csc_cache

    def toarray(self) -> np.ndarray:
        """Dense ``Q`` (tests/debugging only)."""
        return self.csr_matrix().toarray()

    def export_packed(self) -> dict:
        """Canonical packed arrays of both layouts (persistence/shipping).

        Returns ``indices``/``indptr`` (CSR), ``col_indices``/
        ``col_indptr`` (CSC), the factored ``row_weight`` vector, and
        ``num_nodes``/``version`` — everything a remote executor needs
        to reconstruct ``Q`` without scipy object churn.  All arrays are
        fresh copies detached from the slab buffers.
        """
        indices, indptr = self._rows.packed()
        col_indices, col_indptr = self._cols.packed()
        return {
            "indices": indices,
            "indptr": indptr,
            "col_indices": col_indices,
            "col_indptr": col_indptr,
            "row_weight": self._row_weight[: self._n].copy(),
            "num_nodes": self._n,
            "version": self.version,
        }

    def snapshot(self) -> "TransitionSnapshot":
        """Freeze the current ``Q`` as a :class:`TransitionSnapshot`.

        Effectively zero-copy between mutations: the snapshot wraps the
        lazily packed CSR view, which the store *abandons* (rather than
        rewrites) on its next mutation, so the snapshot stays frozen at
        this version forever while consecutive snapshots between
        mutations share one packed matrix.
        """
        return TransitionSnapshot(self.csr_matrix(), self.version)

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #

    def buffer_bytes(self) -> int:
        """Total bytes of both layouts' buffers, slack included (Fig. 3)."""
        return (
            self._rows.buffer_bytes()
            + self._cols.buffer_bytes()
            + self._row_weight.nbytes
        )

    def slack_bytes(self) -> int:
        """Bytes of entry slots currently allocated but unoccupied."""
        return self._rows.slack_bytes() + self._cols.slack_bytes()

    def __repr__(self) -> str:
        return (
            f"TransitionStore(n={self._n}, nnz={self.nnz}, "
            f"slack_bytes={self.slack_bytes()})"
        )


class TransitionSnapshot:
    """An immutable ``Q`` frozen at one :class:`TransitionStore` version.

    Wraps the packed scipy CSR view current at snapshot time (the store
    never mutates a packed view — it rebuilds a fresh one after
    surgery) plus a lazily derived transpose, and exposes the read API
    the query layer needs (``matvec``, ``rmatvec``, ``@``).  Used by the
    serving layer so readers can answer single-source/single-pair
    queries at a pinned version while the writer keeps mutating the
    live store.
    """

    __slots__ = ("_csr", "_csr_t", "version")

    def __init__(self, csr: sp.csr_matrix, version: int) -> None:
        self._csr = csr
        self._csr_t = None
        self.version = int(version)

    @classmethod
    def from_packed(cls, payload: dict) -> "TransitionSnapshot":
        """Rebuild a frozen ``Q`` from a :meth:`TransitionStore.export_packed`
        payload.

        The payload is plain ndarrays (picklable, scipy-free), so this is
        the receiving end of the cross-process shipping contract: a worker
        or a remote executor reconstructs the exact CSR the store held at
        export time — ``data`` is re-derived from the factored
        ``row_weight`` exactly as :meth:`TransitionStore.csr_matrix` does,
        so the rebuilt matrix is bit-identical.
        """
        n = int(payload["num_nodes"])
        indptr = payload["indptr"]
        lengths = np.diff(indptr)
        data = np.repeat(payload["row_weight"], lengths)
        csr = sp.csr_matrix(
            (data, payload["indices"], indptr), shape=(n, n)
        )
        return cls(csr, int(payload["version"]))

    # Explicit state keeps the lazily derived transpose view out of the
    # pickle (it is rebuilt on demand after a round trip).
    def __getstate__(self) -> Tuple[sp.csr_matrix, int]:
        return (self._csr, self.version)

    def __setstate__(self, state: Tuple[sp.csr_matrix, int]) -> None:
        self._csr, self.version = state
        self._csr_t = None

    @property
    def shape(self) -> Tuple[int, int]:
        return self._csr.shape

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)

    def csr_matrix(self) -> sp.csr_matrix:
        """The frozen packed CSR view (treat as read-only)."""
        return self._csr

    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense ``Q @ x`` at the frozen version."""
        result = self._csr @ x
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def rmatvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense ``Qᵀ @ x`` via an O(1) transpose view (no conversion)."""
        if self._csr_t is None:
            self._csr_t = self._csr.T
        result = self._csr_t @ x
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def __matmul__(self, x):
        return self._csr @ x

    def nbytes(self) -> int:
        """Bytes pinned by the frozen CSR arrays."""
        return (
            self._csr.data.nbytes
            + self._csr.indices.nbytes
            + self._csr.indptr.nbytes
        )

    def __repr__(self) -> str:
        n = self._csr.shape[0]
        return f"TransitionSnapshot(n={n}, nnz={self.nnz}, version={self.version})"
