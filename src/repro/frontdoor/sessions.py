"""Pinned-snapshot sessions: a client's bit-stable view with a TTL.

A session pins one :class:`~repro.serving.snapshot.SnapshotView` under
a random id.  Every query routed through the session answers from that
frozen view, so a client doing a multi-request analysis (compare pairs,
then rank, then drill into a source) sees one consistent version no
matter how many drains land in between — the same bit-stability the
in-process API gets from holding a view object, carried over a
stateless wire protocol.

The cost of a pin is bounded by copy-on-write: a pinned view only
retains the shard buffers the writer has since diverged from.  Sessions
end two ways — explicit ``DELETE`` or idle TTL expiry (each touch
refreshes the clock) — and both drop the manager's reference so the
COW refcounting can reclaim the retained shards.  ``max_sessions``
caps concurrently pinned views, bounding reader-held memory;
:class:`~repro.exceptions.BackpressureError` (HTTP 429) tells clients
to release or wait.
"""

from __future__ import annotations

import secrets
import time
from typing import Dict, Optional

from ..exceptions import BackpressureError, SessionNotFoundError
from ..serving.snapshot import SnapshotView
from ..telemetry import NULL_TELEMETRY, GaugeGroup


class _Session:
    __slots__ = ("view", "ttl", "expires_at", "touches")

    def __init__(self, view: SnapshotView, ttl: float, now: float) -> None:
        self.view = view
        self.ttl = ttl
        self.expires_at = now + ttl
        self.touches = 0


class SessionManager:
    """Id → pinned view registry with idle-TTL expiry.

    Not thread-safe by design: every call happens on the front door's
    event loop (blocking query execution moves to the thread pool only
    *after* the view is resolved here).
    """

    def __init__(
        self,
        default_ttl: float,
        max_sessions: int,
        clock=time.monotonic,
        registry=None,
    ) -> None:
        self.default_ttl = float(default_ttl)
        self.max_sessions = int(max_sessions)
        self._clock = clock
        self._sessions: Dict[str, _Session] = {}
        self.created = 0
        self.expired = 0
        self.released = 0
        if registry is None:
            registry = NULL_TELEMETRY.registry
        gauges = GaugeGroup(registry, "repro_sessions")
        gauges.expose("active", lambda: len(self._sessions))
        gauges.expose("max_sessions", lambda: self.max_sessions)
        gauges.expose("default_ttl_seconds", lambda: self.default_ttl)
        gauges.expose("created", lambda: self.created)
        gauges.expose("expired", lambda: self.expired)
        gauges.expose("released", lambda: self.released)
        gauges.expose("pinned_bytes", self._pinned_bytes)
        self._gauges = gauges

    def __len__(self) -> int:
        return len(self._sessions)

    def create(self, view: SnapshotView, ttl: Optional[float] = None) -> str:
        """Pin ``view`` under a fresh session id."""
        now = self._clock()
        self._purge(now)
        if len(self._sessions) >= self.max_sessions:
            raise BackpressureError(
                f"session table full ({self.max_sessions} pinned); "
                f"release a session or wait for TTL expiry"
            )
        session_id = secrets.token_hex(16)
        self._sessions[session_id] = _Session(
            view, float(ttl) if ttl else self.default_ttl, now
        )
        self.created += 1
        return session_id

    def get(self, session_id: str) -> SnapshotView:
        """The pinned view; touching refreshes the idle TTL."""
        now = self._clock()
        self._purge(now)
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(session_id)
        session.expires_at = now + session.ttl
        session.touches += 1
        return session.view

    def info(self, session_id: str) -> dict:
        """Wire metadata for one session (refreshes the TTL)."""
        view = self.get(session_id)
        session = self._sessions[session_id]
        return {
            "session": session_id,
            "version": view.version,
            "num_nodes": view.num_nodes,
            "ttl": session.ttl,
            "expires_in": session.expires_at - self._clock(),
            "touches": session.touches,
            "pinned_bytes": view.nbytes(),
        }

    def release(self, session_id: str) -> None:
        """Drop the pin; the id is permanently dead afterwards."""
        if self._sessions.pop(session_id, None) is None:
            raise SessionNotFoundError(session_id)
        self.released += 1

    def release_all(self) -> int:
        """Drop every pin (front-door shutdown); returns how many."""
        count = len(self._sessions)
        self._sessions.clear()
        self.released += count
        return count

    def _purge(self, now: float) -> None:
        expired = [
            session_id
            for session_id, session in self._sessions.items()
            if session.expires_at <= now
        ]
        for session_id in expired:
            del self._sessions[session_id]
        self.expired += len(expired)

    def _pinned_bytes(self) -> int:
        return sum(
            session.view.nbytes() for session in self._sessions.values()
        )

    def report(self) -> dict:
        """Session gauges for the metrics endpoint.

        Rendered through the :class:`GaugeGroup` so the JSON dict and
        the registry's Prometheus gauges share one set of readers; key
        names are the historical ones.
        """
        self._purge(self._clock())
        return self._gauges.report()
