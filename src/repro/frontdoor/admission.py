"""Batched query admission: one snapshot, one BLAS pass, many answers.

Under concurrent load the front door does not execute similarity and
single-source queries one at a time.  The first query to arrive opens
an **admission window** (:class:`FrontDoorConfig.admission_window`
seconds); every compatible query that arrives inside the window joins
the same batch.  When the window closes (or the batch hits its size
cap) the whole batch pins **one** snapshot view and executes as one
vectorized pass:

* ``similarity`` — the requested ``(a, b)`` pairs are gathered from
  the frozen score shards with one fancy-indexing read per touched
  shard instead of one Python-level ``entry()`` call per query;
* ``single_source`` — the walk stacks of all requested sources are
  computed **stacked**: the unit vectors become the columns of one
  ``(n, b)`` matrix and the per-step sparse products ``QᵀX`` / ``QX``
  run as single sparse×dense-matrix calls.

The stacked path is **bit-identical per column** to the sequential
one: scipy's CSR/CSC sparse×matrix kernels accumulate every output
column in the same sequential nonzero order as their matrix×vector
kernels, and the dense Horner combination ``t + C·(Q·R)`` is
elementwise.  The equivalence is asserted by the test suite and spot
checked by the benchmark, so batching is a pure latency/throughput
optimization — answers never change by admission accident.

Demultiplexing tags each :class:`QueryResult` with ``batched=True``
and the batch size, so the wire exposes how much coalescing the window
achieved (the benchmark's tuning axis).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Sequence

import numpy as np

from ..exceptions import NodeNotFoundError
from ..serving.envelopes import QueryRequest, QueryResult
from ..simrank.queries import single_source_simrank
from ..telemetry import NULL_TELEMETRY, GaugeGroup


def batched_similarity(view, pairs: Sequence[tuple]) -> List[float]:
    """Gather frozen scores for many ``(a, b)`` pairs, one read per shard.

    Bit-identical to per-pair :meth:`SnapshotView.similarity`: both are
    pure reads of the same frozen shard entries.
    """
    n = view.num_nodes
    for a, b in pairs:
        if not (0 <= a < n):
            raise NodeNotFoundError(a)
        if not (0 <= b < n):
            raise NodeNotFoundError(b)
    return view.scores.gather(
        [a for a, _ in pairs], [b for _, b in pairs]
    )


def batched_single_source(view, nodes: Sequence[int]) -> np.ndarray:
    """Single-source scores for many sources in one stacked pass.

    Returns an ``(n, len(nodes))`` matrix whose column ``j`` is
    bit-identical to ``view.single_source(nodes[j])`` — the stacked
    sparse products accumulate each column in the same order as the
    vector path (see the module docstring).  Duplicate sources are
    fine (each gets its own column).
    """
    transitions = view.transitions
    config = view.config
    n = transitions.shape[0]
    for node in nodes:
        if not (0 <= node < n):
            raise NodeNotFoundError(node)
    if len(nodes) == 1:
        # Single column: the vector path *is* the batched path.
        return single_source_simrank(
            transitions, nodes[0], config
        ).reshape(n, 1)
    stacked = np.zeros((n, len(nodes)))
    for column, node in enumerate(nodes):
        stacked[node, column] = 1.0
    walk_stack = [stacked]
    for _ in range(config.iterations):
        stacked = transitions.rmatvec(stacked)
        walk_stack.append(stacked)
    result = walk_stack[-1].copy()
    for t_matrix in reversed(walk_stack[:-1]):
        result = t_matrix + config.damping * (transitions @ result)
    return (1.0 - config.damping) * result


def execute_batch(view, requests: Sequence[QueryRequest]) -> List[QueryResult]:
    """Run one admitted batch against one pinned view, demultiplexed.

    Only batchable kinds (``similarity``, ``single_source``) may
    appear; a request whose node ids are invalid gets its exception
    *in its own slot* via a sentinel re-raise at demux time, so one bad
    query never fails its batch-mates.
    """
    started = time.perf_counter()
    sim_slots: List[int] = []
    sim_pairs: List[tuple] = []
    source_slots: List[int] = []
    source_nodes: List[int] = []
    failures: Dict[int, BaseException] = {}
    for index, request in enumerate(requests):
        n = view.num_nodes
        if request.kind == "similarity":
            if not (0 <= request.node_a < n):
                failures[index] = NodeNotFoundError(request.node_a)
            elif not (0 <= request.node_b < n):
                failures[index] = NodeNotFoundError(request.node_b)
            else:
                sim_slots.append(index)
                sim_pairs.append((request.node_a, request.node_b))
        else:  # single_source (the batcher admits nothing else)
            if not (0 <= request.node < n):
                failures[index] = NodeNotFoundError(request.node)
            else:
                source_slots.append(index)
                source_nodes.append(request.node)

    values: Dict[int, object] = {}
    if sim_pairs:
        for slot, score in zip(
            sim_slots, batched_similarity(view, sim_pairs)
        ):
            values[slot] = score
    if source_nodes:
        columns = batched_single_source(view, source_nodes)
        for position, slot in enumerate(source_slots):
            values[slot] = columns[:, position].copy()
    elapsed = time.perf_counter() - started

    results: List[QueryResult] = []
    for index, request in enumerate(requests):
        if index in failures:
            results.append(failures[index])
            continue
        results.append(
            QueryResult(
                kind=request.kind,
                value=values[index],
                version=view.version,
                elapsed_seconds=elapsed,
                id=request.id,
                batched=True,
                batch_size=len(requests),
            )
        )
    return results


class AdmissionBatcher:
    """The async admission window in front of the batched executors.

    ``await run(request)`` parks the caller on a future; the first
    arrival schedules a flush ``window`` seconds out, a full batch
    flushes immediately, and the flush executes the whole batch against
    one freshly pinned snapshot **in the executor thread pool** so the
    event loop keeps admitting during the BLAS pass.  With
    ``window == 0`` batching is disabled and every query runs alone
    (still off-loop).
    """

    def __init__(
        self,
        pin_view,
        window: float,
        max_batch: int,
        run_blocking,
        telemetry=None,
    ) -> None:
        if telemetry is None:
            telemetry = NULL_TELEMETRY
        self._pin_view = pin_view
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._run_blocking = run_blocking
        self._pending: List[tuple] = []
        self._flush_handle = None
        self.batches = 0
        self.batched_queries = 0
        self.max_batch_seen = 0
        self._telemetry = telemetry
        self._execute_hist = telemetry.registry.histogram(
            "repro_admission_execute_seconds",
            help="Batched admission execute time (pin + vectorized pass)",
        )
        gauges = GaugeGroup(telemetry.registry, "repro_admission")
        gauges.expose("window_seconds", lambda: self.window)
        gauges.expose("max_batch", lambda: self.max_batch)
        gauges.expose("batches", lambda: self.batches)
        gauges.expose("batched_queries", lambda: self.batched_queries)
        gauges.expose(
            "mean_batch_size",
            lambda: (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
        )
        gauges.expose("max_batch_seen", lambda: self.max_batch_seen)
        self._gauges = gauges

    async def run(self, request: QueryRequest) -> QueryResult:
        loop = asyncio.get_running_loop()
        if self.window <= 0 or self.max_batch <= 1:
            results = await self._execute([request])
            return self._unwrap(results[0])
        future = loop.create_future()
        self._pending.append((request, future, loop.time()))
        if len(self._pending) >= self.max_batch:
            self._cancel_timer()
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.window, self._flush)
        return self._unwrap(await future)

    def _cancel_timer(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    def _flush(self) -> None:
        self._flush_handle = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        asyncio.get_running_loop().create_task(self._settle(batch))

    async def _settle(self, batch: List[tuple]) -> None:
        requests = [request for request, _, _ in batch]
        now = asyncio.get_running_loop().time()
        tracer = self._telemetry.tracer
        for request, _, enqueued in batch:
            tracer.record(
                "admission.wait",
                request.trace_id,
                now - enqueued,
                batch_size=len(batch),
            )
        try:
            results = await self._execute(requests)
        except BaseException as exc:  # pin/execute failed wholesale
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.batches += 1
        self.batched_queries += len(batch)
        if len(batch) > self.max_batch_seen:
            self.max_batch_seen = len(batch)
        for (_, future, _), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    async def _execute(self, requests: List[QueryRequest]):
        tracer = self._telemetry.tracer
        traced = [
            request.trace_id
            for request in requests
            if tracer.sampled(request.trace_id)
        ]

        def work():
            pin_started = time.perf_counter()
            view = self._pin_view()
            pin_elapsed = time.perf_counter() - pin_started
            exec_started = time.perf_counter()
            results = execute_batch(view, requests)
            exec_elapsed = time.perf_counter() - exec_started
            self._execute_hist.observe(pin_elapsed + exec_elapsed)
            # The whole batch shares one pin and one vectorized pass, so
            # every traced member gets the same span timings tagged with
            # the fan-in it rode along with.
            for trace_id in traced:
                tracer.record(
                    "admission.pin",
                    trace_id,
                    pin_elapsed,
                    batch_size=len(requests),
                    version=view.version,
                )
                tracer.record(
                    "admission.execute",
                    trace_id,
                    exec_elapsed,
                    batch_size=len(requests),
                )
            return results

        return await self._run_blocking(work)

    @staticmethod
    def _unwrap(result):
        if isinstance(result, BaseException):
            raise result
        return result

    def drain(self) -> None:
        """Fail every parked query (service shutting down)."""
        self._cancel_timer()
        pending, self._pending = self._pending, []
        for _, future, _ in pending:
            if not future.done():
                future.cancel()

    def report(self) -> dict:
        """Admission counters for the metrics endpoint.

        Rendered through the :class:`GaugeGroup`, so the same readers
        back this dict and the registry's Prometheus gauges — key names
        are the historical ones.
        """
        return self._gauges.report()
