"""Network front door — async HTTP/WebSocket serving over the service.

The serving layer answers queries in-process; this package puts the
same API on a socket, with three pieces of machinery the wire makes
worthwhile:

* :mod:`repro.frontdoor.admission` — **batched query admission**:
  concurrent ``similarity``/``single_source`` queries arriving inside
  one admission window execute as a single snapshot-pinned vectorized
  pass (stacked walk matrices, per-shard score gathers), bit-identical
  per query to unbatched execution.
* :mod:`repro.frontdoor.sessions` — **pinned-snapshot sessions**: a
  client pins one :class:`~repro.serving.snapshot.SnapshotView` under
  a TTL'd id and reads a bit-stable version across any number of
  drains; release (explicit or expiry) feeds the copy-on-write
  refcounting.
* :mod:`repro.frontdoor.subscriptions` — **top-k push subscriptions**:
  after each drain the hub diffs the incremental shard-heap ranking
  against each subscriber's last-seen state and pushes only changed
  positions plus a SHA-1 digest of the full ranking, so clients verify
  exact reconstruction on every step.

:mod:`repro.frontdoor.protocol` is the dependency-free HTTP/1.1 +
RFC 6455 wire layer (both server and client halves);
:mod:`repro.frontdoor.server` assembles everything into
:class:`FrontDoor`.
"""

from .admission import (
    AdmissionBatcher,
    batched_similarity,
    batched_single_source,
)
from .protocol import HTTPClient, ws_connect, ws_recv_json
from .server import FrontDoor, serve_frontdoor
from .sessions import SessionManager
from .subscriptions import (
    TopKSubscriptions,
    apply_delta,
    diff_ranking,
    ranking_digest,
)

__all__ = [
    "FrontDoor",
    "serve_frontdoor",
    "AdmissionBatcher",
    "batched_similarity",
    "batched_single_source",
    "SessionManager",
    "TopKSubscriptions",
    "ranking_digest",
    "diff_ranking",
    "apply_delta",
    "HTTPClient",
    "ws_connect",
    "ws_recv_json",
]
