"""The async network front door over one :class:`SimRankService`.

One asyncio server, one listening socket, two protocols:

========================== ===========================================
``GET /health``             liveness + version + degraded flag
``GET /metrics``            service metrics + front-door gauges
``POST /query``             one :class:`QueryRequest` (JSON); batched
                            admission for ``similarity`` /
                            ``single_source``, shard-heap path for
                            ``top_k``, pinned-session routing via the
                            envelope's ``session`` field
``POST /session``           pin the current snapshot; returns the id
``GET /session/<id>``       session metadata (refreshes the TTL)
``DELETE /session/<id>``    release the pin
``POST /updates``           submit edge updates (optional validation
                            against graph ∪ pending queue)
``POST /flush``             wait until everything queued is applied
``GET /ws/topk?k=K``        WebSocket: top-k delta subscription
========================== ===========================================

Design rules:

* the **event loop never blocks** — every engine call (query, drain
  wait, ranking) runs in the default thread-pool executor; the loop
  only parses, routes, and demultiplexes;
* **drains push, clients don't poll** — a
  :meth:`SimRankService.add_drain_listener` callback flips an asyncio
  event from the writer thread (``call_soon_threadsafe``), waking the
  push task that runs one subscription poll per drain burst;
* **errors are the taxonomy** — every library exception maps through
  :func:`~repro.serving.envelopes.http_status`, so a degraded pool is
  a 503 and a full queue is a 429 on the wire exactly as they are
  in-process;
* **shutdown is graceful** — :meth:`stop` sends every subscriber a
  terminal frame, releases every pinned session, fails parked
  admission futures, and only then closes the service-side listener.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import time
from typing import Optional, Set

from ..exceptions import ConfigError, ProtocolError
from ..graph.updates import EdgeUpdate
from ..serving.config import FrontDoorConfig
from ..serving.envelopes import (
    QueryRequest,
    error_body,
    http_status,
    run_query,
)
from ..telemetry import (
    NULL_TELEMETRY,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from .admission import AdmissionBatcher
from .protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    encode_frame,
    handshake_response,
    read_frame,
    read_request,
    render_response,
    send_json,
    send_ws_json,
)
from .sessions import SessionManager
from .subscriptions import TopKSubscriptions

#: Sentinel queued to a subscriber to end its WebSocket.
_TERMINAL = object()


class _RawResponse:
    """A non-JSON route result: pre-rendered body + content type."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


class FrontDoor:
    """Serve one :class:`SimRankService` over HTTP + WebSocket."""

    def __init__(self, service, config: Optional[FrontDoorConfig] = None):
        if config is None:
            config = (
                service.service_config.frontdoor or FrontDoorConfig()
            )
        self._service = service
        self.config = config
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_event = asyncio.Event()
        self._stopping = False
        self._push_task: Optional[asyncio.Task] = None
        self._ws_tasks: Set[asyncio.Task] = set()
        self.telemetry = getattr(service, "telemetry", None) or NULL_TELEMETRY
        self.sessions = SessionManager(
            default_ttl=config.session_ttl,
            max_sessions=config.max_sessions,
            registry=self.telemetry.registry,
        )
        self.subscriptions = TopKSubscriptions(
            service,
            max_k=config.subscription_max_k,
            registry=self.telemetry.registry,
        )
        self.batcher = AdmissionBatcher(
            pin_view=service.snapshot,
            window=config.admission_window,
            max_batch=config.admission_max_batch,
            run_blocking=self._run_blocking,
            telemetry=self.telemetry,
        )
        self.requests_served = 0
        self.protocol_errors = 0
        self.status_counts: dict = {}
        registry = self.telemetry.registry
        self._request_hist = registry.histogram(
            "repro_frontdoor_request_seconds",
            help="HTTP request latency at the front door (route + render)",
        )
        registry.gauge(
            "repro_frontdoor_requests_served",
            help="Requests accepted off the wire",
            fn=lambda: self.requests_served,
        )
        registry.gauge(
            "repro_frontdoor_protocol_errors",
            help="Requests rejected as malformed",
            fn=lambda: self.protocol_errors,
        )

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise ConfigError("front door is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> "FrontDoor":
        """Bind the socket, hook the drain listener, start pushing."""
        if self._server is not None:
            raise ConfigError("front door already started")
        self._loop = asyncio.get_running_loop()
        self._service.add_drain_listener(self._on_drain)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._push_task = self._loop.create_task(self._push_loop())
        return self

    async def stop(self) -> None:
        """Graceful teardown; safe to call twice."""
        if self._stopping:
            return
        self._stopping = True
        self._service.remove_drain_listener(self._on_drain)
        self.batcher.drain()
        # Terminal frame to every subscriber, then let their handler
        # tasks finish the close handshake.
        for subscriber in self.subscriptions.drain_subscribers():
            subscriber.queue.put_nowait(_TERMINAL)
        if self._push_task is not None:
            self._drain_event.set()
            self._push_task.cancel()
            try:
                await self._push_task
            except asyncio.CancelledError:
                pass
        if self._ws_tasks:
            await asyncio.gather(
                *tuple(self._ws_tasks), return_exceptions=True
            )
        self.sessions.release_all()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def run_forever(self) -> None:
        """Start and serve until cancelled (the CLI entry point)."""
        await self.start()
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    def _run_blocking(self, fn):
        return asyncio.get_running_loop().run_in_executor(None, fn)

    # ------------------------------------------------------------- #
    # Drain push pipeline
    # ------------------------------------------------------------- #

    def _on_drain(self, version: int) -> None:
        # Writer-thread context: hop to the loop with the one
        # threadsafe primitive; coalescing multiple drains into one
        # event-set is exactly right (the poll reads current state).
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._drain_event.set)

    async def _push_loop(self) -> None:
        while not self._stopping:
            await self._drain_event.wait()
            self._drain_event.clear()
            if self._stopping:
                return
            if not len(self.subscriptions):
                continue
            messages = await self._run_blocking(self.subscriptions.poll)
            for subscriber, message in messages:
                subscriber.queue.put_nowait(message)

    # ------------------------------------------------------------- #
    # Connection handling
    # ------------------------------------------------------------- #

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._stopping:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    self.protocol_errors += 1
                    await send_json(
                        writer, 400, error_body(exc), keep_alive=False
                    )
                    return
                if request is None:
                    return
                self.requests_served += 1
                if request.wants_websocket:
                    await self._handle_websocket(request, reader, writer)
                    return
                keep_open = await self._dispatch_http(request, writer)
                if not keep_open:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_http(self, request, writer) -> bool:
        started = time.perf_counter()
        try:
            status, payload = await self._route(request)
        except ProtocolError as exc:
            self.protocol_errors += 1
            status, payload = 400, error_body(exc)
        except Exception as exc:  # the taxonomy owns every failure
            status, payload = http_status(exc), error_body(exc)
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        keep_alive = request.keep_alive and status < 500
        if isinstance(payload, _RawResponse):
            writer.write(
                render_response(
                    status,
                    payload.body,
                    content_type=payload.content_type,
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
        else:
            await send_json(writer, status, payload, keep_alive=keep_alive)
        self._request_hist.observe(time.perf_counter() - started)
        return keep_alive

    async def _route(self, request):
        method, path = request.method, request.path
        if path == "/health" and method == "GET":
            return 200, self._health()
        if path == "/metrics" and method == "GET":
            if request.query.get("format") == "prometheus":
                # Callback gauges render from live attributes; no
                # blocking engine work happens here.
                body = render_prometheus(self.telemetry.registry)
                return 200, _RawResponse(
                    body.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
                )
            report = await self._run_blocking(self._service.metrics_report)
            report["frontdoor"] = self.report()
            return 200, report
        if path == "/traces" and method == "GET":
            trace_id = request.query.get("trace_id")
            return 200, {
                "trace_id": trace_id,
                "spans": self.telemetry.tracer.export(trace_id),
            }
        if path == "/query" and method == "POST":
            return await self._handle_query(request)
        if path == "/session" and method == "POST":
            return await self._handle_create_session(request)
        if path.startswith("/session/"):
            session_id = path[len("/session/"):]
            if method == "GET":
                return 200, self.sessions.info(session_id)
            if method == "DELETE":
                self.sessions.release(session_id)
                return 200, {"session": session_id, "released": True}
            raise ProtocolError(f"method {method} not allowed on {path}")
        if path == "/updates" and method == "POST":
            return await self._handle_updates(request)
        if path == "/flush" and method == "POST":
            await self._run_blocking(self._service.flush)
            return 200, {"version": self._service.version}
        raise ProtocolError(f"no route for {method} {path}")

    def _health(self) -> dict:
        service = self._service
        health = {
            "status": "degraded" if service.degraded else "ok",
            "version": service.version,
            "num_nodes": service.num_nodes,
            "pending": service.pending,
            "degraded": service.degraded,
            "sessions": len(self.sessions),
            "subscribers": len(self.subscriptions),
        }
        manager = service.durability
        if manager is not None:
            health["durability"] = {
                "failed": manager.failed,
                "fsync": manager.config.fsync,
                "durable_version": manager.durable_version,
                "last_checkpoint_version": manager.last_checkpoint_version,
                "wal_bytes": manager.wal_bytes(),
                "wal_lag_drains": manager.wal_lag_drains(),
            }
        return health

    async def _handle_query(self, request):
        query = QueryRequest.from_dict(request.json())
        # The trace enters here: an explicit X-Trace-Id (or an id already
        # in the envelope) is adopted verbatim and force-sampled; without
        # one the tracer mints an id only when the sampler keeps it.
        tracer = self.telemetry.tracer
        trace_id = tracer.admit(
            query.trace_id or request.headers.get("x-trace-id")
        )
        if trace_id != query.trace_id:
            query = dataclasses.replace(query, trace_id=trace_id)
        raw_version = request.query.get("version")
        at_version = None
        if raw_version is not None:
            try:
                at_version = int(raw_version)
            except ValueError:
                raise ProtocolError(
                    f"version must be an integer: {raw_version!r}"
                )
            if query.session is not None:
                raise ProtocolError(
                    "?version= and a pinned session are mutually "
                    "exclusive (both name a fixed view)"
                )
        with tracer.span(
            "frontdoor.query", trace_id, kind=query.kind
        ):
            if at_version is not None:
                # Time-travel read: materialize the historical view off
                # the loop (checkpoint load + WAL replay can take a
                # while), then compute off it like a pinned session.
                def _travel():
                    view = self._service.view_at(at_version)
                    return run_query(view, query)

                result = await self._run_blocking(_travel)
            elif query.session is not None:
                # Pinned-session routing: resolve the frozen view on the
                # loop (the manager is loop-confined), compute off it.
                view = self.sessions.get(query.session)
                result = await self._run_blocking(
                    functools.partial(run_query, view, query)
                )
            elif query.batchable:
                result = await self.batcher.run(query)
            else:
                result = await self._run_blocking(
                    functools.partial(self._service.query, query)
                )
        body = result.to_dict()
        if trace_id is not None and tracer.sampled(trace_id):
            body["trace_id"] = trace_id
        return 200, body

    async def _handle_create_session(self, request):
        payload = request.json() or {}
        if not isinstance(payload, dict):
            raise ProtocolError("session body must be a JSON object")
        ttl = payload.get("ttl")
        if ttl is not None and (
            not isinstance(ttl, (int, float)) or ttl <= 0
        ):
            raise ProtocolError(f"session ttl must be positive: {ttl!r}")
        view = await self._run_blocking(self._service.snapshot)
        session_id = self.sessions.create(view, ttl=ttl)
        return 201, {
            "session": session_id,
            "version": view.version,
            "ttl": ttl or self.config.session_ttl,
        }

    async def _handle_updates(self, request):
        payload = request.json()
        if not isinstance(payload, dict) or "updates" not in payload:
            raise ProtocolError(
                "updates body must be {'updates': [[op, source, target]...]}"
            )
        validate = bool(payload.get("validate", False))
        updates = []
        for entry in payload["updates"]:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 3
                or entry[0] not in ("insert", "delete")
            ):
                raise ProtocolError(f"malformed update entry: {entry!r}")
            op, source, target = entry
            if not isinstance(source, int) or not isinstance(target, int):
                raise ProtocolError(f"malformed update entry: {entry!r}")
            updates.append(
                EdgeUpdate.insert(source, target)
                if op == "insert"
                else EdgeUpdate.delete(source, target)
            )

        def submit():
            if not validate:
                self._service.submit_many(updates)
                return len(updates), []
            return self._submit_validated(updates)

        tracer = self.telemetry.tracer
        trace_id = tracer.admit(request.headers.get("x-trace-id"))
        started = time.perf_counter()
        accepted, rejected = await self._run_blocking(submit)
        tracer.record(
            "updates.submit",
            trace_id,
            time.perf_counter() - started,
            accepted=accepted,
            rejected=len(rejected),
        )
        if accepted:
            # Remember the trace until the drain that folds these
            # updates in; the writer records the drain.apply span (and
            # worker-side apply spans) under it.
            note = getattr(self._service, "note_origin_trace", None)
            if note is not None:
                note(trace_id)
        body = {
            "accepted": accepted,
            "rejected": rejected,
            "pending": self._service.pending,
        }
        if trace_id is not None and tracer.sampled(trace_id):
            body["trace_id"] = trace_id
        return 200, body

    def _submit_validated(self, updates):
        """Admit only updates valid against **graph ∪ pending queue**.

        An insert that duplicates an existing edge — or one already
        sitting in the coalescing queue — would fail the whole drain
        batch later (a poison batch pausing the background writer), so
        validation must see the queued net effects, not just the graph.
        Effects of earlier updates in this same request are tracked so
        an ``insert; delete`` pair in one payload validates like the
        sequential application it becomes.
        """
        service = self._service
        graph = service.engine.graph
        n = graph.num_nodes
        local: dict = {}
        accepted = []
        rejected = []
        for update in updates:
            source, target = update.source, update.target
            entry = [
                "insert" if update.is_insert else "delete",
                source,
                target,
            ]
            if not (0 <= source < n and 0 <= target < n):
                rejected.append(entry + ["unknown node"])
                continue
            key = (source, target)
            if key in local:
                exists = local[key]
            else:
                pending = service.scheduler.pending_effect(source, target)
                exists = (
                    pending
                    if pending is not None
                    else graph.has_edge(source, target)
                )
            if update.is_insert == exists:
                reason = (
                    "edge already exists" if exists else "edge not found"
                )
                rejected.append(entry + [reason])
                continue
            local[key] = update.is_insert
            accepted.append(update)
        if accepted:
            service.submit_many(accepted)
        return len(accepted), rejected

    # ------------------------------------------------------------- #
    # WebSocket subscriptions
    # ------------------------------------------------------------- #

    async def _handle_websocket(self, request, reader, writer) -> None:
        key = request.headers.get("sec-websocket-key")
        if request.path != "/ws/topk" or key is None:
            self.protocol_errors += 1
            await send_json(
                writer,
                400,
                error_body(ProtocolError("bad websocket upgrade")),
                keep_alive=False,
            )
            return
        try:
            k = int(request.query.get("k", "10"))
            subscriber = self.subscriptions.add(k, asyncio.Queue())
        except (ValueError, ConfigError) as exc:
            self.protocol_errors += 1
            await send_json(
                writer, 400, error_body(ConfigError(str(exc))),
                keep_alive=False,
            )
            return
        writer.write(handshake_response(key))
        await writer.drain()
        task = asyncio.current_task()
        self._ws_tasks.add(task)
        try:
            snapshot = await self._run_blocking(
                functools.partial(self.subscriptions.prime, subscriber)
            )
            await send_ws_json(writer, snapshot)
            pump = asyncio.get_running_loop().create_task(
                self._ws_client_pump(reader, subscriber)
            )
            try:
                while True:
                    message = await subscriber.queue.get()
                    if message is _TERMINAL:
                        await send_ws_json(writer, {"type": "closed"})
                        break
                    await send_ws_json(writer, message)
            finally:
                pump.cancel()
                try:
                    await pump
                except asyncio.CancelledError:
                    pass
            writer.write(encode_frame(OP_CLOSE, b""))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            self._ws_tasks.discard(task)
            self.subscriptions.remove(subscriber)

    async def _ws_client_pump(self, reader, subscriber) -> None:
        """Read the client side: answer pings, honor close frames."""
        try:
            while True:
                opcode, payload = await read_frame(reader)
                if opcode == OP_CLOSE:
                    subscriber.queue.put_nowait(_TERMINAL)
                    return
                if opcode in (OP_PING, OP_PONG):
                    continue  # the push task owns the writer; no pong
        except (
            ProtocolError,
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            subscriber.queue.put_nowait(_TERMINAL)

    # ------------------------------------------------------------- #
    # Introspection
    # ------------------------------------------------------------- #

    def report(self) -> dict:
        """Front-door gauges for ``GET /metrics``."""
        return {
            "host": self.config.host,
            "port": self._server.sockets[0].getsockname()[1]
            if self._server is not None
            else None,
            "requests_served": self.requests_served,
            "protocol_errors": self.protocol_errors,
            "status_counts": dict(self.status_counts),
            "admission": self.batcher.report(),
            "sessions": self.sessions.report(),
            "subscriptions": self.subscriptions.report(),
        }


async def serve_frontdoor(
    service, config: Optional[FrontDoorConfig] = None
) -> FrontDoor:
    """Start a front door and return it (caller owns ``stop()``)."""
    return await FrontDoor(service, config).start()
