"""Top-k push subscriptions: drain-driven deltas, digest-verified.

A WebSocket subscriber asks for the live top-``k`` pair ranking.  The
front door does not rebroadcast the full ranking on every drain — it
pushes **only what changed**:

* after each drain the hub recomputes the ranking through the engine's
  incremental shard-heap path (bit-identical to a brute-force dense
  scan, the repo's standing guarantee) and diffs it against what each
  subscriber last saw;
* unchanged rankings push nothing at all, and drains that touched no
  scores are skipped *without recomputing* via the top-k index's
  ``revision`` counter (read under the writer's apply lock, re-read
  after the query so a lazy rescan's bump is absorbed rather than
  re-triggering);
* a changed ranking pushes ``{positions changed, new size, digest}``
  where the digest is SHA-1 over the canonical full ranking — the
  client patches its copy and verifies the digest, so a missed or
  reordered delta is detected immediately instead of silently
  diverging.

Because both sides of the diff come from the bit-identical ranking
path, "the reconstructed client ranking equals a full recompute" is an
exact equality, not an approximation — the test suite and the load
generator both assert it.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigError
from ..telemetry import NULL_TELEMETRY, GaugeGroup

Ranking = List[Tuple[int, int, float]]


def ranking_digest(ranking: Ranking) -> str:
    """SHA-1 over the canonical ranking text.

    Scores render via ``repr`` (shortest float64 round-trip), so two
    rankings digest equal **iff** they are bit-identical.
    """
    canonical = "|".join(
        f"{a},{b},{score!r}" for a, b, score in ranking
    )
    return hashlib.sha1(canonical.encode("ascii")).hexdigest()


def diff_ranking(old: Ranking, new: Ranking) -> List[list]:
    """Positions where ``new`` differs from ``old`` (wire-shaped).

    Each changed entry is ``[position, a, b, score]``; positions past
    ``len(new)`` are communicated by the delta's ``size`` field (the
    client truncates), so a shrink costs zero entries.
    """
    return [
        [position, entry[0], entry[1], entry[2]]
        for position, entry in enumerate(new)
        if position >= len(old) or old[position] != entry
    ]


def apply_delta(old: Ranking, size: int, changed: List[list]) -> Ranking:
    """Client-side reconstruction: patch ``old`` into the new ranking."""
    new = list(old[:size])
    if len(new) < size:
        new.extend([(0, 0, 0.0)] * (size - len(new)))
    for position, a, b, score in changed:
        new[position] = (int(a), int(b), float(score))
    return new


class _NullLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class Subscriber:
    """One WebSocket client's subscription state."""

    __slots__ = (
        "id",
        "k",
        "queue",
        "last_ranking",
        "last_revision",
        "last_version",
        "primed",
        "pushes",
        "skipped_by_revision",
        "quiet_rounds",
    )

    def __init__(self, subscriber_id: int, k: int, queue) -> None:
        self.id = subscriber_id
        self.k = k
        self.queue = queue
        self.last_ranking: Ranking = []
        self.last_revision: Optional[int] = None
        self.last_version: Optional[int] = None
        self.primed = False
        self.pushes = 0
        self.skipped_by_revision = 0
        self.quiet_rounds = 0


class TopKSubscriptions:
    """The subscription hub: registry + per-drain delta computation.

    ``add``/``remove`` run on the event loop; :meth:`poll` and
    :meth:`prime` run in the executor thread pool (they take the
    writer's apply lock around engine queries), so the registry is
    guarded by a plain mutex.
    """

    def __init__(self, service, max_k: int, registry=None) -> None:
        self._service = service
        self.max_k = int(max_k)
        self._subscribers: Dict[int, Subscriber] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.polls = 0
        self.deltas_pushed = 0
        if registry is None:
            registry = NULL_TELEMETRY.registry
        gauges = GaugeGroup(registry, "repro_subscriptions")
        gauges.expose("active", lambda: len(self._subscribers))
        gauges.expose("max_k", lambda: self.max_k)
        gauges.expose("polls", lambda: self.polls)
        gauges.expose("deltas_pushed", lambda: self.deltas_pushed)
        gauges.expose(
            "skipped_by_revision",
            lambda: self._sum_field("skipped_by_revision"),
        )
        gauges.expose(
            "quiet_rounds", lambda: self._sum_field("quiet_rounds")
        )
        self._gauges = gauges

    def _sum_field(self, field: str) -> int:
        with self._lock:
            return sum(
                getattr(subscriber, field)
                for subscriber in self._subscribers.values()
            )

    def __len__(self) -> int:
        return len(self._subscribers)

    def add(self, k: int, queue) -> Subscriber:
        if not (1 <= k <= self.max_k):
            raise ConfigError(
                f"subscription k must be in [1, {self.max_k}], got {k}"
            )
        subscriber = Subscriber(next(self._ids), int(k), queue)
        with self._lock:
            self._subscribers[subscriber.id] = subscriber
        return subscriber

    def remove(self, subscriber: Subscriber) -> None:
        with self._lock:
            self._subscribers.pop(subscriber.id, None)

    def drain_subscribers(self) -> List[Subscriber]:
        """Unregister everyone (shutdown); returns them for the
        terminal frame."""
        with self._lock:
            subscribers = list(self._subscribers.values())
            self._subscribers.clear()
        return subscribers

    # ------------------------------------------------------------- #
    # Blocking half (executor thread pool)
    # ------------------------------------------------------------- #

    def _apply_lock(self):
        writer = self._service.writer
        return writer.apply_lock if writer is not None else _NullLock()

    def prime(self, subscriber: Subscriber) -> dict:
        """Compute the initial full-ranking message for a new subscriber."""
        with self._apply_lock():
            index = self._service.engine.topk_index
            ranking = self._service.engine.top_k(subscriber.k)
            revision = index.revision if index is not None else None
            version = self._service.version
        subscriber.last_ranking = ranking
        subscriber.last_revision = revision
        subscriber.last_version = version
        subscriber.primed = True
        return {
            "type": "snapshot",
            "k": subscriber.k,
            "version": version,
            "ranking": [[a, b, score] for a, b, score in ranking],
            "digest": ranking_digest(ranking),
        }

    def poll(self) -> List[Tuple[Subscriber, dict]]:
        """One post-drain round: delta messages for changed subscribers.

        Runs every subscriber's skip/diff against **one** consistent
        engine state (the apply lock is held across the revision reads
        and every ranking query), so all deltas of a round describe the
        same version.
        """
        with self._lock:
            subscribers = [
                subscriber
                for subscriber in self._subscribers.values()
                if subscriber.primed
            ]
        if not subscribers:
            return []
        self.polls += 1
        messages: List[Tuple[Subscriber, dict]] = []
        try:
            with self._apply_lock():
                index = self._service.engine.topk_index
                revision = index.revision if index is not None else None
                stale = [
                    subscriber
                    for subscriber in subscribers
                    if revision is None
                    or subscriber.last_revision != revision
                ]
                for subscriber in subscribers:
                    if subscriber not in stale:
                        subscriber.skipped_by_revision += 1
                rankings: Dict[int, Ranking] = {}
                for subscriber in stale:
                    if subscriber.k not in rankings:
                        rankings[subscriber.k] = self._service.engine.top_k(
                            subscriber.k
                        )
                # Re-read after the queries: a lazy shard rescan inside
                # top_k bumps the counter, and absorbing that bump here
                # keeps the next no-op drain skippable.
                revision_after = (
                    index.revision if index is not None else None
                )
                version = self._service.version
        except Exception:
            # A dying executor surfaces here (pipelined sync point);
            # the service's own failure handling owns it — this round
            # just pushes nothing.
            return []
        for subscriber in stale:
            ranking = rankings[subscriber.k]
            changed = diff_ranking(subscriber.last_ranking, ranking)
            shrunk = len(ranking) != len(subscriber.last_ranking)
            subscriber.last_revision = revision_after
            subscriber.last_version = version
            if not changed and not shrunk:
                subscriber.quiet_rounds += 1
                continue
            subscriber.last_ranking = ranking
            subscriber.pushes += 1
            self.deltas_pushed += 1
            messages.append(
                (
                    subscriber,
                    {
                        "type": "delta",
                        "k": subscriber.k,
                        "version": version,
                        "size": len(ranking),
                        "changed": changed,
                        "digest": ranking_digest(ranking),
                    },
                )
            )
        return messages

    def report(self) -> dict:
        """Subscription gauges for the metrics endpoint.

        Rendered through the :class:`GaugeGroup` so the JSON dict and
        the registry's Prometheus gauges share one set of readers; key
        names are the historical ones.
        """
        return self._gauges.report()
