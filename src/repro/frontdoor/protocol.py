"""Dependency-free HTTP/1.1 and WebSocket (RFC 6455) wire plumbing.

The front door speaks two protocols over one listening socket, both
implemented here directly on asyncio stream pairs — no third-party
framework, because queries and top-k pushes are small JSON messages and
the interesting engineering (admission batching, snapshot pinning,
delta subscriptions) lives above the wire anyway.

The module carries **both sides** of each protocol: the server-side
parser/encoder used by :class:`~repro.frontdoor.server.FrontDoor`, and
minimal client helpers (:class:`HTTPClient`, :func:`ws_connect`) used
by the closed-loop load generator and the test suite, so the repo can
exercise its own wire format end to end without external tooling.

Malformed input raises :class:`~repro.exceptions.ProtocolError`
(HTTP 400 / WebSocket protocol-error close); size limits on request
lines, headers, bodies, and frames keep a misbehaving client from
ballooning server memory.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ProtocolError

#: RFC 6455 handshake GUID (fixed by the spec).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes this implementation handles.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_FRAME_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HTTPRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    keep_alive: bool = True
    _json: object = field(default=None, repr=False)

    def json(self) -> object:
        """The body parsed as JSON (:class:`ProtocolError` when bad)."""
        if not self.body:
            return None
        if self._json is None:
            try:
                self._json = json.loads(self.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"invalid JSON body: {exc}") from None
        return self._json

    @property
    def wants_websocket(self) -> bool:
        """Whether this request asks for a WebSocket upgrade."""
        return (
            "upgrade" in self.headers.get("connection", "").lower()
            and self.headers.get("upgrade", "").lower() == "websocket"
        )


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[HTTPRequest]:
    """Parse one request off the stream; None on clean EOF between requests."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError("connection closed mid request line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("connection closed mid headers") from None
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError("request headers too large")
        text = line.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length: {length!r}"
            ) from None
        if size < 0 or size > max_body:
            raise ProtocolError(f"body too large ({size} bytes)")
        if size:
            try:
                body = await reader.readexactly(size)
            except asyncio.IncompleteReadError:
                raise ProtocolError("connection closed mid body") from None
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError("chunked request bodies are not supported")

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }
    connection = headers.get("connection", "").lower()
    keep_alive = "close" not in connection
    return HTTPRequest(
        method=method.upper(),
        target=target,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(payload: object) -> bytes:
    """Encode one JSON payload for the wire.

    ``json.dumps`` renders floats with ``repr`` (shortest round-trip),
    so float64 scores survive the wire bit-exactly.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool = True,
) -> None:
    """Write one JSON response and flush."""
    writer.write(
        render_response(status, json_body(payload), keep_alive=keep_alive)
    )
    await writer.drain()


# ------------------------------------------------------------------ #
# WebSocket framing (RFC 6455)
# ------------------------------------------------------------------ #


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for one handshake key."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def handshake_response(key: str) -> bytes:
    """The 101 Switching Protocols response completing the upgrade."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """Serialize one unfragmented frame (clients must set ``mask``)."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 65536:
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(
            byte ^ key[i % 4] for i, byte in enumerate(payload)
        )
    return bytes(header) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    max_size: int = MAX_FRAME_BYTES,
) -> Tuple[int, bytes]:
    """Read one frame; returns ``(opcode, payload)``.

    Fragmented messages are rejected (every message the front door
    exchanges fits one frame by design); control frames pass through
    for the caller to answer.  Raises :class:`ProtocolError` on framing
    violations and :class:`asyncio.IncompleteReadError` on EOF.
    """
    first = await reader.readexactly(2)
    fin = bool(first[0] & 0x80)
    if first[0] & 0x70:
        raise ProtocolError("websocket reserved bits set")
    opcode = first[0] & 0x0F
    if not fin:
        raise ProtocolError("fragmented websocket messages not supported")
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    if length == 126:
        length = struct.unpack("!H", await reader.readexactly(2))[0]
    elif length == 127:
        length = struct.unpack("!Q", await reader.readexactly(8))[0]
    if length > max_size:
        raise ProtocolError(f"websocket frame too large ({length} bytes)")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = bytes(
            byte ^ key[i % 4] for i, byte in enumerate(payload)
        )
    return opcode, payload


async def send_ws_json(
    writer: asyncio.StreamWriter,
    payload: object,
    mask: bool = False,
) -> None:
    """Send one JSON text frame."""
    writer.write(encode_frame(OP_TEXT, json_body(payload), mask=mask))
    await writer.drain()


# ------------------------------------------------------------------ #
# Client helpers (load generator + tests)
# ------------------------------------------------------------------ #


class HTTPClient:
    """A keep-alive HTTP/1.1 JSON client over one asyncio connection."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "HTTPClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "HTTPClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        payload: object = None,
        headers: Optional[Dict[str, str]] = None,
        raw: bool = False,
    ) -> Tuple[int, object]:
        """One round trip; returns ``(status, parsed-JSON-or-None)``.

        ``headers`` adds extra request headers (e.g. ``X-Trace-Id``);
        ``raw=True`` returns the body as decoded text instead of parsed
        JSON — the Prometheus scrape path, where the response is
        text-format 0.0.4, not JSON.
        """
        if self._writer is None:
            await self.connect()
        body = b"" if payload is None else json_body(payload)
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: keep-alive",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        return await self._read_response(raw=raw)

    async def _read_response(self, raw: bool = False) -> Tuple[int, object]:
        reader = self._reader
        try:
            status_line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError:
            raise ProtocolError("server closed mid response") from None
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ProtocolError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readuntil(b"\r\n")
            text = line.decode("latin-1").rstrip("\r\n")
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        if "close" in headers.get("connection", "").lower():
            await self.close()
        if raw:
            return status, body.decode("utf-8")
        if not body:
            return status, None
        try:
            return status, json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"invalid JSON response: {exc}") from None


async def ws_connect(
    host: str,
    port: int,
    path: str,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a client WebSocket: TCP connect + RFC 6455 handshake."""
    reader, writer = await asyncio.open_connection(host, port)
    key = base64.b64encode(os.urandom(16)).decode("latin-1")
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    status_line = await reader.readuntil(b"\r\n")
    if b" 101 " not in status_line:
        raise ProtocolError(
            f"websocket handshake refused: {status_line!r}"
        )
    accept = None
    while True:
        line = await reader.readuntil(b"\r\n")
        text = line.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, _, value = text.partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accept = value.strip()
    if accept != websocket_accept(key):
        raise ProtocolError("websocket handshake key mismatch")
    return reader, writer


async def ws_recv_json(reader: asyncio.StreamReader) -> Optional[object]:
    """Receive the next JSON text frame; None on a close frame.

    Ping frames are skipped (the front door never pings, but a proxy
    might); any other opcode is a protocol violation.
    """
    while True:
        opcode, payload = await read_frame(reader)
        if opcode == OP_TEXT:
            try:
                return json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"invalid JSON websocket frame: {exc}"
                ) from None
        if opcode == OP_CLOSE:
            return None
        if opcode in (OP_PING, OP_PONG):
            continue
        raise ProtocolError(f"unexpected websocket opcode {opcode:#x}")
