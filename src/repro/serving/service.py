"""The single-writer / many-readers serving session.

:class:`SimRankService` wires the three layers together for the
link-evolving serving workload the paper targets: precompute once, then
serve reads while edges arrive.

* Writers call :meth:`SimRankService.submit` — updates land in the
  :class:`~repro.serving.scheduler.UpdateScheduler`, costing nothing on
  the read path.
* :meth:`SimRankService.drain` (the single writer) pops one coalesced
  batch and applies it through the engine's consolidated rank-one path
  (one pruned kernel run per distinct target row), bumping the service
  version.
* Readers call :meth:`SimRankService.snapshot` to pin a
  :class:`~repro.serving.snapshot.SnapshotView` at the current version.
  Pinned views are bit-stable under any number of subsequent drains
  (copy-on-write shards), so a query fleet can keep answering from a
  consistent version while updates stream in, then re-pin at its own
  cadence.

The service is deliberately synchronous and single-process: "one
writer" is enforced by construction (only ``drain`` mutates), and the
snapshot semantics are exactly what a multi-process deployment would
ship across workers (frozen shard views + packed ``Q``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from ..config import SimRankConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.updates import EdgeUpdate, UpdateBatch
from ..incremental.engine import DynamicSimRank
from .scheduler import UpdateScheduler
from .snapshot import SnapshotView


class SimRankService:
    """Versioned SimRank serving over a link-evolving graph."""

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: SimRankConfig = None,
        initial_scores: Optional[np.ndarray] = None,
        shard_rows: Optional[int] = None,
    ) -> None:
        engine_kwargs = {}
        if shard_rows is not None:
            engine_kwargs["shard_rows"] = shard_rows
        self._engine = DynamicSimRank(
            graph,
            config,
            algorithm="inc-sr",
            initial_scores=initial_scores,
            **engine_kwargs,
        )
        self._scheduler = UpdateScheduler()

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #

    @property
    def engine(self) -> DynamicSimRank:
        """The underlying engine (kernel/executor facade)."""
        return self._engine

    @property
    def scheduler(self) -> UpdateScheduler:
        """The write-side queue."""
        return self._scheduler

    @property
    def version(self) -> int:
        """Current state version (bumped once per drained batch)."""
        return self._engine.version

    @property
    def num_nodes(self) -> int:
        return self._engine.graph.num_nodes

    @property
    def pending(self) -> int:
        """Net queued updates not yet applied."""
        return len(self._scheduler)

    # -------------------------------------------------------------- #
    # Write path
    # -------------------------------------------------------------- #

    def submit(self, update: Union[EdgeUpdate, UpdateBatch]) -> None:
        """Queue an update (or a whole batch) for the next drain."""
        if isinstance(update, EdgeUpdate):
            self._scheduler.submit(update)
        else:
            self._scheduler.submit_many(update)

    def submit_many(self, updates: Iterable[EdgeUpdate]) -> None:
        """Queue a stream of updates for the next drain."""
        self._scheduler.submit_many(updates)

    def drain(self) -> int:
        """Apply everything queued as one coalesced consolidated batch.

        Returns the number of row groups processed (0 when the queue
        was empty).  This is the single writer: snapshots pinned before
        the call keep serving the pre-drain version.

        If the batch is invalid against the live graph (e.g. a queued
        insert of an edge that already exists), the engine raises
        before touching any state; the drained updates are re-queued
        first, so nothing pending is lost and the caller can repair the
        queue and drain again.
        """
        batch = self._scheduler.drain()
        if not len(batch):
            return 0
        try:
            return self._engine.apply_consolidated(batch)
        except Exception:
            self._scheduler.submit_many(batch)
            raise

    def add_node(self) -> int:
        """Grow the node universe by one isolated node (applied live)."""
        return self._engine.add_node()

    # -------------------------------------------------------------- #
    # Read path
    # -------------------------------------------------------------- #

    def snapshot(self) -> SnapshotView:
        """Pin the current version as an immutable :class:`SnapshotView`."""
        return SnapshotView(
            scores=self._engine.score_store.snapshot(),
            transitions=self._engine.transition_store.snapshot(),
            config=self._engine.config,
            version=self._engine.version,
        )

    def similarity(self, node_a: int, node_b: int) -> float:
        """Live (latest-version) score of one pair."""
        return self._engine.similarity(node_a, node_b)

    def memory_report(self) -> dict:
        """Layered memory accounting including scheduler state."""
        report = self._engine.memory_report()
        report["scheduler_pending"] = len(self._scheduler)
        return report

    def __repr__(self) -> str:
        return (
            f"SimRankService(n={self.num_nodes}, version={self.version}, "
            f"pending={self.pending})"
        )
